"""Shared benchmark fixtures.

All benchmark modules draw from one session-scoped suite instance so the
world (databases, corpus, synthetic splits) is built exactly once per run.  Each benchmark writes its rendered table/figure to ``results/`` next
to this directory and prints it, so a ``pytest benchmarks/ --benchmark-only
-s`` run regenerates every artifact of the paper's evaluation.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def suite():
    from repro.experiments.config import quick
    from repro.experiments.runner import Suite

    return Suite.from_config(quick())


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print an artifact and persist it under results/."""
    print()
    print(text)
    (results_dir / name).write_text(text + "\n")
