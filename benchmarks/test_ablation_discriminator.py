"""Ablation — Phase 4's geometric-median selection vs alternatives.

The paper motivates the discriminative phase as a filter for bad candidate
questions.  This ablation measures silver-standard quality (equivalence-judge
rate) of the questions kept by three selection policies over the same
candidate sets:

* ``median``  — the paper's Eq. 1 geometric-median top-2;
* ``random``  — two uniformly random candidates;
* ``all``     — keep all 8 candidates (no discrimination).

Expected shape: median ≥ random ≥ all (outlier candidates are exactly the
semantically corrupted ones).
"""

import random

from conftest import emit


def test_discriminator_ablation(benchmark, suite, results_dir):
    from repro.experiments.reporting import render_table
    from repro.llm.models import GPT3_PROFILE, make_model
    from repro.metrics.equivalence import EquivalenceJudge
    from repro.synthesis.discriminator import Discriminator, DiscriminatorConfig

    domain = suite.domain("sdss")
    judge = EquivalenceJudge(domain.enhanced, lexicon=domain.lexicon)
    model = make_model(GPT3_PROFILE, seed=suite.config.seed)
    model.fine_tune(domain.seed.pairs, domain=domain.name, lexicon=domain.lexicon)
    discriminator = Discriminator(DiscriminatorConfig(top_k=2))
    rng = random.Random(suite.config.seed)

    queries = [p.sql for p in domain.synth.pairs[::4]][:60]

    def run():
        scores = {"median": [0, 0], "random": [0, 0], "all": [0, 0]}
        for sql in queries:
            candidates = model.translate(
                sql, domain.enhanced, n_candidates=8, domain=domain.name
            )
            policies = {
                "median": discriminator.select(candidates),
                "random": rng.sample(candidates, 2),
                "all": candidates,
            }
            for name, kept in policies.items():
                for question in kept:
                    scores[name][0] += judge.judge(question, sql).equivalent
                    scores[name][1] += 1
        return {name: good / total for name, (good, total) in scores.items()}

    rates = benchmark.pedantic(run, rounds=1, iterations=1)

    assert rates["median"] >= rates["all"]
    assert rates["median"] >= rates["random"] - 0.02

    emit(
        results_dir,
        "ablation_discriminator.txt",
        render_table(
            "Ablation — candidate selection policy vs silver quality",
            ["Policy", "Equivalence rate"],
            [(name, round(rate, 3)) for name, rate in rates.items()],
            note="median = the paper's Eq. 1 geometric-median top-2 selection.",
        ),
    )
