"""Ablation — the enhanced schema's meaningfulness constraints (§3.3.2).

The paper argues that without the enhanced schema, Algorithm 1 produces
executable-but-meaningless queries (``AVG(specobjid)``, ``GROUP BY ra``).
This ablation generates from the same templates twice — once with the
profiled+expert-refined enhanced schema, once with a permissive schema that
allows everything — and counts meaningless queries under the real schema's
annotations.

Expected shape: the constrained run produces zero meaningless queries; the
permissive run produces plenty.
"""

import random

from conftest import emit


def _permissive_schema(domain):
    """An enhanced schema with every constraint switched off."""
    from repro.schema.enhanced import ColumnAnnotation, EnhancedSchema

    permissive = EnhancedSchema(schema=domain.database.schema)
    for table in domain.database.schema.tables:
        numerics = [c for c in table.columns if c.type.is_numeric]
        for column in table.columns:
            permissive.annotate(
                table.name,
                column.name,
                ColumnAnnotation(
                    aggregatable=column.type.is_numeric,
                    categorical=True,
                    math_group=f"{table.name}:all" if column.type.is_numeric and len(numerics) >= 2 else None,
                ),
            )
    return permissive


def _meaningless(sql: str, domain) -> bool:
    """Judge a query against the *real* enhanced schema's annotations."""
    from repro.sql import ast, parse

    query = parse(sql)
    select = query.select
    alias_map = {r.binding.lower(): r.name for r in select.table_refs()}

    def owner(ref: ast.ColumnRef):
        if ref.table is not None:
            return alias_map.get(ref.table.lower())
        for table in alias_map.values():
            if domain.database.schema.table(table).has_column(ref.column):
                return table
        return None

    for node in query.walk():
        if isinstance(node, ast.FuncCall) and node.name.lower() in ("avg", "sum"):
            argument = node.args[0]
            if isinstance(argument, ast.ColumnRef):
                table = owner(argument)
                if table and not domain.enhanced.annotation(
                    table, argument.column
                ).aggregatable:
                    return True
    for key in select.group_by:
        if isinstance(key, ast.ColumnRef):
            table = owner(key)
            if table and not domain.enhanced.annotation(table, key.column).categorical:
                return True
    return False


def test_enhanced_schema_ablation(benchmark, suite, results_dir):
    from repro.experiments.reporting import render_table
    from repro.synthesis.generation import GenerationConfig, SqlGenerator
    from repro.synthesis.seeding import extract_templates

    domain = suite.domain("sdss")
    templates = extract_templates(
        domain.seed.pairs, domain.database.schema
    ).templates
    agg_templates = [
        t for t in templates if "avg" in t.signature or "sum" in t.signature
        or "Group" in t.signature
    ]
    config = GenerationConfig(queries_per_template=8, require_nonempty=False)

    def run():
        results = {}
        for name, enhanced in (
            ("constrained", domain.enhanced),
            ("permissive", _permissive_schema(domain)),
        ):
            generator = SqlGenerator(
                domain.database, enhanced, random.Random(suite.config.seed), config
            )
            queries = generator.generate(agg_templates)
            bad = sum(_meaningless(sql, domain) for sql in queries)
            results[name] = (len(queries), bad)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    constrained_total, constrained_bad = results["constrained"]
    permissive_total, permissive_bad = results["permissive"]
    assert constrained_total > 0 and permissive_total > 0
    assert constrained_bad == 0
    assert permissive_bad / permissive_total > 0.1

    emit(
        results_dir,
        "ablation_enhanced_schema.txt",
        render_table(
            "Ablation — enhanced-schema constraints vs meaningless queries",
            ["Schema", "Generated", "Meaningless", "Rate"],
            [
                (name, total, bad, round(bad / total, 3))
                for name, (total, bad) in results.items()
            ],
            note=(
                "Meaningless = AVG/SUM over an identifier or GROUP BY over a "
                "high-cardinality column (the paper's §3.3.2 anti-examples)."
            ),
        ),
    )
