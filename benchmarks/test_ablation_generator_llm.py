"""Ablation — which language model drives Phase 3, and DBPal augmentation.

Two of the paper's design decisions, measured end to end:

1. **Generator choice** (Table 3's conclusion): running the pipeline with
   the fine-tuned GPT-3 generator yields higher silver quality than running
   it with GPT-2.
2. **DBPal integration** (footnote 9): rule-based NL augmentation multiplies
   the synthetic split without touching the SQL; the augmented questions
   remain judgeable at nearly the same quality.
"""

from conftest import emit


def test_generator_llm_ablation(benchmark, suite, results_dir):
    from repro.experiments.reporting import render_table
    from repro.llm.models import GPT2_PROFILE, GPT3_PROFILE, make_model
    from repro.metrics.equivalence import EquivalenceJudge
    from repro.nlgen.augmentations import augment_pairs
    from repro.synthesis import AugmentationPipeline, PipelineConfig
    from repro.datasets import sdss

    judge_domain = suite.domain("sdss")
    judge = EquivalenceJudge(judge_domain.enhanced, lexicon=judge_domain.lexicon)

    def run():
        rates = {}
        splits = {}
        for name, profile in (("gpt3-ft", GPT3_PROFILE), ("gpt2-ft", GPT2_PROFILE)):
            domain = sdss.build(scale=suite.config.domain_scale)
            pipeline = AugmentationPipeline(
                domain,
                model=make_model(profile, seed=suite.config.seed),
                config=PipelineConfig(target_queries=120, seed=suite.config.seed),
            )
            split = pipeline.run().split
            splits[name] = split
            rates[name] = judge.judge_rate([(p.question, p.sql) for p in split.pairs])

        base = splits["gpt3-ft"]
        augmented = augment_pairs(base.pairs, factor=1, seed=suite.config.seed)
        rates["gpt3-ft+dbpal"] = judge.judge_rate(
            [(p.question, p.sql) for p in augmented]
        )
        rates["_dbpal_extra"] = len(augmented) / max(len(base), 1)
        return rates

    rates = benchmark.pedantic(run, rounds=1, iterations=1)

    # Table 3's conclusion, end to end: the better SQL-to-NL model produces
    # the better silver standard.
    assert rates["gpt3-ft"] > rates["gpt2-ft"]
    # DBPal multiplies data with only a modest quality cost.
    assert rates["_dbpal_extra"] > 0.5
    assert rates["gpt3-ft+dbpal"] > rates["gpt3-ft"] - 0.15

    emit(
        results_dir,
        "ablation_generator_llm.txt",
        render_table(
            "Ablation — Phase-3 generator model and DBPal augmentation",
            ["Configuration", "Silver equivalence rate"],
            [
                ("pipeline w/ GPT-3 (ft)", round(rates["gpt3-ft"], 3)),
                ("pipeline w/ GPT-2 (ft)", round(rates["gpt2-ft"], 3)),
                ("GPT-3 synth + DBPal copies", round(rates["gpt3-ft+dbpal"], 3)),
            ],
            note=(
                f"DBPal produced {rates['_dbpal_extra']:.2f} extra pairs per "
                "synthetic pair at near-baseline quality."
            ),
        ),
    )
