"""Extension — execution accuracy by Spider-hardness bucket.

Not a table in the paper, but the natural drill-down of Table 5: the paper
attributes the domain gap to query complexity, so accuracy should fall
monotonically-ish with hardness.  We measure the fully augmented ValueNet on
each domain's dev set, bucketed by the Table-2 hardness classes.
"""

from conftest import emit


def test_hardness_breakdown(benchmark, suite, results_dir):
    from repro.experiments.reporting import render_table
    from repro.metrics.execution import execution_match
    from repro.spider.hardness import HARDNESS_LEVELS

    def run():
        breakdown = {}
        for domain_name in ("cordis", "sdss", "oncomx"):
            system = suite.train_regime("valuenet", domain_name, "both")
            domain = suite.domain(domain_name)
            counts = {level: [0, 0] for level in HARDNESS_LEVELS}
            for pair in suite.dev_pairs(domain_name):
                predicted = system.predict(pair.question, pair.db_id)
                bucket = counts[pair.hardness]
                bucket[1] += 1
                bucket[0] += execution_match(domain.database, pair.sql, predicted)
            breakdown[domain_name] = counts
        return breakdown

    breakdown = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for domain_name, counts in breakdown.items():
        cells = []
        for level in HARDNESS_LEVELS:
            good, total = counts[level]
            cells.append(f"{good}/{total}" if total else "-")
        rows.append((domain_name.upper(), *cells))

        # Shape: easy+medium accuracy >= hard+extra accuracy.
        easy_good = counts["easy"][0] + counts["medium"][0]
        easy_total = counts["easy"][1] + counts["medium"][1]
        hard_good = counts["hard"][0] + counts["extra"][0]
        hard_total = counts["hard"][1] + counts["extra"][1]
        if easy_total and hard_total:
            assert easy_good / easy_total >= hard_good / hard_total - 0.05, domain_name

    emit(
        results_dir,
        "extension_hardness_breakdown.txt",
        render_table(
            "Extension — ValueNet (+seed+synth) accuracy by hardness bucket",
            ["Domain", "Easy", "Medium", "Hard", "Extra"],
            rows,
            note="Cells are correct/total on the domain dev sets.",
        ),
    )
