"""Extension — Spider-Syn-style synonym robustness.

The paper's related work discusses Spider-Syn (Gan et al. 2021): evaluating
whether systems survive synonym substitution in the questions.  We replay
that protocol on ScienceBenchmark: the fully augmented ValueNet is evaluated
on the SDSS dev set twice — verbatim, and with DBPal-style meaning-preserving
rewrites applied to every question.

Expected shape: accuracy drops under rewriting but does not collapse (the
learned lexicon and schema linking carry most of the signal; only surface
anchors are perturbed).
"""

from conftest import emit


def test_synonym_robustness(benchmark, suite, results_dir):
    import random

    from repro.experiments.reporting import render_table
    from repro.metrics.execution import execution_match
    from repro.nlgen.augmentations import augment_question

    domain = suite.domain("sdss")
    system = suite.train_regime("valuenet", "sdss", "both")
    rng = random.Random(suite.config.seed)

    def run():
        verbatim = rewritten = total = 0
        for pair in suite.dev_pairs("sdss"):
            total += 1
            verbatim += execution_match(
                domain.database, pair.sql, system.predict(pair.question, pair.db_id)
            )
            perturbed = augment_question(pair.question, rng, n_ops=2)
            rewritten += execution_match(
                domain.database, pair.sql, system.predict(perturbed, pair.db_id)
            )
        return verbatim / total, rewritten / total, total

    verbatim_acc, rewritten_acc, total = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    assert rewritten_acc <= verbatim_acc + 0.03  # rewriting never helps
    assert rewritten_acc >= verbatim_acc * 0.5  # ... but must not collapse

    emit(
        results_dir,
        "extension_synonym_robustness.txt",
        render_table(
            "Extension — synonym robustness of augmented ValueNet (SDSS dev)",
            ["Evaluation", "Execution accuracy"],
            [
                (f"verbatim questions (n={total})", round(verbatim_acc, 3)),
                ("synonym-rewritten questions", round(rewritten_acc, 3)),
            ],
            note="Protocol after Spider-Syn (Gan et al. 2021), discussed in the paper's related work.",
        ),
    )
