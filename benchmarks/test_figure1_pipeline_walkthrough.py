"""Benchmark — Figure 1: the end-to-end pipeline walk-through.

Replays the paper's architecture figure on its own running example (the
SDSS ``neighbors`` query): seed SQL → template → generated SQL queries →
8 candidate questions each → top-2 selection.
"""

from conftest import emit


def test_figure1(benchmark, suite, results_dir):
    from repro.experiments.figures import FIGURE1_SEED_SQL, render_figure1, run_figure1

    trace = benchmark.pedantic(
        run_figure1, args=(suite,), kwargs={"n_queries": 3}, rounds=1, iterations=1
    )

    assert trace.seed_sql == FIGURE1_SEED_SQL
    assert "T(0)" in trace.template_signature and "V(0)" in trace.template_signature
    assert len(trace.generated_sql) >= 2
    database = suite.domain("sdss").database
    for sql in trace.generated_sql:
        assert database.try_execute(sql) is not None
        assert len(trace.candidates[sql]) == 8
        assert 1 <= len(trace.selected[sql]) <= 2
        assert set(trace.selected[sql]) <= set(trace.candidates[sql])

    emit(results_dir, "figure1.txt", render_figure1(trace))
