"""Benchmark — Figure 2: template extraction and application.

Replays the paper's AST-anonymization figure: the ``neighbors`` query's
leaves become positional placeholders (one table, two columns, one value),
and re-applying the template against the database yields fresh, executable,
structurally identical queries.
"""

from conftest import emit


def test_figure2(benchmark, suite, results_dir):
    from repro.experiments.figures import render_figure2, run_figure2
    from repro.semql import extract_template, sql_to_semql
    from repro.spider.hardness import classify_hardness
    from repro.sql import parse

    demo = benchmark.pedantic(
        run_figure2, args=(suite,), kwargs={"n_applications": 4}, rounds=1, iterations=1
    )

    # The Figure-2 quadruple: T(0), C(0) projection, C(1) filter, V(0).
    assert (demo.n_tables, demo.n_columns, demo.n_values) == (1, 2, 1)
    assert len(demo.applications) >= 3

    schema = suite.domain("sdss").database.schema
    source_signature = extract_template(
        sql_to_semql(parse(demo.source_sql), schema)
    ).signature
    for sql in demo.applications:
        applied_signature = extract_template(
            sql_to_semql(parse(sql), schema)
        ).signature
        assert applied_signature == source_signature
        assert classify_hardness(sql) == classify_hardness(demo.source_sql)

    emit(results_dir, "figure2.txt", render_figure2(demo))
