"""Benchmark — Table 1: database complexity (ScienceBenchmark vs Spider).

Regenerates the paper's database-statistics table and checks the structural
claims that must hold exactly: 19/82 (CORDIS), 6/61 (SDSS), 25/106 (OncoMX)
tables/columns, and every domain database larger and wider than the average
MiniSpider database.
"""

from conftest import emit


def test_table1(benchmark, suite, results_dir):
    from repro.experiments.table1 import compute_table1, render_table1

    data = benchmark.pedantic(compute_table1, args=(suite,), rounds=1, iterations=1)

    measured = {row.dataset.split(" ")[0]: row for row in data["measured"]}
    assert (measured["CORDIS"].tables, measured["CORDIS"].columns) == (19, 82)
    assert (measured["SDSS"].tables, measured["SDSS"].columns) == (6, 61)
    assert (measured["ONCOMX"].tables, measured["ONCOMX"].columns) == (25, 106)

    spider_avg = data["spider_avg"]
    for row in measured.values():
        assert row.columns > spider_avg.columns
        assert row.rows > spider_avg.rows

    emit(results_dir, "table1.txt", render_table1(suite))
