"""Benchmark — Table 2: Spider-hardness distribution of every split.

Shape checks (the paper's observations):
* every domain ships Seed, Dev and Synth splits with four hardness classes;
* Synth skews easier than Dev (complex templates instantiate less reliably);
* OncoMX is the easiest domain (no meaningful extra-hard seed mass);
* the SDSS Dev set is the hardest evaluation set.
"""

from conftest import emit


def test_table2(benchmark, suite, results_dir):
    from repro.experiments.table2 import (
        compute_table2,
        render_table2,
        synth_easier_than_dev,
    )

    rows = benchmark.pedantic(compute_table2, args=(suite,), rounds=1, iterations=1)
    by_name = {row["dataset"]: row for row in rows}

    for domain in ("cordis", "sdss", "oncomx"):
        for split in ("seed", "dev", "synth"):
            assert f"{domain}-{split}" in by_name
        assert synth_easier_than_dev(suite, domain)

    def hard_share(name):
        row = by_name[name]
        return (row["hard"] + row["extra"]) / row["total"]

    assert hard_share("oncomx-seed") <= hard_share("sdss-seed") + 0.05
    assert hard_share("sdss-dev") >= 0.3  # SDSS dev is hard, as in the paper

    emit(results_dir, "table2.txt", render_table2(suite))
