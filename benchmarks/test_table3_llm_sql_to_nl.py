"""Benchmark — Table 3: SQL-to-NL quality of the four simulated LLMs, plus
the per-domain expert rates of §4.1.2.

Shape checks (the paper's findings):
* fine-tuned GPT-3 has the best SacreBLEU and embedding score;
* both GPT-3 variants beat GPT-2 on the expert rate;
* SDSS is the hardest domain to verbalise (lowest §4.1.2 rate).
"""

from conftest import emit


def test_table3(benchmark, suite, results_dir):
    from repro.experiments.table3 import (
        compute_domain_expert_rates,
        compute_table3,
        render_table3,
    )

    rows = benchmark.pedantic(compute_table3, args=(suite,), rounds=1, iterations=1)
    by_model = {r.model: r for r in rows}

    best_bleu = max(rows, key=lambda r: r.sacrebleu)
    assert best_bleu.model == "gpt3-davinci-ft"
    best_embed = max(rows, key=lambda r: r.sentence_score)
    assert best_embed.model == "gpt3-davinci-ft"

    gpt2 = by_model["gpt2-large-ft"]
    assert by_model["gpt3-davinci-zero"].expert_rate >= gpt2.expert_rate
    assert by_model["gpt3-davinci-ft"].expert_rate >= gpt2.expert_rate

    domain_rates = compute_domain_expert_rates(suite)
    assert domain_rates["sdss"] <= domain_rates["cordis"]  # SDSS hardest
    for rate in domain_rates.values():
        assert 0.3 <= rate <= 1.0

    emit(results_dir, "table3.txt", render_table3(suite))
