"""Benchmark — Table 4: silver-standard quality of the synthetic splits.

Shape check (the paper's finding): every domain's synthetic data is high
quality but imperfect — the expert-judged semantic-equivalence rate lies in
the silver band (the paper reports 75–83%), never at 100%.
"""

from conftest import emit


def test_table4(benchmark, suite, results_dir):
    from repro.experiments.table4 import compute_table4, render_table4

    rows = benchmark.pedantic(compute_table4, args=(suite,), rounds=1, iterations=1)
    assert {r.domain for r in rows} == {"CORDIS", "SDSS", "ONCOMX"}
    for row in rows:
        assert row.total_synth >= 100
        assert row.sample_size == suite.config.table4_sample
        assert 0.6 <= row.semantic_equivalence < 1.0, row

    emit(results_dir, "table4.txt", render_table4(suite))
