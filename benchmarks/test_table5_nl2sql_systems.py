"""Benchmark — Table 5: execution accuracy of the NL-to-SQL systems under
every training regime (the paper's headline experiment).

Shape checks (the paper's findings, asserted as inequalities):
* Spider-control accuracy is far above every zero-shot domain accuracy;
* for every system and domain, the best augmented regime beats zero-shot;
* training on synthetic Spider data alone is worse than real Spider data.

This is the heaviest benchmark (36 domain cells + 9 Spider-control cells);
expect a few minutes on the quick preset.
"""

from conftest import emit


def test_table5(benchmark, suite, results_dir):
    from repro.experiments.table5 import (
        DOMAIN_REGIMES,
        compute_table5,
        render_table5,
    )

    DOMAINS = suite.domain_names()
    result = benchmark.pedantic(compute_table5, args=(suite,), rounds=1, iterations=1)
    systems = ("valuenet", "t5-large", "smbop")

    for system in systems:
        spider_zero = result.accuracy(system, "spider", "zero")
        for domain in DOMAINS:
            zero = result.accuracy(system, domain, "zero")
            # Claim 1: scientific domains are drastically harder than Spider.
            assert spider_zero > zero + 0.1, (system, domain)
            # Claim 2: augmentation recovers part of the gap.  A 0.03
            # tolerance absorbs single-question noise on ~100-pair dev sets
            # (the aggregate check below is strict).
            best = max(
                result.accuracy(system, domain, regime)
                for regime in DOMAIN_REGIMES[1:]
            )
            assert best >= zero - 0.03, (system, domain)

        # Claim 3 (ValueNet/T5 show it sharply): synthetic-only Spider
        # training underperforms real Spider training.
        synth_only = result.accuracy(system, "spider", "synth-only")
        assert synth_only <= spider_zero + 0.02, system

    # Aggregate claim: averaged over systems, every domain's seed+synth mix
    # improves on zero-shot (the paper's "up to +30%" row-level gains).
    for domain in DOMAINS:
        zero_avg = sum(result.accuracy(s, domain, "zero") for s in systems) / 3
        both_avg = sum(result.accuracy(s, domain, "both") for s in systems) / 3
        assert both_avg > zero_avg, domain

    emit(results_dir, "table5.txt", render_table5(result))
