"""Bootstrapping NL-to-SQL training data for *your own* database.

The paper's pipeline is generic: give it a database, a handful of expert
NL/SQL pairs and (optionally) an enhanced schema, and it produces synthetic
training data.  This example walks a brand-new toy domain — a climate
station network — through the same steps ScienceBenchmark applied to CORDIS,
SDSS and OncoMX:

1. define the schema and load data;
2. profile the enhanced schema automatically, refine it manually;
3. write a few expert seed pairs;
4. run the pipeline and inspect the silver-standard output.

    python examples/bootstrap_new_domain.py
"""

import random

from repro import (
    AugmentationPipeline,
    Column,
    ColumnType,
    ForeignKey,
    NLSQLPair,
    PipelineConfig,
    Schema,
    Split,
    TableDef,
    create_database,
)
from repro.datasets.records import BenchmarkDomain
from repro.nlgen.lexicon import DomainLexicon
from repro.schema.introspect import profile_database

I, F, T = ColumnType.INTEGER, ColumnType.REAL, ColumnType.TEXT


def build_climate_database():
    schema = Schema(
        name="climate",
        tables=(
            TableDef(
                "station",
                (
                    Column("station_id", I, alias="station id"),
                    Column("station_name", T, alias="station name"),
                    Column("country", T, alias="country"),
                    Column("elevation", F, alias="elevation"),
                ),
                primary_key="station_id",
                alias="weather station",
            ),
            TableDef(
                "measurement",
                (
                    Column("measurement_id", I, alias="measurement id"),
                    Column("station_id", I, alias="station id"),
                    Column("year", I, alias="year"),
                    Column("avg_temp", F, alias="average temperature"),
                    Column("precipitation", F, alias="precipitation"),
                ),
                primary_key="measurement_id",
                alias="measurement",
            ),
        ),
        foreign_keys=(ForeignKey("measurement", "station_id", "station", "station_id"),),
    )
    db = create_database(schema)
    rng = random.Random(5)
    countries = ["Norway", "Kenya", "Peru", "Japan"]
    db.insert(
        "station",
        [
            (i, f"Station-{i:02d}", rng.choice(countries), round(rng.uniform(2, 3500), 1))
            for i in range(1, 31)
        ],
    )
    db.insert(
        "measurement",
        [
            (
                100 + i,
                rng.randint(1, 30),
                rng.randint(1990, 2022),
                round(rng.uniform(-12, 31), 2),
                round(rng.uniform(50, 2600), 1),
            )
            for i in range(400)
        ],
    )
    return db


def main() -> None:
    database = build_climate_database()

    # Step 2: automatic profiling + one-shot manual refinement.
    enhanced = profile_database(database)
    enhanced.mark_math_group("measurement", "measurement:climate", "avg_temp", "precipitation")

    lexicon = DomainLexicon(name="climate")
    lexicon.add_table("station", "weather stations")
    lexicon.add_column("measurement", "avg_temp", "average temperature", "mean temperature")

    # Step 3: a handful of expert seed pairs.
    seeds = [
        NLSQLPair(
            question="Find the station names of weather stations in Norway.",
            sql="SELECT station_name FROM station WHERE country = 'Norway'",
            db_id="climate",
            source="seed",
        ),
        NLSQLPair(
            question="What is the average temperature measured in 2020?",
            sql="SELECT AVG(avg_temp) FROM measurement WHERE year = 2020",
            db_id="climate",
            source="seed",
        ),
        NLSQLPair(
            question="How many measurements are there for each year?",
            sql="SELECT COUNT(*), year FROM measurement GROUP BY year",
            db_id="climate",
            source="seed",
        ),
        NLSQLPair(
            question="Find the station names of stations with elevation above 2000.",
            sql="SELECT station_name FROM station WHERE elevation > 2000",
            db_id="climate",
            source="seed",
        ),
        NLSQLPair(
            question=(
                "List the years of measurements whose precipitation is greater "
                "than the average precipitation of all measurements."
            ),
            sql=(
                "SELECT year FROM measurement WHERE precipitation > "
                "(SELECT AVG(precipitation) FROM measurement)"
            ),
            db_id="climate",
            source="seed",
        ),
    ]

    domain = BenchmarkDomain(
        name="climate",
        database=database,
        enhanced=enhanced,
        lexicon=lexicon,
        seed=Split(name="climate-seed", pairs=seeds),
        dev=Split(name="climate-dev", pairs=[]),
    )

    # Step 4: run the pipeline.
    pipeline = AugmentationPipeline(domain, config=PipelineConfig(target_queries=60))
    report = pipeline.run()
    print(
        f"{report.seeding.n_unique} templates from {len(seeds)} seeds "
        f"-> {report.n_generated_sql} SQL queries -> {report.n_pairs} NL/SQL pairs"
    )
    stats = report.generation
    print(
        f"oracle budget: {stats.candidates} candidates, "
        f"{stats.static_rejected} rejected by the static analyzer without "
        f"executing, {stats.executed} executed "
        f"({stats.runtime_rejected} rejected at runtime, {stats.accepted} accepted)"
    )
    for pair in report.split.pairs[:8]:
        print(f"  NL : {pair.question}")
        print(f"  SQL: {pair.sql}")


if __name__ == "__main__":
    main()
