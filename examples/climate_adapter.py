"""A complete ScienceBenchmark domain adapter in one file.

This is the "add a new domain" walkthrough from the README: a toy climate
station network packaged as a self-registering domain adapter.  Loading
this module (``--adapter examples/climate_adapter.py`` on any
``sciencebenchmark`` command, or ``import`` from Python) registers the
``climate`` domain with :mod:`repro.adapters`, after which every part of
the harness — ``tables``, ``augment``, ``lint``, ``diff-exec`` — treats it
exactly like the built-in CORDIS/SDSS/OncoMX domains:

    PYTHONPATH=src python -m repro.cli tables 1 \
        --adapter examples/climate_adapter.py --domain climate

The adapter contract is a single callable::

    def build(scale: float = 1.0, seed: int = <default>) -> BenchmarkDomain

``scale`` multiplies the synthetic row counts; ``seed`` drives every random
choice so the domain is bit-reproducible.  The manifest records
``module=__name__`` and ``source=__file__`` so worker processes can
re-import this file by path without inheriting the parent's registry.
"""

from __future__ import annotations

import random

from repro.adapters import AdapterManifest, register
from repro.datasets.records import BenchmarkDomain, NLSQLPair, Split
from repro.engine import create_database
from repro.nlgen.lexicon import DomainLexicon
from repro.schema import Column, ColumnType, ForeignKey, Schema, TableDef
from repro.schema.introspect import profile_database

I, F, T = ColumnType.INTEGER, ColumnType.REAL, ColumnType.TEXT

DEFAULT_SEED = 5


def _schema() -> Schema:
    return Schema(
        name="climate",
        tables=(
            TableDef(
                "station",
                (
                    Column("station_id", I, alias="station id"),
                    Column("station_name", T, alias="station name"),
                    Column("country", T, alias="country"),
                    Column("elevation", F, alias="elevation"),
                ),
                primary_key="station_id",
                alias="weather station",
            ),
            TableDef(
                "measurement",
                (
                    Column("measurement_id", I, alias="measurement id"),
                    Column("station_id", I, alias="station id"),
                    Column("year", I, alias="year"),
                    Column("avg_temp", F, alias="average temperature"),
                    Column("precipitation", F, alias="precipitation"),
                ),
                primary_key="measurement_id",
                alias="measurement",
            ),
        ),
        foreign_keys=(
            ForeignKey("measurement", "station_id", "station", "station_id"),
        ),
    )


def _seed_pairs() -> list[NLSQLPair]:
    rows = [
        (
            "Find the station names of weather stations in Norway.",
            "SELECT station_name FROM station WHERE country = 'Norway'",
        ),
        (
            "What is the average temperature measured in 2020?",
            "SELECT AVG(avg_temp) FROM measurement WHERE year = 2020",
        ),
        (
            "How many measurements are there for each year?",
            "SELECT COUNT(*), year FROM measurement GROUP BY year",
        ),
        (
            "Find the station names of stations with elevation above 2000.",
            "SELECT station_name FROM station WHERE elevation > 2000",
        ),
        (
            "List the years of measurements whose precipitation is greater "
            "than the average precipitation of all measurements.",
            "SELECT year FROM measurement WHERE precipitation > "
            "(SELECT AVG(precipitation) FROM measurement)",
        ),
        (
            "Show the names of stations that have at least one measurement.",
            "SELECT DISTINCT station.station_name FROM station JOIN "
            "measurement ON station.station_id = measurement.station_id",
        ),
    ]
    return [
        NLSQLPair(question=q, sql=s, db_id="climate", source="seed")
        for q, s in rows
    ]


def _dev_pairs() -> list[NLSQLPair]:
    rows = [
        (
            "How many weather stations are there?",
            "SELECT COUNT(*) FROM station",
        ),
        (
            "What is the highest elevation of any station?",
            "SELECT MAX(elevation) FROM station",
        ),
        (
            "List the countries of all weather stations.",
            "SELECT DISTINCT country FROM station",
        ),
        (
            "What is the average precipitation per year?",
            "SELECT AVG(precipitation), year FROM measurement GROUP BY year",
        ),
    ]
    return [
        NLSQLPair(question=q, sql=s, db_id="climate", source="dev")
        for q, s in rows
    ]


def build(scale: float = 1.0, seed: int = DEFAULT_SEED) -> BenchmarkDomain:
    """Construct the toy climate domain (the adapter entry point)."""
    rng = random.Random(seed)
    database = create_database(_schema())

    n_stations = max(4, int(30 * scale))
    n_measurements = max(20, int(400 * scale))
    countries = ["Norway", "Kenya", "Peru", "Japan"]
    database.insert(
        "station",
        [
            (
                i,
                f"Station-{i:02d}",
                rng.choice(countries),
                round(rng.uniform(2, 3500), 1),
            )
            for i in range(1, n_stations + 1)
        ],
    )
    database.insert(
        "measurement",
        [
            (
                100 + i,
                rng.randint(1, n_stations),
                rng.randint(1990, 2022),
                round(rng.uniform(-12, 31), 2),
                round(rng.uniform(50, 2600), 1),
            )
            for i in range(n_measurements)
        ],
    )

    enhanced = profile_database(database)
    enhanced.mark_math_group(
        "measurement", "measurement:climate", "avg_temp", "precipitation"
    )
    lexicon = DomainLexicon(name="climate")
    lexicon.add_table("station", "weather stations")
    lexicon.add_column(
        "measurement", "avg_temp", "average temperature", "mean temperature"
    )

    return BenchmarkDomain(
        name="climate",
        database=database,
        enhanced=enhanced,
        lexicon=lexicon,
        seed=Split(name="climate-seed", pairs=_seed_pairs()),
        dev=Split(name="climate-dev", pairs=_dev_pairs()),
    )


register(
    AdapterManifest(
        name="climate",
        module=__name__,
        attr="build",
        source=__file__,
        description="Toy climate station network (adapter walkthrough)",
    )
)
