"""Evaluating NL-to-SQL systems on a ScienceBenchmark domain (mini Table 5).

Trains the three systems under the paper's four regimes on the OncoMX
domain and prints the execution-accuracy grid — the per-domain slice of the
paper's Table 5.

    python examples/evaluate_nl2sql.py
"""

from repro import ExecutionAccuracy, SmBoP, T5Seq2Seq, ValueNet, augment_domain, build_domain
from repro.spider import build_corpus


def main() -> None:
    print("Building MiniSpider (the Spider stand-in) and the OncoMX domain...")
    corpus = build_corpus(train_per_db=50, dev_per_db=8)
    domain = build_domain("oncomx", scale=0.3)
    synth = augment_domain(domain, target_queries=200)
    print(f"  spider train: {len(corpus.train)}, oncomx seed: {len(domain.seed)}, synth: {len(synth)}")

    regimes = {
        "Spider (zero-shot)": list(corpus.train.pairs),
        "+ Seed": list(corpus.train.pairs) + list(domain.seed.pairs),
        "+ Synth": list(corpus.train.pairs) + list(synth.pairs),
        "+ Seed + Synth": (
            list(corpus.train.pairs) + list(domain.seed.pairs) + list(synth.pairs)
        ),
    }

    header = f"{'Train set':22s}" + "".join(
        f"{name:>12s}" for name in ("valuenet", "t5-large", "smbop")
    )
    print("\n" + header)
    for regime_name, pairs in regimes.items():
        cells = []
        for system_cls in (ValueNet, T5Seq2Seq, SmBoP):
            system = system_cls()
            for db_id, database in corpus.databases.items():
                system.register_database(db_id, database, corpus.enhanced[db_id])
            system.register_database(domain.name, domain.database, domain.enhanced)
            system.train(pairs)
            accuracy = ExecutionAccuracy()
            for pair in domain.dev.pairs:
                accuracy.add(
                    domain.database, pair.sql, system.predict(pair.question, pair.db_id)
                )
            cells.append(f"{accuracy.accuracy:12.3f}")
        print(f"{regime_name:22s}" + "".join(cells))

    print(
        "\nExpected shape (paper, Table 5): zero-shot lowest, every augmented "
        "regime higher,\nwith the seed+synth mix at or near the top."
    )


if __name__ == "__main__":
    main()
