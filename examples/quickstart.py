"""Quickstart: build a ScienceBenchmark domain and augment it.

Runs the full Figure-1 pipeline on a small SDSS instance and prints a few
of the resulting synthetic NL/SQL pairs next to the expert-written seeds.

    python examples/quickstart.py
"""

from repro import augment_domain, build_domain


def main() -> None:
    print("Building the SDSS astrophysics domain (scale 0.3)...")
    domain = build_domain("sdss", scale=0.3)
    print(
        f"  {len(domain.database.schema.tables)} tables, "
        f"{domain.database.schema.total_columns()} columns, "
        f"{domain.database.row_count():,} rows"
    )
    print(f"  {len(domain.seed)} expert seed pairs, {len(domain.dev)} dev pairs")

    print("\nOne expert seed pair:")
    pair = domain.seed.pairs[0]
    print(f"  NL : {pair.question}")
    print(f"  SQL: {pair.sql}")

    print("\nRunning the 4-phase augmentation pipeline (target: 150 queries)...")
    synth = augment_domain(domain, target_queries=150)
    print(f"  produced {len(synth)} synthetic NL/SQL pairs")
    print(f"  hardness mix: {synth.hardness_counts()}")

    print("\nThree synthetic pairs:")
    for pair in synth.pairs[:3]:
        print(f"  NL : {pair.question}")
        print(f"  SQL: {pair.sql}")
        rows = domain.database.execute(pair.sql).rows
        print(f"       -> executes, {len(rows)} row(s)")


if __name__ == "__main__":
    main()
