"""A tour of the relational substrate: parse, execute, inspect.

ScienceBenchmark's evaluation rests on executing gold and predicted SQL
against real databases.  This example pokes the in-memory engine directly
with the paper's three running-example queries on the SDSS instance.

    python examples/sql_engine_tour.py
"""

from repro import build_domain, classify_hardness, parse, to_sql
from repro.semql import extract_template, semql_to_sql, sql_to_semql


QUERIES = [
    # Q1 of the paper (Spider hardness: easy)
    "SELECT specobjid FROM specobj WHERE subclass = 'STARBURST'",
    # Q2 (medium)
    "SELECT bestobjid, ra, dec, z FROM specobj WHERE class = 'GALAXY' AND z > 0.5 AND z < 1",
    # Q3 (extra hard) — note the math operator on photometric magnitudes
    (
        "SELECT T1.objid, T2.specobjid FROM photoobj AS T1 "
        "JOIN specobj AS T2 ON T2.bestobjid = T1.objid "
        "WHERE T2.class = 'GALAXY' AND T1.u - T1.r < 2.22 AND T1.u - T1.r > 1"
    ),
]


def main() -> None:
    domain = build_domain("sdss", scale=0.3)
    db = domain.database

    for sql in QUERIES:
        print(f"SQL      : {to_sql(parse(sql))}")
        print(f"hardness : {classify_hardness(sql)}")

        result = db.execute(sql)
        print(f"result   : {len(result.rows)} row(s); first: {result.rows[:1]}")

        # Round-trip through SemQL, the paper's intermediate representation.
        z = sql_to_semql(parse(sql), db.schema)
        lowered = semql_to_sql(z, db.schema)
        print(f"semql->  : {lowered}")

        template = extract_template(z, source_sql=sql)
        print(f"template : {template.signature}")
        print(
            f"readable : {domain.enhanced.readable_sql(sql)}"
        )
        print()


if __name__ == "__main__":
    main()
