"""ScienceBenchmark reproduction — complex NL-to-SQL benchmark construction.

Reproduction of *"ScienceBenchmark: A Complex Real-World Benchmark for
Evaluating Natural Language to SQL Systems"* (VLDB 2023): three scientific
benchmark databases (CORDIS, SDSS, OncoMX), the four-phase automatic
training-data generation pipeline, simulated SQL-to-NL language models,
three trainable NL-to-SQL systems and the full evaluation harness.

Quickstart::

    from repro import build_domain, augment_domain

    domain = build_domain("sdss", scale=0.3)
    synth = augment_domain(domain, target_queries=500)
    print(len(synth), "synthetic NL/SQL pairs")

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
regeneration of every table and figure in the paper.
"""

from repro.datasets.records import BenchmarkDomain, NLSQLPair, Split
from repro.engine import Database, create_database
from repro.errors import ReproError
from repro.metrics import ExecutionAccuracy, execution_match
from repro.nl2sql import SmBoP, T5Seq2Seq, ValueNet
from repro.runtime import Runtime
from repro.schema import Column, ColumnType, EnhancedSchema, ForeignKey, Schema, TableDef
from repro.spider import build_corpus, classify_hardness
from repro.sql import parse, to_sql
from repro.synthesis import AugmentationPipeline, PipelineConfig, augment_domain

__version__ = "1.0.0"


def build_domain(name: str, scale: float = 1.0, seed: int | None = None) -> BenchmarkDomain:
    """Build one registered benchmark domain (``cordis``, ``sdss``, ``oncomx``
    or any adapter registered through :mod:`repro.adapters`).

    ``scale`` multiplies the synthetic row counts; ``seed`` overrides the
    dataset's default RNG seed.
    """
    from repro import adapters
    from repro.errors import AdapterError

    try:
        adapter = adapters.get_adapter(name)
    except AdapterError:
        raise ValueError(
            f"unknown domain {name!r}; choose from {list(adapters.list_adapters())}"
        ) from None
    return adapter.build(scale=scale, seed=seed)


def __getattr__(name):
    # Lazy: repro.experiments imports this package's submodules, so a direct
    # top-level import of Suite here would be circular at package init time.
    if name in ("Suite", "BenchmarkSuite"):
        from repro.experiments.runner import BenchmarkSuite

        return BenchmarkSuite
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "build_domain",
    "augment_domain",
    "Suite",
    "BenchmarkSuite",
    "Runtime",
    "AugmentationPipeline",
    "PipelineConfig",
    "BenchmarkDomain",
    "NLSQLPair",
    "Split",
    "Database",
    "create_database",
    "Schema",
    "TableDef",
    "Column",
    "ColumnType",
    "ForeignKey",
    "EnhancedSchema",
    "ValueNet",
    "T5Seq2Seq",
    "SmBoP",
    "ExecutionAccuracy",
    "execution_match",
    "build_corpus",
    "classify_hardness",
    "parse",
    "to_sql",
    "ReproError",
    "__version__",
]
