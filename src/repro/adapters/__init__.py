"""``repro.adapters`` — the pluggable domain-adapter registry.

The adapter protocol
--------------------
A *domain adapter* is one self-contained module exposing a build entry
point::

    def build(scale: float = 1.0, seed: int = <default>) -> BenchmarkDomain

The returned :class:`~repro.datasets.records.BenchmarkDomain` bundles
everything a domain contributes to the benchmark: the schema and populated
database, the enhanced schema, the value generators' output (the data
itself), the NL lexicon hooks, and the expert-written Seed/Dev NL-SQL pairs.
``scale`` multiplies synthetic row counts; ``seed`` makes the build
reproducible.  The three paper domains (cordis, sdss, oncomx) follow exactly
this convention and are registered as builtins — a new domain is one new
module plus one :class:`AdapterManifest`, no edits to existing code.

Registration is manifest-driven and lazy::

    from repro import adapters

    adapters.register(adapters.AdapterManifest(
        name="climate", module="my_pkg.climate", description="toy domain"))
    domain = adapters.get_adapter("climate").build(scale=0.5)

``list_adapters()`` is always sorted, so resolution never depends on import
or registration order.
"""

from __future__ import annotations

from typing import Protocol

from repro.adapters.manifest import AdapterManifest
from repro.adapters.registry import (
    BUILTIN_MANIFESTS,
    METRICS,
    DomainAdapter,
    builder_from_spec,
    get_adapter,
    get_manifest,
    list_adapters,
    load_adapter_source,
    register,
    register_specs,
    specs_for,
    temporary,
    unregister,
)
from repro.errors import AdapterError

__all__ = [
    "AdapterError",
    "AdapterManifest",
    "BUILTIN_MANIFESTS",
    "METRICS",
    "DomainAdapter",
    "DomainBuilder",
    "builder_from_spec",
    "get_adapter",
    "get_manifest",
    "list_adapters",
    "load_adapter_source",
    "register",
    "register_specs",
    "specs_for",
    "temporary",
    "unregister",
]


class DomainBuilder(Protocol):
    """The adapter protocol's build entry point (structural typing only)."""

    def __call__(self, scale: float = ..., seed: int = ...):  # pragma: no cover
        ...
