"""Adapter manifests: pure-data descriptions of domain adapter modules.

A manifest names *where* a domain adapter lives (module + attribute) without
importing it.  The registry resolves manifests lazily, so registering every
builtin domain costs nothing until a domain is actually built — and the
manifest's :meth:`~AdapterManifest.spec` form travels into task-graph params
so worker processes can import the adapter without sharing the parent
process's registry state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AdapterError


@dataclass(frozen=True)
class AdapterManifest:
    """Where one domain adapter lives and how to load it.

    ``module`` is an importable dotted path whose ``attr`` is the adapter's
    build entry point (the :data:`~repro.adapters.DomainBuilder` protocol:
    ``build(scale=..., seed=...) -> BenchmarkDomain``).  For adapters
    distributed as a single ``.py`` file outside ``sys.path`` (the "new
    domain in one file" workflow), ``source`` carries the file path so any
    process — including pool workers — can load it by location.
    """

    name: str
    module: str
    attr: str = "build"
    description: str = ""
    #: File path for adapters loaded from a standalone ``.py`` file.
    source: str | None = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").replace("-", "").isalnum():
            raise AdapterError(f"invalid adapter name {self.name!r}")
        if self.name != self.name.lower():
            raise AdapterError(
                f"adapter name {self.name!r} must be lowercase (names are "
                "matched case-insensitively on the command line)"
            )
        if not self.module:
            raise AdapterError(f"adapter {self.name!r} has no module")

    def spec(self) -> dict:
        """The JSON-safe import spec (feeds task params and content hashes)."""
        spec = {"module": self.module, "attr": self.attr}
        if self.source is not None:
            spec["source"] = self.source
        return spec

    @classmethod
    def from_spec(cls, name: str, spec: dict) -> "AdapterManifest":
        return cls(
            name=name,
            module=spec["module"],
            attr=spec.get("attr", "build"),
            source=spec.get("source"),
        )
