"""The domain-adapter registry: manifest in, lazily-loaded adapter out.

The registry is the single resolution point for domain names.  Everything
that used to import ``repro.datasets.cordis`` (and friends) by name — the
CLI, the experiment task graph, serving, chaos-bench — now asks
``get_adapter(name)`` and receives a :class:`DomainAdapter` handle that
imports the underlying module only when the domain is actually built.

Resolution is deterministic: :func:`list_adapters` returns sorted names, and
registration order never affects behaviour.  Registering the same manifest
twice is a no-op (so a CLI ``--adapter`` file can be loaded repeatedly);
registering a *different* manifest under an existing name raises
:class:`~repro.errors.AdapterError` unless ``replace=True``.
"""

from __future__ import annotations

import importlib
import importlib.util
import sys
from pathlib import Path

from repro.adapters.manifest import AdapterManifest
from repro.checks.lockorder import new_lock
from repro.errors import AdapterError
from repro.obs import get_tracer
from repro.obs.metrics import MetricsRegistry

#: Load/registration counters for the whole process ("adapters.registered",
#: "adapters.loaded", "adapters.load_errors").  Snapshot via
#: ``METRICS.snapshot()``; diff-exec embeds it in its report.
METRICS = MetricsRegistry()

_lock = new_lock("adapters.registry")
_manifests: dict[str, AdapterManifest] = {}
_adapters: dict[str, "DomainAdapter"] = {}


class DomainAdapter:
    """A lazy handle over one registered domain adapter module.

    ``build(scale=..., seed=...)`` imports the adapter module on first use
    (recorded as an ``adapter.load`` span and an ``adapters.loaded``
    counter) and delegates to its build entry point, which must return a
    :class:`~repro.datasets.records.BenchmarkDomain`.
    """

    def __init__(self, manifest: AdapterManifest) -> None:
        self.manifest = manifest
        self._builder = None

    @property
    def name(self) -> str:
        return self.manifest.name

    @property
    def description(self) -> str:
        return self.manifest.description

    def spec(self) -> dict:
        """JSON-safe import spec for task params (worker-process transport)."""
        return self.manifest.spec()

    def loaded(self) -> bool:
        return self._builder is not None

    def load(self):
        """Resolve the build entry point, importing the module if needed."""
        if self._builder is None:
            tracer = get_tracer()
            with tracer.span(
                "adapter.load", adapter=self.name, module=self.manifest.module
            ):
                self._builder = builder_from_spec(self.manifest.spec())
            METRICS.counter("adapters.loaded").inc()
        return self._builder

    def build(self, scale: float = 1.0, seed: int | None = None):
        """Build the domain at ``scale``; ``seed`` overrides the module's
        default RNG seed when given."""
        builder = self.load()
        domain = builder(scale=scale) if seed is None else builder(scale=scale, seed=seed)
        for attr in ("database", "seed", "dev", "enhanced"):
            if not hasattr(domain, attr):
                raise AdapterError(
                    f"adapter {self.name!r} returned {type(domain).__name__}, "
                    f"not a BenchmarkDomain (missing {attr!r})"
                )
        return domain

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "loaded" if self.loaded() else "lazy"
        return f"DomainAdapter({self.name!r}, {self.manifest.module}, {state})"


def register(manifest: AdapterManifest, replace: bool = False) -> DomainAdapter:
    """Register ``manifest``; returns its (lazy) :class:`DomainAdapter`.

    Identical re-registration is a no-op; a conflicting manifest under an
    existing name raises :class:`AdapterError` unless ``replace=True``.
    """
    with _lock:
        existing = _manifests.get(manifest.name)
        if existing is not None and not replace:
            if existing == manifest:
                return _adapters[manifest.name]
            raise AdapterError(
                f"adapter {manifest.name!r} is already registered "
                f"(module {existing.module!r}); pass replace=True to override"
            )
        adapter = DomainAdapter(manifest)
        _manifests[manifest.name] = manifest
        _adapters[manifest.name] = adapter
    METRICS.counter("adapters.registered").inc()
    return adapter


def unregister(name: str) -> None:
    """Remove one adapter; unknown names are ignored (idempotent cleanup)."""
    with _lock:
        _manifests.pop(name, None)
        _adapters.pop(name, None)


def get_adapter(name: str) -> DomainAdapter:
    """The adapter registered under ``name`` (case-insensitive)."""
    key = name.lower()
    with _lock:
        adapter = _adapters.get(key)
    if adapter is None:
        raise AdapterError(
            f"unknown domain adapter {name!r}; registered adapters: "
            + ", ".join(list_adapters())
        )
    return adapter


def list_adapters() -> tuple[str, ...]:
    """Registered adapter names, sorted — never registration-ordered."""
    with _lock:
        names = list(_manifests)
    return tuple(sorted(names))


def get_manifest(name: str) -> AdapterManifest:
    return get_adapter(name).manifest


def specs_for(names) -> tuple[dict, ...]:
    """Named JSON-safe manifest specs for the given domains.

    The serving fleet ships these with every replica specification: a
    replica (re)built in a context that never imported the domain modules —
    a fresh process, a reload factory — re-registers the adapters from the
    specs before building backends, instead of assuming registry state.
    """
    return tuple(
        {"name": name.lower(), **get_manifest(name).spec()} for name in names
    )


def register_specs(specs) -> None:
    """Re-register adapters from :func:`specs_for` output (idempotent).

    A spec whose import location matches the already-registered manifest is
    a no-op even when cosmetic fields (the description) differ — specs are
    transport, not a second source of truth."""
    for spec in specs:
        manifest = AdapterManifest.from_spec(spec["name"], spec)
        with _lock:
            existing = _manifests.get(manifest.name)
        if existing is not None and existing.spec() == manifest.spec():
            continue
        register(manifest)


class temporary:
    """``with temporary(manifest): ...`` — register for the block only.

    Test hygiene: a toy adapter registered inside one test never leaks into
    the rest of the session.
    """

    def __init__(self, manifest: AdapterManifest, replace: bool = False) -> None:
        self._manifest = manifest
        self._replace = replace
        self._displaced: AdapterManifest | None = None

    def __enter__(self) -> DomainAdapter:
        with _lock:
            self._displaced = _manifests.get(self._manifest.name)
        return register(self._manifest, replace=self._replace)

    def __exit__(self, *exc_info) -> bool:
        unregister(self._manifest.name)
        if self._displaced is not None:
            register(self._displaced)
        return False


# -- import plumbing -----------------------------------------------------------


def builder_from_spec(spec: dict):
    """Resolve an import spec (``{"module", "attr"[, "source"]}``) to the
    build callable.  This is what worker-process task bodies call: the spec
    travels in task params, so no registry state crosses the process
    boundary."""
    module_name = spec["module"]
    attr = spec.get("attr", "build")
    source = spec.get("source")
    try:
        if source is not None and module_name not in sys.modules:
            module = _import_source(module_name, source)
        else:
            module = importlib.import_module(module_name)
    except ImportError as exc:
        METRICS.counter("adapters.load_errors").inc()
        raise AdapterError(
            f"cannot import adapter module {module_name!r}: {exc}"
        ) from exc
    builder = getattr(module, attr, None)
    if not callable(builder):
        METRICS.counter("adapters.load_errors").inc()
        raise AdapterError(
            f"adapter module {module_name!r} has no callable {attr!r}"
        )
    return builder


def _import_source(module_name: str, source: str):
    """Import a standalone ``.py`` file under ``module_name``."""
    path = Path(source)
    if not path.exists():
        raise AdapterError(f"adapter source {source!r} does not exist")
    loader_spec = importlib.util.spec_from_file_location(module_name, path)
    if loader_spec is None or loader_spec.loader is None:
        raise AdapterError(f"cannot load adapter source {source!r}")
    module = importlib.util.module_from_spec(loader_spec)
    sys.modules[module_name] = module
    try:
        loader_spec.loader.exec_module(module)
    except BaseException:
        sys.modules.pop(module_name, None)
        raise
    return module


def load_adapter_source(path: str):
    """Import an adapter file (or dotted module) so it can self-register.

    The file is expected to call :func:`register` at import time — the CLI's
    ``--adapter`` flag routes through here.  Returns the imported module.
    """
    if path.endswith(".py") or "/" in path or path.startswith("."):
        stem = Path(path).stem
        module_name = f"repro_adapter_{stem}"
        if module_name in sys.modules:
            return sys.modules[module_name]
        return _import_source(module_name, path)
    return importlib.import_module(path)


# -- builtins ------------------------------------------------------------------

#: The three ScienceBenchmark domains of the paper, as ordinary adapters.
BUILTIN_MANIFESTS = (
    AdapterManifest(
        name="cordis",
        module="repro.datasets.cordis",
        description="EU research-funding database (CORDIS)",
    ),
    AdapterManifest(
        name="sdss",
        module="repro.datasets.sdss",
        description="Sloan Digital Sky Survey astrophysics database",
    ),
    AdapterManifest(
        name="oncomx",
        module="repro.datasets.oncomx",
        description="OncoMX cancer biomarker database",
    ),
)

for _manifest in BUILTIN_MANIFESTS:
    register(_manifest)
