"""Schema-aware static analysis for benchmark SQL ("sqllint").

This package checks parsed :mod:`repro.sql.ast` trees against a
:class:`~repro.schema.model.Schema` (and optionally an
:class:`~repro.schema.enhanced.EnhancedSchema`) *without executing them*.
Five passes produce structured :class:`Diagnostic` records:

1. **names** — table/column/alias resolution, ambiguity;
2. **typecheck** — comparison/arithmetic/aggregate operand types;
3. **joins** — foreign-key conformance and cartesian-product detection;
4. **aggregates** — GROUP BY discipline, aggregate placement;
5. **cost** — cardinality heuristics from profiled column statistics that
   prove predicates (and whole queries) statically empty.

Three integration points use it: the synthesis pipeline pre-filters
generated candidates before the (expensive) execution oracle
(:func:`rejects_execution`), the evaluation metrics triage failed
predictions (:mod:`repro.metrics.triage`), and the ``sciencebenchmark
lint`` CLI command gates benchmark releases (:func:`lint_domain`).
"""

from repro.analysis.analyzer import (
    EXECUTION_FATAL_RULES,
    analyze,
    build_context,
    rejects_execution,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    count_severity,
    has_errors,
    sort_diagnostics,
)
from repro.analysis.lint import (
    LintEntry,
    LintReport,
    check_database_integrity,
    lint_domain,
)

__all__ = [
    "EXECUTION_FATAL_RULES",
    "Diagnostic",
    "LintEntry",
    "LintReport",
    "Severity",
    "analyze",
    "build_context",
    "check_database_integrity",
    "count_severity",
    "has_errors",
    "lint_domain",
    "rejects_execution",
    "sort_diagnostics",
]
