"""Pass 4 — aggregate / GROUP BY correctness.

Rules
-----
``agg.aggregate-in-where``      aggregates inside WHERE (execution-fatal)
``agg.aggregate-in-group-by``   aggregates as grouping keys
``agg.nested-aggregate``        an aggregate inside another aggregate's
                                arguments (execution-fatal)
``agg.having-without-group-by`` HAVING on an ungrouped, unaggregated core
``agg.ungrouped-column``        a bare column in SELECT/HAVING/ORDER BY that
                                is not a grouping key (warning: the executor
                                picks an arbitrary row, SQLite-style)
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.sql import ast
from repro.sql.printer import to_sql
from repro.analysis.analyzer import AnalysisContext, SelectContext
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.scope import Scope, walk_local


def check(ctx: AnalysisContext) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for core in ctx.cores:
        diagnostics.extend(_check_core(core))
    return diagnostics


def _check_core(core: SelectContext) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    select = core.select
    scope = core.scope

    if select.where is not None:
        for call in _aggregate_calls(select.where):
            diagnostics.append(
                Diagnostic(
                    rule="agg.aggregate-in-where",
                    severity=Severity.ERROR,
                    message=f"aggregate '{to_sql(call)}' in WHERE clause",
                    path=f"{core.path}.where",
                )
            )

    for i, key in enumerate(select.group_by):
        for call in _aggregate_calls(key):
            diagnostics.append(
                Diagnostic(
                    rule="agg.aggregate-in-group-by",
                    severity=Severity.ERROR,
                    message=f"aggregate '{to_sql(call)}' as a GROUP BY key",
                    path=f"{core.path}.group_by[{i}]",
                )
            )

    for clause, expr in _all_clauses(select):
        for call in _aggregate_calls(expr):
            for arg in call.args:
                inner = list(_aggregate_calls(arg))
                if inner:
                    diagnostics.append(
                        Diagnostic(
                            rule="agg.nested-aggregate",
                            severity=Severity.ERROR,
                            message=(
                                f"aggregate '{to_sql(inner[0])}' nested inside "
                                f"'{call.name.upper()}'"
                            ),
                            path=f"{core.path}.{clause}",
                        )
                    )

    if select.having is not None and not select.group_by:
        diagnostics.append(
            Diagnostic(
                rule="agg.having-without-group-by",
                severity=Severity.WARNING,
                message="HAVING without GROUP BY acts on a single global group",
                path=f"{core.path}.having",
            )
        )

    diagnostics.extend(_check_grouping(core, select, scope))
    return diagnostics


def _check_grouping(
    core: SelectContext, select: ast.Select, scope: Scope
) -> list[Diagnostic]:
    has_aggregate = any(
        list(_aggregate_calls(expr)) for _, expr in _all_clauses(select)
    )
    if not select.group_by and not has_aggregate:
        return []
    if not select.group_by and not any(
        list(_aggregate_calls(item.expr)) for item in select.items
    ):
        # Aggregates only in ORDER BY over an ungrouped select — the
        # executor evaluates them over the whole result; leave it alone.
        return []

    keys = {_canonical(key, scope) for key in select.group_by}
    diagnostics = []
    clauses: list[tuple[str, ast.Expr]] = [
        (f"items[{i}]", item.expr) for i, item in enumerate(select.items)
    ]
    if select.having is not None:
        clauses.append(("having", select.having))
    for i, item in enumerate(select.order_by):
        clauses.append((f"order_by[{i}]", item.expr))
    for clause, expr in clauses:
        if _canonical(expr, scope) in keys:
            continue
        for ref in _bare_columns(expr):
            if _canonical(ref, scope) in keys:
                continue
            diagnostics.append(
                Diagnostic(
                    rule="agg.ungrouped-column",
                    severity=Severity.WARNING,
                    message=(
                        f"column {ref!s} is neither aggregated nor a "
                        f"GROUP BY key; execution picks an arbitrary row"
                    ),
                    path=f"{core.path}.{clause}",
                )
            )
    return diagnostics


def _all_clauses(select: ast.Select) -> Iterator[tuple[str, ast.Expr]]:
    for i, item in enumerate(select.items):
        yield f"items[{i}]", item.expr
    if select.where is not None:
        yield "where", select.where
    for i, key in enumerate(select.group_by):
        yield f"group_by[{i}]", key
    if select.having is not None:
        yield "having", select.having
    for i, item in enumerate(select.order_by):
        yield f"order_by[{i}]", item.expr


def _aggregate_calls(expr: ast.Expr) -> Iterator[ast.FuncCall]:
    for node in walk_local(expr):
        if isinstance(node, ast.FuncCall) and node.name.lower() in ast.AGGREGATE_FUNCTIONS:
            yield node


def _bare_columns(expr: ast.Expr) -> Iterator[ast.ColumnRef]:
    """Column references not nested inside an aggregate call."""
    if isinstance(expr, ast.ColumnRef):
        yield expr
        return
    if isinstance(expr, ast.FuncCall) and expr.name.lower() in ast.AGGREGATE_FUNCTIONS:
        return
    for child in expr.children():
        if isinstance(child, (ast.Query,)):
            continue
        if isinstance(child, ast.Expr):
            yield from _bare_columns(child)


def _canonical(expr: ast.Expr, scope: Scope) -> str:
    """Normalised text of an expression for grouping-key comparison.

    Column references are canonicalised through resolution so ``T1.x``,
    ``x`` and ``X`` compare equal when they denote the same column.
    """
    if isinstance(expr, ast.ColumnRef):
        resolution = scope.resolve(expr)
        if resolution.status in ("ok", "ambiguous") and resolution.binding is not None:
            return f"{resolution.binding.name}.{expr.column}".lower()
    return to_sql(expr).lower()
