"""The analyzer driver: parse, build scopes, run every pass.

:func:`analyze` is the single public entry point.  It accepts SQL text or an
already-parsed :class:`~repro.sql.ast.Query`, builds a scope for every SELECT
core (including all subqueries), and runs the five passes in a fixed order:
name resolution, type checking, join validity, aggregate correctness and
cost/cardinality heuristics.  Parse failures become a ``syntax.error``
diagnostic instead of an exception, so callers can treat "does not parse"
uniformly with the other findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SqlSyntaxError
from repro.schema.enhanced import EnhancedSchema
from repro.schema.model import Schema
from repro.sql import ast, parse
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.scope import Scope, TypeEnv, clause_exprs, walk_local


@dataclass
class SelectContext:
    """One SELECT core with its scope and position in the query."""

    select: ast.Select
    scope: Scope
    path: str


@dataclass
class AnalysisContext:
    """Everything the passes need: the query, schemas and all scopes."""

    query: ast.Query
    schema: Schema
    enhanced: EnhancedSchema | None
    cores: list[SelectContext] = field(default_factory=list)
    env: TypeEnv = field(default_factory=TypeEnv)

    def scope_of(self, select: ast.Select) -> Scope:
        return self.env.scopes[id(select)]


def build_context(
    query: ast.Query, schema: Schema, enhanced: EnhancedSchema | None = None
) -> AnalysisContext:
    """Build scopes for every SELECT core reachable from ``query``."""
    ctx = AnalysisContext(query=query, schema=schema, enhanced=enhanced)

    def visit_query(q: ast.Query, path: str, parent: Scope | None) -> None:
        visit_select(q.select, f"{path}.select", parent)
        if q.right is not None:
            visit_query(q.right, f"{path}.right", parent)

    def visit_select(select: ast.Select, path: str, parent: Scope | None) -> None:
        scope = Scope(select, schema, parent)
        ctx.env.scopes[id(select)] = scope
        ctx.cores.append(SelectContext(select=select, scope=scope, path=path))
        for i, source in enumerate(select.from_tables):
            if isinstance(source, ast.SubqueryRef):
                # Derived tables cannot see the enclosing FROM clause.
                visit_query(source.query, f"{path}.from[{i}]", None)
        for clause, expr in clause_exprs(select):
            for node in walk_local(expr):
                if isinstance(node, (ast.InSubquery, ast.ScalarSubquery, ast.Exists)):
                    # Predicate subqueries may correlate with this scope.
                    visit_query(node.query, f"{path}.{clause}.subquery", scope)

    visit_query(query, "query", None)
    return ctx


def analyze(
    query: str | ast.Query,
    schema: Schema,
    enhanced: EnhancedSchema | None = None,
) -> list[Diagnostic]:
    """Statically check a query against a schema; returns all findings."""
    from repro.analysis import aggregates, cost, joins, names, typecheck

    if isinstance(query, str):
        try:
            query = parse(query)
        except SqlSyntaxError as exc:
            return [
                Diagnostic(
                    rule="syntax.error",
                    severity=Severity.ERROR,
                    message=str(exc),
                    path="query",
                )
            ]
    ctx = build_context(query, schema, enhanced)
    diagnostics: list[Diagnostic] = []
    for check in (names.check, typecheck.check, joins.check, aggregates.check, cost.check):
        diagnostics.extend(check(ctx))
    return _dedupe(diagnostics)


def _dedupe(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    seen: set[tuple[str, str, str]] = set()
    result: list[Diagnostic] = []
    for diag in diagnostics:
        key = (diag.rule, diag.path, diag.message)
        if key in seen:
            continue
        seen.add(key)
        result.append(diag)
    return result


#: Rules whose queries are guaranteed to fail execution (the engine raises).
#: Only these may gate the generation pre-filter: rejecting on anything the
#: engine merely tolerates would change the generated query set.
EXECUTION_FATAL_RULES = frozenset(
    {
        "name.unknown-table",
        "name.unknown-column",
        "name.dangling-alias",
        "name.duplicate-binding",
        "type.math-on-non-numeric",
        "type.aggregate-non-numeric",
        "agg.aggregate-in-where",
        "agg.nested-aggregate",
        "syntax.error",
    }
)


def rejects_execution(
    diagnostics: list[Diagnostic], require_nonempty: bool = True
) -> bool:
    """Whether the pre-filter may skip executing this query.

    True when execution is statically guaranteed to fail, or — under
    ``require_nonempty`` — to return zero rows.  Sound by construction: the
    generation loop makes exactly the same skip decision after executing.
    """
    for diag in diagnostics:
        if diag.rule in EXECUTION_FATAL_RULES:
            return True
        if require_nonempty and diag.rule == "cost.empty-result":
            return True
    return False
