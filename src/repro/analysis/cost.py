"""Pass 5 — cost / cardinality heuristics.

Uses the column statistics recorded by
:func:`repro.schema.introspect.profile_database` to prove — without
executing — that a predicate can never hold or that a whole query returns
zero rows.  Every conclusion here must be *sound*: the databases are frozen
after profiling, so "statically empty" means execution is guaranteed to
return no rows.  The generation pre-filter relies on exactly this guarantee
to skip executions without changing the generated query set.

Rules
-----
``cost.unsatisfiable-predicate``  a leaf predicate excludes every stored
                                  value (``year > max(year)``)
``cost.contradictory-filter``     an AND conjunction constrains one column
                                  to an empty interval (``x > 5 AND x < 3``)
``cost.vacuous-aggregate``        a global aggregate over statically empty
                                  input (still returns one row — COUNT gives
                                  0 — hence *not* an empty result)
``cost.limit-zero``               ``LIMIT 0``
``cost.empty-result``             the whole query is statically empty, after
                                  combining set operations (UNION needs both
                                  arms empty, INTERSECT either, EXCEPT the
                                  left arm)
"""

from __future__ import annotations

from repro.schema.enhanced import ColumnStats
from repro.sql import ast
from repro.sql.printer import to_sql
from repro.analysis.analyzer import AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.scope import Scope, walk_local


def check(ctx: AnalysisContext) -> list[Diagnostic]:
    analyzer = _CostAnalyzer(ctx)
    if analyzer.query_empty(ctx.query, "query"):
        analyzer.diagnostics.append(
            Diagnostic(
                rule="cost.empty-result",
                severity=Severity.WARNING,
                message="query is statically guaranteed to return no rows",
                path="query",
            )
        )
    return analyzer.diagnostics


class _CostAnalyzer:
    def __init__(self, ctx: AnalysisContext) -> None:
        self.ctx = ctx
        self.diagnostics: list[Diagnostic] = []
        # Memoized per-node results: a select reachable through two routes
        # (e.g. a scalar subquery probed by two callers) is analyzed — and
        # reported on — once.
        self._query_memo: dict[int, bool] = {}
        self._select_memo: dict[int, bool] = {}
        self._input_memo: dict[int, bool] = {}

    # -- query / select emptiness -------------------------------------------

    def query_empty(self, query: ast.Query, path: str) -> bool:
        if id(query) in self._query_memo:
            return self._query_memo[id(query)]
        result = self._query_empty(query, path)
        self._query_memo[id(query)] = result
        return result

    def _query_empty(self, query: ast.Query, path: str) -> bool:
        left = self.select_empty(query.select, f"{path}.select")
        if query.set_op is None or query.right is None:
            return left
        right = self.query_empty(query.right, f"{path}.right")
        if query.set_op == "union":
            return left and right
        if query.set_op == "intersect":
            return left or right
        return left  # except: empty left arm stays empty

    def select_empty(self, select: ast.Select, path: str) -> bool:
        if id(select) in self._select_memo:
            return self._select_memo[id(select)]
        result = self._select_empty(select, path)
        self._select_memo[id(select)] = result
        return result

    def _select_empty(self, select: ast.Select, path: str) -> bool:
        if select.limit == 0:
            self.diagnostics.append(
                Diagnostic(
                    rule="cost.limit-zero",
                    severity=Severity.WARNING,
                    message="LIMIT 0 returns no rows",
                    path=path,
                )
            )
            return True
        if self._input_empty(select, path):
            if self._is_global_aggregate(select):
                # One row regardless (COUNT over nothing is 0) — flag it,
                # but it is not an empty result.
                self.diagnostics.append(
                    Diagnostic(
                        rule="cost.vacuous-aggregate",
                        severity=Severity.WARNING,
                        message=(
                            "aggregate over statically empty input "
                            "(COUNT yields 0, other aggregates NULL)"
                        ),
                        path=path,
                    )
                )
                return False
            return True
        return False

    def _input_empty(self, select: ast.Select, path: str) -> bool:
        if id(select) in self._input_memo:
            return self._input_memo[id(select)]
        result = self._input_empty_uncached(select, path)
        self._input_memo[id(select)] = result
        return result

    def _input_empty_uncached(self, select: ast.Select, path: str) -> bool:
        """Whether the rows feeding this core are provably zero."""
        scope = self.ctx.env.scopes.get(id(select))
        if scope is None:
            return False
        enhanced = self.ctx.enhanced
        if enhanced is not None:
            for binding in scope.bindings.values():
                if binding.kind == "base" and binding.table is not None:
                    rows = enhanced.table_rows(binding.table.name)
                    if rows == 0:
                        return True
        for i, source in enumerate(select.from_tables):
            if isinstance(source, ast.SubqueryRef) and self.query_empty(
                source.query, f"{path}.from[{i}]"
            ):
                return True
        if select.where is not None and self.predicate_empty(
            select.where, scope, f"{path}.where"
        ):
            return True
        return False

    @staticmethod
    def _is_global_aggregate(select: ast.Select) -> bool:
        if select.group_by:
            return False  # grouping over empty input yields zero groups
        return any(
            isinstance(node, ast.FuncCall)
            and node.name.lower() in ast.AGGREGATE_FUNCTIONS
            for item in select.items
            for node in walk_local(item.expr)
        )

    # -- predicate emptiness --------------------------------------------------

    def predicate_empty(self, expr: ast.Expr, scope: Scope, path: str) -> bool:
        """True when ``expr`` can never hold for any row (sound, not complete)."""
        if isinstance(expr, ast.BoolOp):
            if expr.op == "and":
                empty = any(
                    self.predicate_empty(op, scope, path) for op in expr.operands
                )
                if self._contradictory_conjunction(expr, scope, path):
                    empty = True
                return empty
            return all(self.predicate_empty(op, scope, path) for op in expr.operands)
        if isinstance(expr, ast.Comparison):
            return self._comparison_empty(expr, scope, path)
        if isinstance(expr, ast.Between):
            return self._between_empty(expr, scope, path)
        if isinstance(expr, ast.InList):
            return self._in_list_empty(expr, scope, path)
        if isinstance(expr, ast.IsNull):
            return self._is_null_empty(expr, scope, path)
        if isinstance(expr, ast.InSubquery) and not expr.negated:
            return self.query_empty(expr.query, f"{path}.subquery")
        if isinstance(expr, ast.Exists) and not expr.negated:
            return self.query_empty(expr.query, f"{path}.subquery")
        return False

    def _comparison_empty(
        self, node: ast.Comparison, scope: Scope, path: str
    ) -> bool:
        # A comparison against a scalar subquery that yields no row (or a
        # guaranteed NULL) can never hold.
        for side in (node.left, node.right):
            if isinstance(side, ast.ScalarSubquery) and self._scalar_yields_nothing(
                side.query, path
            ):
                self._report_leaf(node, path, "scalar subquery yields no value")
                return True
        column, value, op = self._column_vs_literal(node)
        if column is None or op is None:
            return False
        stats = self._stats_for(column, scope)
        if stats is None:
            return False
        if _comparison_excluded(op, value, stats):
            self._report_leaf(node, path, _range_note(stats))
            return True
        return False

    def _between_empty(self, node: ast.Between, scope: Scope, path: str) -> bool:
        if node.negated or not isinstance(node.expr, ast.ColumnRef):
            return False
        low = _literal_value(node.low)
        high = _literal_value(node.high)
        if low is None or high is None:
            return False
        try:
            if low > high:
                self._report_leaf(node, path, "bounds are reversed")
                return True
        except TypeError:
            return False
        stats = self._stats_for(node.expr, scope)
        if stats is None:
            return False
        try:
            if stats.n_distinct == 0 or (
                stats.min_value is not None and high < stats.min_value
            ) or (stats.max_value is not None and low > stats.max_value):
                self._report_leaf(node, path, _range_note(stats))
                return True
        except TypeError:
            return False
        return False

    def _in_list_empty(self, node: ast.InList, scope: Scope, path: str) -> bool:
        if node.negated or not isinstance(node.expr, ast.ColumnRef):
            return False
        stats = self._stats_for(node.expr, scope)
        if stats is None:
            return False
        literals = [_literal_value(v) for v in node.values]
        if any(value is None for value in literals):
            return False
        if stats.values is not None:
            if all(value not in stats.values for value in literals):
                self._report_leaf(node, path, "no listed value occurs in the column")
                return True
        return False

    def _is_null_empty(self, node: ast.IsNull, scope: Scope, path: str) -> bool:
        if not isinstance(node.expr, ast.ColumnRef):
            return False
        stats = self._stats_for(node.expr, scope)
        if stats is None:
            return False
        if not node.negated and stats.n_null == 0 and stats.n_rows > 0:
            self._report_leaf(node, path, "the column holds no NULLs")
            return True
        if node.negated and stats.n_null == stats.n_rows and stats.n_rows > 0:
            self._report_leaf(node, path, "the column is entirely NULL")
            return True
        return False

    def _scalar_yields_nothing(self, query: ast.Query, path: str) -> bool:
        """The scalar subquery produces no row, or a guaranteed NULL.

        A global aggregate always yields one row; COUNT of nothing is 0 —
        only non-COUNT aggregates collapse to NULL on empty input.
        """
        if self.query_empty(query, f"{path}.subquery"):
            return True
        if query.set_op is not None:
            return False
        select = query.select
        if not self._is_global_aggregate(select):
            return False
        aggregates = [
            node
            for item in select.items
            for node in walk_local(item.expr)
            if isinstance(node, ast.FuncCall)
            and node.name.lower() in ast.AGGREGATE_FUNCTIONS
        ]
        if any(call.name.lower() == "count" for call in aggregates):
            return False
        return self._input_empty(select, f"{path}.subquery")

    # -- conjunction contradiction ------------------------------------------

    def _contradictory_conjunction(
        self, node: ast.BoolOp, scope: Scope, path: str
    ) -> bool:
        """Interval analysis across AND conjuncts on the same column."""
        constraints: dict[str, list[tuple[str, object]]] = {}
        for conjunct in node.operands:
            if isinstance(conjunct, ast.Comparison):
                column, value, op = self._column_vs_literal(conjunct)
                if column is not None and op in ("=", "<", "<=", ">", ">="):
                    key = self._canonical_column(column, scope)
                    if key is not None:
                        constraints.setdefault(key, []).append((op, value))
            elif isinstance(conjunct, ast.Between) and not conjunct.negated:
                if isinstance(conjunct.expr, ast.ColumnRef):
                    low = _literal_value(conjunct.low)
                    high = _literal_value(conjunct.high)
                    key = self._canonical_column(conjunct.expr, scope)
                    if key is not None and low is not None and high is not None:
                        constraints.setdefault(key, []).extend(
                            [(">=", low), ("<=", high)]
                        )
        for key, bounds in constraints.items():
            if len(bounds) > 1 and _infeasible(bounds):
                self.diagnostics.append(
                    Diagnostic(
                        rule="cost.contradictory-filter",
                        severity=Severity.WARNING,
                        message=(
                            f"conjunction constrains {key.split('.')[-1]!r} "
                            f"to an empty interval"
                        ),
                        path=path,
                    )
                )
                return True
        return False

    # -- helpers --------------------------------------------------------------

    def _column_vs_literal(self, node: ast.Comparison):
        """(column_ref, literal_value, normalised_op) or (None, None, None).

        A ``value`` of None with a non-None op means a literal NULL operand
        (never compares true); boolean literals are left to execution.
        """
        sides = (
            (node.left, node.right, node.op),
            (node.right, node.left, _mirror(node.op)),
        )
        for column, other, op in sides:
            if not isinstance(column, ast.ColumnRef):
                continue
            if isinstance(other, ast.Literal) and other.value is None:
                return column, None, op
            value = _literal_value(other)
            if value is not None:
                return column, value, op
        return None, None, None

    def _stats_for(self, ref: ast.ColumnRef, scope: Scope) -> ColumnStats | None:
        if self.ctx.enhanced is None:
            return None
        resolution = scope.resolve(ref)
        if (
            not resolution.ok
            or resolution.binding is None
            or resolution.binding.kind != "base"
            or resolution.binding.table is None
        ):
            return None
        return self.ctx.enhanced.column_stats(resolution.binding.table.name, ref.column)

    def _canonical_column(self, ref: ast.ColumnRef, scope: Scope) -> str | None:
        resolution = scope.resolve(ref)
        if resolution.ok and resolution.binding is not None:
            return f"{resolution.binding.name}.{ref.column}".lower()
        return None

    def _report_leaf(self, node: ast.Expr, path: str, reason: str) -> None:
        self.diagnostics.append(
            Diagnostic(
                rule="cost.unsatisfiable-predicate",
                severity=Severity.WARNING,
                message=f"'{to_sql(node)}' can never hold: {reason}",
                path=path,
            )
        )


def _literal_value(expr: ast.Expr):
    if isinstance(expr, ast.Literal) and not isinstance(expr.value, bool):
        return expr.value
    if isinstance(expr, ast.UnaryMinus) and isinstance(expr.operand, ast.Literal):
        value = expr.operand.value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return -value
    return None


def _range_note(stats: ColumnStats) -> str:
    if stats.n_distinct == 0:
        return "the column holds no non-NULL values"
    return f"the stored values span [{stats.min_value!r}, {stats.max_value!r}]"


def _mirror(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)


def _comparison_excluded(op: str, value, stats: ColumnStats) -> bool:
    """Whether ``column <op> value`` holds for no stored value. Sound only."""
    if stats.n_distinct == 0:
        return True  # every value is NULL; all comparisons are false
    if value is None:
        return True  # literal NULL never compares true
    try:
        if op == "=":
            if stats.values is not None:
                return value not in stats.values
            if stats.min_value is not None:
                return value < stats.min_value or value > stats.max_value
            return False
        if op == "!=":
            return stats.values is not None and stats.values == {value}
        if stats.min_value is None or stats.max_value is None:
            return False
        if op == ">":
            return value >= stats.max_value
        if op == ">=":
            return value > stats.max_value
        if op == "<":
            return value <= stats.min_value
        if op == "<=":
            return value < stats.min_value
    except TypeError:
        return False
    return False


def _infeasible(bounds: list[tuple[str, object]]) -> bool:
    """Whether a set of single-column bounds admits no value at all."""
    lower = None  # (value, strict)
    upper = None
    equals = []
    try:
        for op, value in bounds:
            if op == "=":
                equals.append(value)
            elif op in (">", ">="):
                strict = op == ">"
                if lower is None or (value, strict) > (lower[0], lower[1]):
                    lower = (value, strict)
            elif op in ("<", "<="):
                strict = op == "<"
                if upper is None or (value, strict) < (upper[0], not upper[1]):
                    upper = (value, strict)
        if len(set(equals)) > 1:
            return True
        for value in equals:
            if lower is not None and (
                value < lower[0] or (lower[1] and value == lower[0])
            ):
                return True
            if upper is not None and (
                value > upper[0] or (upper[1] and value == upper[0])
            ):
                return True
        if lower is not None and upper is not None:
            if lower[0] > upper[0]:
                return True
            if lower[0] == upper[0] and (lower[1] or upper[1]):
                return True
    except TypeError:
        return False
    return False
