"""Structured diagnostics emitted by the static analyzer.

Every analysis pass reports :class:`Diagnostic` records instead of raising:
a rule identifier (``pass.rule-name``), a severity, a human-readable message
and a dotted node path into the query (``query.select.where``).  Downstream
consumers — the generation pre-filter, the lint CLI and the failure triage —
act on the records without ever executing the query.

This module also owns the one reporting/exit-code surface shared by the two
lint-style CLI gates (``sciencebenchmark lint`` over gold queries and
``sciencebenchmark check`` over the repo's own Python source): both route
their verdict through :func:`gate_exit_code`, their one-line totals through
:func:`summary_line` and their machine-readable output through
:func:`json_report`, so the two commands cannot drift apart in formatting
or exit-code semantics.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings gate the lint command (non-zero exit) and, for the
    rules known to be execution-fatal, the generation pre-filter.
    ``WARNING`` findings flag queries that execute but are almost certainly
    wrong (cartesian products, statically empty predicates).  ``INFO``
    findings are stylistic (e.g. aggregating an identifier column).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


_ORDER = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer."""

    rule: str
    severity: Severity
    message: str
    path: str = "query"

    def render(self) -> str:
        return f"{self.severity.value}[{self.rule}] at {self.path}: {self.message}"


def has_errors(diagnostics: list[Diagnostic]) -> bool:
    return any(d.severity is Severity.ERROR for d in diagnostics)


def count_severity(diagnostics: list[Diagnostic], severity: Severity) -> int:
    return sum(1 for d in diagnostics if d.severity is severity)


def sort_diagnostics(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """Stable order: errors first, then warnings, then info."""
    return sorted(diagnostics, key=lambda d: _ORDER[d.severity])


# -- shared gate reporting (lint + checks) ------------------------------------


def gate_exit_code(n_errors: int, n_warnings: int = 0, *, strict: bool = False) -> int:
    """The one exit-code policy of every lint-style gate.

    Errors always fail (exit 1); warnings fail only under ``strict``.
    ``sciencebenchmark check`` runs with ``strict=True`` — a repo invariant
    that is worth a warning is worth gating on.
    """
    if n_errors or (strict and n_warnings):
        return 1
    return 0


def summary_line(label: str, n_errors: int, n_warnings: int) -> str:
    """The shared one-line verdict (``lint: 0 error(s), 2 warning(s)``)."""
    if not n_errors and not n_warnings:
        return f"{label}: clean"
    return f"{label}: {n_errors} error(s), {n_warnings} warning(s)"


def json_report(tool: str, findings: list[dict], **extra) -> str:
    """The canonical machine-readable report envelope.

    Stable key order and a ``summary`` block computed from the findings'
    ``severity`` fields, so CI consumers can parse lint and checks output
    with one schema.
    """
    n_errors = sum(1 for f in findings if f.get("severity") == "error")
    n_warnings = sum(1 for f in findings if f.get("severity") == "warning")
    doc = {
        "tool": tool,
        "findings": findings,
        "summary": {
            "errors": n_errors,
            "warnings": n_warnings,
            "total": len(findings),
        },
    }
    doc.update(extra)
    return json.dumps(doc, indent=2, sort_keys=True)
