"""Structured diagnostics emitted by the static analyzer.

Every analysis pass reports :class:`Diagnostic` records instead of raising:
a rule identifier (``pass.rule-name``), a severity, a human-readable message
and a dotted node path into the query (``query.select.where``).  Downstream
consumers — the generation pre-filter, the lint CLI and the failure triage —
act on the records without ever executing the query.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings gate the lint command (non-zero exit) and, for the
    rules known to be execution-fatal, the generation pre-filter.
    ``WARNING`` findings flag queries that execute but are almost certainly
    wrong (cartesian products, statically empty predicates).  ``INFO``
    findings are stylistic (e.g. aggregating an identifier column).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


_ORDER = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer."""

    rule: str
    severity: Severity
    message: str
    path: str = "query"

    def render(self) -> str:
        return f"{self.severity.value}[{self.rule}] at {self.path}: {self.message}"


def has_errors(diagnostics: list[Diagnostic]) -> bool:
    return any(d.severity is Severity.ERROR for d in diagnostics)


def count_severity(diagnostics: list[Diagnostic], severity: Severity) -> int:
    return sum(1 for d in diagnostics if d.severity is severity)


def sort_diagnostics(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """Stable order: errors first, then warnings, then info."""
    return sorted(diagnostics, key=lambda d: _ORDER[d.severity])
