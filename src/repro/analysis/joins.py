"""Pass 3 — join validity.

Rules
-----
``join.non-fk-equijoin``    an ON equality joins two base tables along an
                            edge the schema does not declare as a foreign key
``join.cartesian-product``  the FROM sources do not form one connected
                            component under the available equality edges
                            (ON conditions plus WHERE conjuncts)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schema.model import Schema
from repro.sql import ast
from repro.sql.printer import to_sql
from repro.analysis.analyzer import AnalysisContext, SelectContext
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.scope import Scope, walk_local


@dataclass(frozen=True)
class _Equality:
    """One ``a.x = b.y`` edge between two distinct local bindings."""

    left_binding: str
    left_table: str | None  # base table name, None for derived bindings
    left_column: str
    right_binding: str
    right_table: str | None
    right_column: str


def check(ctx: AnalysisContext) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for core in ctx.cores:
        diagnostics.extend(_check_core(core, ctx.schema))
    return diagnostics


def _check_core(core: SelectContext, schema: Schema) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    scope = core.scope
    select = core.select

    # FK conformance of each explicit join condition.
    for i, join in enumerate(select.joins):
        if join.condition is None:
            continue
        equalities = _binding_equalities(join.condition, scope)
        base_pairs = [e for e in equalities if e.left_table and e.right_table]
        if not base_pairs:
            continue
        if not any(_is_fk_edge(schema, e) for e in base_pairs):
            diagnostics.append(
                Diagnostic(
                    rule="join.non-fk-equijoin",
                    severity=Severity.WARNING,
                    message=(
                        f"join condition '{to_sql(join.condition)}' does not "
                        f"follow a declared foreign key"
                    ),
                    path=f"{core.path}.joins[{i}]",
                )
            )

    # Connectivity: every binding must be reachable through equality edges.
    bindings = list(scope.bindings)
    if len(bindings) > 1:
        parent = {name: name for name in bindings}

        def find(name: str) -> str:
            while parent[name] != name:
                parent[name] = parent[parent[name]]
                name = parent[name]
            return name

        edges: list[_Equality] = []
        for join in select.joins:
            if join.condition is not None:
                edges.extend(_binding_equalities(join.condition, scope))
        for conjunct in _conjuncts(select.where):
            edges.extend(_binding_equalities(conjunct, scope))
        for edge in edges:
            parent[find(edge.left_binding.lower())] = find(edge.right_binding.lower())
        roots = {find(name) for name in bindings}
        if len(roots) > 1:
            detached = sorted(scope.bindings[root].name for root in roots)[1:]
            diagnostics.append(
                Diagnostic(
                    rule="join.cartesian-product",
                    severity=Severity.WARNING,
                    message=(
                        "FROM sources are not connected by any join "
                        f"condition (detached: {', '.join(detached)})"
                    ),
                    path=core.path,
                )
            )
    return diagnostics


def _conjuncts(where: ast.Expr | None) -> list[ast.Expr]:
    if where is None:
        return []
    if isinstance(where, ast.BoolOp) and where.op == "and":
        return list(where.operands)
    return [where]


def _binding_equalities(condition: ast.Expr, scope: Scope) -> list[_Equality]:
    """All ``col = col`` equalities between two distinct local bindings."""
    local = {id(b): b for b in scope.bindings.values()}
    equalities = []
    for node in walk_local(condition):
        if not (isinstance(node, ast.Comparison) and node.op == "="):
            continue
        if not (
            isinstance(node.left, ast.ColumnRef)
            and isinstance(node.right, ast.ColumnRef)
        ):
            continue
        left = scope.resolve(node.left)
        right = scope.resolve(node.right)
        if not (left.ok and right.ok):
            continue
        if left.binding is None or right.binding is None:
            continue
        if left.binding is right.binding:
            continue
        # A correlated reference to an outer binding is not a local edge.
        if id(left.binding) not in local or id(right.binding) not in local:
            continue
        equalities.append(
            _Equality(
                left_binding=left.binding.name,
                left_table=left.binding.table.name
                if left.binding.kind == "base" and left.binding.table is not None
                else None,
                left_column=node.left.column,
                right_binding=right.binding.name,
                right_table=right.binding.table.name
                if right.binding.kind == "base" and right.binding.table is not None
                else None,
                right_column=node.right.column,
            )
        )
    return equalities


def _is_fk_edge(schema: Schema, equality: _Equality) -> bool:
    """Whether the equality matches a declared FK edge, in either direction."""
    left = (equality.left_table or "").lower(), equality.left_column.lower()
    right = (equality.right_table or "").lower(), equality.right_column.lower()
    for fk in schema.foreign_keys:
        source = fk.table.lower(), fk.column.lower()
        target = fk.ref_table.lower(), fk.ref_column.lower()
        if (left, right) in ((source, target), (target, source)):
            return True
    return False
