"""Benchmark-level linting: whole splits and dataset integrity.

The ``sciencebenchmark lint`` CLI command drives this module.  It applies the
static analyzer to every gold query of a domain's seed and dev splits and
additionally checks the *data* itself — referential integrity of every
declared foreign key — so a benchmark release cannot ship dangling
references.

Rules
-----
``data.broken-fk``  a child-table value has no matching parent row
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.database import Database
from repro.analysis.analyzer import analyze
from repro.analysis.diagnostics import Diagnostic, Severity, sort_diagnostics


@dataclass(frozen=True)
class LintEntry:
    """Diagnostics for one gold query."""

    split: str
    index: int
    sql: str
    diagnostics: tuple[Diagnostic, ...]


@dataclass
class LintReport:
    """Everything ``sciencebenchmark lint`` found for one domain."""

    domain: str
    n_queries: int = 0
    entries: list[LintEntry] = field(default_factory=list)
    integrity: list[Diagnostic] = field(default_factory=list)

    def _all_diagnostics(self):
        for entry in self.entries:
            yield from entry.diagnostics
        yield from self.integrity

    @property
    def n_errors(self) -> int:
        return sum(1 for d in self._all_diagnostics() if d.severity is Severity.ERROR)

    @property
    def n_warnings(self) -> int:
        return sum(
            1 for d in self._all_diagnostics() if d.severity is Severity.WARNING
        )

    @property
    def has_errors(self) -> bool:
        return self.n_errors > 0

    def render(self) -> str:
        lines = [f"== {self.domain}: {self.n_queries} queries linted =="]
        for entry in self.entries:
            lines.append(f"  [{entry.split}#{entry.index}] {entry.sql}")
            for diag in sort_diagnostics(list(entry.diagnostics)):
                lines.append(f"    {diag.render()}")
        for diag in self.integrity:
            lines.append(f"  {diag.render()}")
        lines.append(
            f"  {self.n_errors} error(s), {self.n_warnings} warning(s)"
            if (self.entries or self.integrity)
            else "  clean"
        )
        return "\n".join(lines)


def lint_domain(domain, min_severity: Severity = Severity.WARNING) -> LintReport:
    """Lint every seed/dev gold query of a :class:`BenchmarkDomain`.

    Only queries with at least one diagnostic at ``min_severity`` or above
    appear in the report (errors always do).
    """
    report = LintReport(domain=domain.name)
    keep = _severity_filter(min_severity)
    for split in (domain.seed, domain.dev):
        for i, pair in enumerate(split):
            diagnostics = [
                d
                for d in analyze(pair.sql, domain.database.schema, domain.enhanced)
                if keep(d)
            ]
            report.n_queries += 1
            if diagnostics:
                report.entries.append(
                    LintEntry(
                        split=split.name,
                        index=i,
                        sql=pair.sql,
                        diagnostics=tuple(diagnostics),
                    )
                )
    report.integrity = check_database_integrity(domain.database)
    return report


def check_database_integrity(database: Database) -> list[Diagnostic]:
    """Verify every declared foreign key actually resolves in the data."""
    diagnostics: list[Diagnostic] = []
    for fk in database.schema.foreign_keys:
        child = database.table(fk.table)
        parent = database.table(fk.ref_table)
        parent_values = set(parent.column_values(fk.ref_column))
        dangling = [
            v
            for v in child.column_values(fk.column)
            if v is not None and v not in parent_values
        ]
        if dangling:
            sample = sorted({repr(v) for v in dangling})[:3]
            diagnostics.append(
                Diagnostic(
                    rule="data.broken-fk",
                    severity=Severity.ERROR,
                    message=(
                        f"{len(dangling)} row(s) of {fk.table}.{fk.column} "
                        f"reference no {fk.ref_table}.{fk.ref_column} "
                        f"(e.g. {', '.join(sample)})"
                    ),
                    path=f"data.{fk.table}.{fk.column}",
                )
            )
    return diagnostics


def _severity_filter(min_severity: Severity):
    order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
    threshold = order[min_severity]

    def keep(diagnostic: Diagnostic) -> bool:
        return order[diagnostic.severity] <= threshold

    return keep
