"""Pass 1 — name resolution.

Rules
-----
``name.unknown-table``      FROM/JOIN references a table the schema lacks
``name.duplicate-binding``  two FROM sources share one visible name
``name.unknown-column``     a column reference resolves to no binding
``name.dangling-alias``     a qualifier (``X.col``) matches no binding
``name.ambiguous-column``   an unqualified column exists in several bindings
                            (warning: the executor silently takes the first)
"""

from __future__ import annotations

from repro.sql import ast
from repro.analysis.analyzer import AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.scope import clause_exprs, walk_local


def check(ctx: AnalysisContext) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for core in ctx.cores:
        scope = core.scope
        for table in scope.unknown_tables:
            diagnostics.append(
                Diagnostic(
                    rule="name.unknown-table",
                    severity=Severity.ERROR,
                    message=f"unknown table {table!r}",
                    path=core.path,
                )
            )
        for name in scope.duplicates:
            diagnostics.append(
                Diagnostic(
                    rule="name.duplicate-binding",
                    severity=Severity.ERROR,
                    message=f"duplicate table binding {name!r}",
                    path=core.path,
                )
            )
        for clause, expr in clause_exprs(core.select):
            path = f"{core.path}.{clause}"
            for node in walk_local(expr):
                if isinstance(node, ast.ColumnRef):
                    diagnostics.extend(_check_ref(node, scope, path))
                elif isinstance(node, ast.Star) and node.table is not None:
                    if scope.resolve_binding(node.table) is None:
                        diagnostics.append(_dangling(node.table, path))
    return diagnostics


def _check_ref(ref: ast.ColumnRef, scope, path: str) -> list[Diagnostic]:
    resolution = scope.resolve(ref)
    if resolution.status == "unknown-binding":
        return [_dangling(ref.table or "", path)]
    if resolution.status == "unknown-column":
        return [
            Diagnostic(
                rule="name.unknown-column",
                severity=Severity.ERROR,
                message=f"unknown column {ref!s}",
                path=path,
            )
        ]
    if resolution.status == "ambiguous":
        bindings = ", ".join(resolution.matches)
        return [
            Diagnostic(
                rule="name.ambiguous-column",
                severity=Severity.WARNING,
                message=(
                    f"unqualified column {ref.column!r} exists in several "
                    f"bindings ({bindings}); execution takes the first"
                ),
                path=path,
            )
        ]
    return []


def _dangling(qualifier: str, path: str) -> Diagnostic:
    return Diagnostic(
        rule="name.dangling-alias",
        severity=Severity.ERROR,
        message=f"qualifier {qualifier!r} is not a table or alias in scope",
        path=path,
    )
