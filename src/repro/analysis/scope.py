"""Name binding and type inference for one SELECT core.

A :class:`Scope` mirrors the executor's resolution rules exactly — the
analyzer must predict what execution *would* do, so the two must never
disagree:

* FROM/JOIN sources introduce bindings (alias or table name), duplicates are
  an error;
* qualified references look the binding up in the current scope, then in the
  enclosing scopes (correlated subqueries);
* unqualified references search the current scope's bindings in FROM order —
  when several bindings carry the column, *the first one wins* (the
  executor's SQLite-compatible behaviour), which the analyzer surfaces as an
  ambiguity warning rather than an error;
* select-item aliases are **not** visible in ORDER BY / HAVING (the executor
  raises ``unknown column`` for them, and so does the analyzer).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.schema.model import ColumnType, Schema, TableDef
from repro.sql import ast


@dataclass
class Binding:
    """One visible FROM-clause source: a base table or a derived subquery."""

    name: str
    kind: str  # "base" | "derived" | "invalid"
    table: TableDef | None = None
    #: Output columns of a derived table: (name-or-None, type-or-None).
    output: tuple[tuple[str | None, ColumnType | None], ...] = ()
    #: True when the derived table projects ``*`` — any column may resolve.
    opaque: bool = False

    def column_type(self, column: str) -> tuple[bool, ColumnType | None]:
        """(found, type) for ``column`` inside this binding."""
        if self.kind == "invalid" or self.opaque:
            return True, None  # do not cascade errors from an unknown table
        if self.kind == "base":
            assert self.table is not None
            if self.table.has_column(column):
                return True, self.table.column(column).type
            return False, None
        lowered = column.lower()
        for name, column_type in self.output:
            if name is not None and name.lower() == lowered:
                return True, column_type
        return False, None


@dataclass
class Resolution:
    """Outcome of resolving one column reference."""

    status: str  # "ok" | "unknown-binding" | "unknown-column" | "ambiguous"
    type: ColumnType | None = None
    binding: Binding | None = None
    matches: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class Scope:
    """The bindings visible inside one SELECT core."""

    def __init__(
        self,
        select: ast.Select,
        schema: Schema,
        parent: "Scope | None" = None,
    ) -> None:
        self.select = select
        self.schema = schema
        self.parent = parent
        self.bindings: dict[str, Binding] = {}
        self.duplicates: list[str] = []
        self.unknown_tables: list[str] = []
        for source in select.from_tables:
            if isinstance(source, ast.TableRef):
                self._add_table(source)
            else:
                self._add_derived(source)
        for join in select.joins:
            self._add_table(join.table)

    def _add_table(self, ref: ast.TableRef) -> None:
        if self.schema.has_table(ref.name):
            binding = Binding(
                name=ref.binding, kind="base", table=self.schema.table(ref.name)
            )
        else:
            self.unknown_tables.append(ref.name)
            binding = Binding(name=ref.binding, kind="invalid")
        self._register(binding)

    def _add_derived(self, ref: ast.SubqueryRef) -> None:
        output, opaque = derived_output(ref.query, self.schema)
        self._register(
            Binding(name=ref.binding, kind="derived", output=output, opaque=opaque)
        )

    def _register(self, binding: Binding) -> None:
        key = binding.name.lower()
        if key in self.bindings:
            self.duplicates.append(binding.name)
            return
        self.bindings[key] = binding

    # -- resolution ----------------------------------------------------------

    def resolve(self, ref: ast.ColumnRef) -> Resolution:
        if ref.table is not None:
            return self._resolve_qualified(ref.table, ref.column)
        return self._resolve_unqualified(ref.column)

    def resolve_binding(self, name: str) -> Binding | None:
        scope: Scope | None = self
        while scope is not None:
            binding = scope.bindings.get(name.lower())
            if binding is not None:
                return binding
            scope = scope.parent
        return None

    def _resolve_qualified(self, table: str, column: str) -> Resolution:
        binding = self.resolve_binding(table)
        if binding is None:
            return Resolution(status="unknown-binding")
        found, column_type = binding.column_type(column)
        if not found:
            return Resolution(status="unknown-column", binding=binding)
        return Resolution(status="ok", type=column_type, binding=binding)

    def _resolve_unqualified(self, column: str) -> Resolution:
        scope: Scope | None = self
        while scope is not None:
            matches: list[tuple[Binding, ColumnType | None]] = []
            for binding in scope.bindings.values():
                found, column_type = binding.column_type(column)
                if found:
                    matches.append((binding, column_type))
            if matches:
                first, first_type = matches[0]
                if len(matches) > 1:
                    return Resolution(
                        status="ambiguous",
                        type=first_type,
                        binding=first,
                        matches=tuple(b.name for b, _ in matches),
                    )
                return Resolution(status="ok", type=first_type, binding=first)
            scope = scope.parent
        return Resolution(status="unknown-column")


def derived_output(
    query: ast.Query, schema: Schema
) -> tuple[tuple[tuple[str | None, ColumnType | None], ...], bool]:
    """Output column names/types of a subquery used as a derived table."""
    select = query.select
    inner = Scope(select, schema)
    output: list[tuple[str | None, ColumnType | None]] = []
    opaque = False
    for item in select.items:
        if isinstance(item.expr, ast.Star):
            opaque = True
            continue
        name = item.alias
        if name is None and isinstance(item.expr, ast.ColumnRef):
            name = item.expr.column
        output.append((name, infer_type(item.expr, inner)))
    return tuple(output), opaque


# ---------------------------------------------------------------------------
# Local traversal (stops at subquery boundaries)
# ---------------------------------------------------------------------------


def walk_local(node: ast.Node) -> Iterator[ast.Node]:
    """Pre-order walk that does not descend into nested queries."""
    yield node
    for child in node.children():
        if isinstance(child, ast.Query):
            continue
        yield from walk_local(child)


def clause_exprs(select: ast.Select) -> Iterator[tuple[str, ast.Expr]]:
    """Every top-level expression of a SELECT core, labelled by clause."""
    for i, item in enumerate(select.items):
        yield f"items[{i}]", item.expr
    for i, join in enumerate(select.joins):
        if join.condition is not None:
            yield f"joins[{i}].on", join.condition
    if select.where is not None:
        yield "where", select.where
    for i, expr in enumerate(select.group_by):
        yield f"group_by[{i}]", expr
    if select.having is not None:
        yield "having", select.having
    for i, item in enumerate(select.order_by):
        yield f"order_by[{i}]", item.expr


# ---------------------------------------------------------------------------
# Type inference
# ---------------------------------------------------------------------------

_NUMERIC = (ColumnType.INTEGER, ColumnType.REAL, ColumnType.BOOLEAN)
_TEXTUAL = (ColumnType.TEXT, ColumnType.DATE)


def is_numeric_type(column_type: ColumnType) -> bool:
    """Numeric for the engine's purposes (Python treats bool as int)."""
    return column_type in _NUMERIC


def is_textual_type(column_type: ColumnType) -> bool:
    return column_type in _TEXTUAL


def types_comparable(left: ColumnType, right: ColumnType) -> bool:
    """Whether comparing the two types can ever be meaningful."""
    if left in _NUMERIC and right in _NUMERIC:
        return True
    if left in _TEXTUAL and right in _TEXTUAL:
        return True
    return False


@dataclass
class TypeEnv:
    """Shared type-inference context: every SELECT core's scope by identity."""

    scopes: dict[int, Scope] = field(default_factory=dict)

    def infer(self, expr: ast.Expr, scope: Scope) -> ColumnType | None:
        return infer_type(expr, scope, self)


def infer_type(
    expr: ast.Expr, scope: Scope, env: TypeEnv | None = None
) -> ColumnType | None:
    """Static type of ``expr`` in ``scope``; None when unknown."""
    if isinstance(expr, ast.Literal):
        value = expr.value
        if isinstance(value, bool):
            return ColumnType.BOOLEAN
        if isinstance(value, int):
            return ColumnType.INTEGER
        if isinstance(value, float):
            return ColumnType.REAL
        if isinstance(value, str):
            return ColumnType.TEXT
        return None  # NULL
    if isinstance(expr, ast.ColumnRef):
        resolution = scope.resolve(expr)
        if resolution.status in ("ok", "ambiguous"):
            return resolution.type
        return None
    if isinstance(expr, ast.UnaryMinus):
        return infer_type(expr.operand, scope, env)
    if isinstance(expr, ast.BinaryOp):
        if expr.op == "/":
            return ColumnType.REAL
        left = infer_type(expr.left, scope, env)
        right = infer_type(expr.right, scope, env)
        if ColumnType.REAL in (left, right):
            return ColumnType.REAL
        if left is ColumnType.INTEGER and right is ColumnType.INTEGER:
            return ColumnType.INTEGER
        return None
    if isinstance(expr, ast.FuncCall):
        name = expr.name.lower()
        if name == "count":
            return ColumnType.INTEGER
        if name == "avg":
            return ColumnType.REAL
        if name in ("sum", "min", "max", "abs") and expr.args:
            arg = expr.args[0]
            if isinstance(arg, ast.Star):
                return None
            return infer_type(arg, scope, env)
        return None
    if isinstance(expr, ast.ScalarSubquery):
        inner = expr.query.select
        inner_scope = env.scopes.get(id(inner)) if env is not None else None
        if inner_scope is None or not inner.items:
            return None
        first = inner.items[0].expr
        if isinstance(first, ast.Star):
            return None
        return infer_type(first, inner_scope, env)
    if isinstance(
        expr,
        (ast.Comparison, ast.Between, ast.InList, ast.InSubquery, ast.Exists,
         ast.IsNull, ast.Not, ast.BoolOp),
    ):
        return ColumnType.BOOLEAN
    return None
