"""Pass 2 — type checking.

Rules
-----
``type.incompatible-comparison``  comparing numeric against textual operands
``type.math-on-non-numeric``      arithmetic over TEXT/DATE operands (fatal
                                  at execution time)
``type.like-non-text``            LIKE over a non-text column or pattern
``type.aggregate-non-numeric``    SUM/AVG over TEXT/DATE (fatal at execution)
``type.between-reversed``         literal BETWEEN bounds with low > high
``type.non-aggregatable``         SUM/AVG over an identifier column the
                                  enhanced schema marks non-aggregatable
                                  (executable but meaningless — the paper's
                                  ``AVG(specobjid)`` anti-example)
"""

from __future__ import annotations

from repro.sql import ast
from repro.sql.printer import to_sql
from repro.analysis.analyzer import AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.scope import (
    Scope,
    clause_exprs,
    infer_type,
    is_textual_type,
    types_comparable,
    walk_local,
)

_ORDERED_OPS = {"=", "!=", "<", ">", "<=", ">="}


def check(ctx: AnalysisContext) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for core in ctx.cores:
        for clause, expr in clause_exprs(core.select):
            path = f"{core.path}.{clause}"
            for node in walk_local(expr):
                diagnostics.extend(_check_node(node, core.scope, ctx, path))
    return diagnostics


def _check_node(
    node: ast.Node, scope: Scope, ctx: AnalysisContext, path: str
) -> list[Diagnostic]:
    if isinstance(node, ast.Comparison):
        if node.op in _ORDERED_OPS:
            return _check_comparison(node, scope, ctx, path)
        return _check_like(node, scope, ctx, path)
    if isinstance(node, ast.BinaryOp):
        return _check_math(node, (node.left, node.right), scope, ctx, path)
    if isinstance(node, ast.UnaryMinus):
        return _check_math(node, (node.operand,), scope, ctx, path)
    if isinstance(node, ast.FuncCall):
        return _check_aggregate_arg(node, scope, ctx, path)
    if isinstance(node, ast.Between):
        return _check_between(node, scope, ctx, path)
    return []


def _check_comparison(
    node: ast.Comparison, scope: Scope, ctx: AnalysisContext, path: str
) -> list[Diagnostic]:
    left = infer_type(node.left, scope, ctx.env)
    right = infer_type(node.right, scope, ctx.env)
    if left is None or right is None or types_comparable(left, right):
        return []
    return [
        Diagnostic(
            rule="type.incompatible-comparison",
            severity=Severity.ERROR,
            message=(
                f"cannot compare {left.value} with {right.value} "
                f"in '{to_sql(node)}'"
            ),
            path=path,
        )
    ]


def _check_like(
    node: ast.Comparison, scope: Scope, ctx: AnalysisContext, path: str
) -> list[Diagnostic]:
    diagnostics = []
    left = infer_type(node.left, scope, ctx.env)
    if left is not None and not is_textual_type(left):
        diagnostics.append(
            Diagnostic(
                rule="type.like-non-text",
                severity=Severity.ERROR,
                message=f"LIKE over {left.value} operand in '{to_sql(node)}'",
                path=path,
            )
        )
    right = infer_type(node.right, scope, ctx.env)
    if right is not None and not is_textual_type(right):
        diagnostics.append(
            Diagnostic(
                rule="type.like-non-text",
                severity=Severity.ERROR,
                message=f"LIKE pattern is {right.value} in '{to_sql(node)}'",
                path=path,
            )
        )
    return diagnostics


def _check_math(
    node: ast.Expr, operands: tuple[ast.Expr, ...], scope: Scope,
    ctx: AnalysisContext, path: str,
) -> list[Diagnostic]:
    diagnostics = []
    for operand in operands:
        operand_type = infer_type(operand, scope, ctx.env)
        if operand_type is not None and is_textual_type(operand_type):
            diagnostics.append(
                Diagnostic(
                    rule="type.math-on-non-numeric",
                    severity=Severity.ERROR,
                    message=(
                        f"arithmetic over {operand_type.value} operand "
                        f"'{to_sql(operand)}'"
                    ),
                    path=path,
                )
            )
    return diagnostics


def _check_aggregate_arg(
    node: ast.FuncCall, scope: Scope, ctx: AnalysisContext, path: str
) -> list[Diagnostic]:
    name = node.name.lower()
    if name not in ("sum", "avg") or not node.args:
        return []
    arg = node.args[0]
    if isinstance(arg, ast.Star):
        return []
    arg_type = infer_type(arg, scope, ctx.env)
    if arg_type is not None and is_textual_type(arg_type):
        return [
            Diagnostic(
                rule="type.aggregate-non-numeric",
                severity=Severity.ERROR,
                message=f"{name.upper()} over {arg_type.value} column '{to_sql(arg)}'",
                path=path,
            )
        ]
    diagnostics = []
    if ctx.enhanced is not None and isinstance(arg, ast.ColumnRef):
        resolution = scope.resolve(arg)
        if (
            resolution.ok
            and resolution.binding is not None
            and resolution.binding.kind == "base"
            and resolution.binding.table is not None
        ):
            table = resolution.binding.table.name
            annotation = ctx.enhanced.annotation(table, arg.column)
            if not annotation.aggregatable:
                diagnostics.append(
                    Diagnostic(
                        rule="type.non-aggregatable",
                        severity=Severity.INFO,
                        message=(
                            f"{name.upper()} over identifier-like column "
                            f"{table}.{arg.column} is meaningless"
                        ),
                        path=path,
                    )
                )
    return diagnostics


def _check_between(
    node: ast.Between, scope: Scope, ctx: AnalysisContext, path: str
) -> list[Diagnostic]:
    diagnostics = []
    expr_type = infer_type(node.expr, scope, ctx.env)
    for bound in (node.low, node.high):
        bound_type = infer_type(bound, scope, ctx.env)
        if (
            expr_type is not None
            and bound_type is not None
            and not types_comparable(expr_type, bound_type)
        ):
            diagnostics.append(
                Diagnostic(
                    rule="type.incompatible-comparison",
                    severity=Severity.ERROR,
                    message=(
                        f"BETWEEN bound '{to_sql(bound)}' ({bound_type.value}) "
                        f"does not match {expr_type.value} operand"
                    ),
                    path=path,
                )
            )
    low = _literal_value(node.low)
    high = _literal_value(node.high)
    if low is not None and high is not None:
        try:
            reversed_bounds = low > high
        except TypeError:
            reversed_bounds = False
        if reversed_bounds:
            diagnostics.append(
                Diagnostic(
                    rule="type.between-reversed",
                    severity=Severity.WARNING,
                    message=f"BETWEEN bounds reversed: {low!r} > {high!r}",
                    path=path,
                )
            )
    return diagnostics


def _literal_value(expr: ast.Expr):
    if isinstance(expr, ast.Literal) and not isinstance(expr.value, bool):
        return expr.value
    if isinstance(expr, ast.UnaryMinus) and isinstance(expr.operand, ast.Literal):
        value = expr.operand.value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return -value
    return None
