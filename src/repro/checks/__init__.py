"""``repro.checks`` — the repo's own determinism/concurrency static analyzer.

Two halves:

* **Static rules** (:mod:`~repro.checks.determinism`,
  :mod:`~repro.checks.concurrency`, :mod:`~repro.checks.hygiene`) run over
  the repo's Python source through the AST engine
  (:mod:`~repro.checks.engine`) and gate ``sciencebenchmark check``.
* **Runtime lock-order recording** (:mod:`~repro.checks.lockorder`)
  watches actual lock acquisitions under ``REPRO_CHECKS=1`` and flags
  cyclic ordering (potential deadlocks) the static rules cannot see.

Only the lock factory is imported eagerly — it sits on the import path of
``repro.obs`` and ``repro.resilience`` and must stay featherweight; the
analysis machinery loads on first use via PEP 562.
"""

from __future__ import annotations

from repro.checks.lockorder import (
    LockOrderMonitor,
    LockOrderViolation,
    MonitoredLock,
    current_monitor,
    install,
    new_lock,
    uninstall,
)

__all__ = [
    "ALL_RULES",
    "CheckReport",
    "Finding",
    "LockOrderMonitor",
    "LockOrderViolation",
    "MonitoredLock",
    "current_monitor",
    "install",
    "new_lock",
    "render_json",
    "render_terminal",
    "run_checks",
    "uninstall",
]

_LAZY = {
    "ALL_RULES": ("repro.checks.runner", "ALL_RULES"),
    "CheckReport": ("repro.checks.runner", "CheckReport"),
    "run_checks": ("repro.checks.runner", "run_checks"),
    "Finding": ("repro.checks.engine", "Finding"),
    "render_terminal": ("repro.checks.report", "render_terminal"),
    "render_json": ("repro.checks.report", "render_json"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
