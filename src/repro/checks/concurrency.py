"""Concurrency rules for the runtime/serving/obs/resilience hot paths.

These modules are the repo's only genuinely concurrent code (asyncio event
loop + decode threads + the process pool), so they carry the discipline the
rest of the repo does not need:

``con.unlocked-mutation``  a class that owns a lock mutates its own state
                           only inside ``with self._lock:`` (or
                           ``self._cond``) — a hand-rolled race detector for
                           the ~6 locked classes
``con.blocking-async``     no blocking call (``time.sleep``, ``clock.sleep``,
                           sync ``open``, ``Future.result()``,
                           ``Executor.shutdown(wait=True)``) inside an
                           ``async def`` — it stalls the whole event loop
``con.contextvar-leak``    ``ContextVar.set()`` whose reset token is
                           discarded — the context can never be restored
"""

from __future__ import annotations

import ast

from repro.analysis.diagnostics import Severity
from repro.checks.engine import FileContext, Rule

#: The packages where shared-state discipline is enforced.
_CONCURRENT_PACKAGES = (
    "repro/runtime/", "repro/serving/", "repro/obs/", "repro/resilience/",
    "repro/checks/", "repro/fleet/", "repro/perturb/", "repro/engine/vector/",
)

#: Methods whose mutation of shared state is tolerated lock-free because
#: the instance is not yet (or no longer) visible to other threads.
#: Repo convention: a method named ``*_locked`` asserts by its suffix that
#: every caller already holds the lock, so it is exempt too.
_EXEMPT_METHODS = {"__init__", "__new__", "__post_init__"}

#: Container methods that mutate their receiver.
_MUTATING_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "appendleft",
}


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class UnlockedMutationRule(Rule):
    id = "con.unlocked-mutation"
    severity = Severity.ERROR
    description = (
        "in a class that owns a lock, every mutation of self.* outside "
        "__init__ must happen inside `with self._lock:`"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return any(pkg in ctx.path for pkg in _CONCURRENT_PACKAGES)

    def _in_scope(self, ctx: FileContext) -> bool:
        if not ctx.class_lock_attrs or ctx.lock_depth > 0:
            return False
        function = ctx.enclosing_function()
        return (
            function is not None
            and function.name not in _EXEMPT_METHODS
            and not function.name.endswith("_locked")
        )

    def visit(self, node: ast.AST, ctx: FileContext):
        if not self._in_scope(ctx):
            return
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                attr = _self_attr(target)
                if attr is not None and attr not in ctx.class_lock_attrs:
                    yield self.finding(
                        ctx, node,
                        f"self.{attr} mutated outside the lock in a "
                        "lock-owning class; wrap in `with self._lock:`",
                    )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATING_METHODS:
                attr = _self_attr(node.func.value)
                if attr is not None and attr not in ctx.class_lock_attrs:
                    yield self.finding(
                        ctx, node,
                        f"self.{attr}.{node.func.attr}() mutates shared "
                        "state outside the lock; wrap in `with self._lock:`",
                    )


def _is_awaited(ctx: FileContext) -> bool:
    return isinstance(ctx.parent(), ast.Await)


class BlockingAsyncRule(Rule):
    id = "con.blocking-async"
    severity = Severity.ERROR
    description = (
        "no blocking calls inside async def: time.sleep/clock.sleep, sync "
        "file I/O, Future.result(), Executor.shutdown(wait=True)"
    )

    def visit(self, node: ast.AST, ctx: FileContext):
        if not isinstance(node, ast.Call) or not ctx.in_async_function():
            return
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                yield self.finding(
                    ctx, node,
                    "synchronous open() inside async def blocks the event "
                    "loop; use run_in_executor",
                )
            return
        if not isinstance(func, ast.Attribute):
            return
        root = func.value.id if isinstance(func.value, ast.Name) else None
        if func.attr == "sleep" and root != "asyncio" and not _is_awaited(ctx):
            yield self.finding(
                ctx, node,
                "blocking sleep inside async def stalls the event loop; "
                "await asyncio.sleep (or run off-loop)",
            )
        elif func.attr == "result" and not node.args and not node.keywords:
            yield self.finding(
                ctx, node,
                ".result() inside async def blocks the event loop until the "
                "future resolves; await it (or wrap_future)",
            )
        elif func.attr == "shutdown" and any(
            kw.arg == "wait"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        ):
            yield self.finding(
                ctx, node,
                "Executor.shutdown(wait=True) inside async def joins worker "
                "threads on the event loop; run it in an executor",
            )


class ContextvarLeakRule(Rule):
    id = "con.contextvar-leak"
    severity = Severity.ERROR
    description = (
        "ContextVar.set() returns the reset token; discarding it makes the "
        "previous context unrestorable"
    )

    def visit(self, node: ast.AST, ctx: FileContext):
        if not isinstance(node, ast.Expr) or not isinstance(node.value, ast.Call):
            return
        func = node.value.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "set"
            and isinstance(func.value, ast.Name)
            and func.value.id in ctx.contextvars
        ):
            yield self.finding(
                ctx, node,
                f"{func.value.id}.set() discards the reset token; keep it "
                f"and {func.value.id}.reset(token) in a finally block",
            )


RULES: tuple[Rule, ...] = (
    UnlockedMutationRule(),
    BlockingAsyncRule(),
    ContextvarLeakRule(),
)
