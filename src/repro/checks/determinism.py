"""Determinism rules: the byte-identical-artifacts contract, machine-checked.

The reproduction's headline guarantee is that a fixed seed produces
byte-identical artifacts across worker counts, fault schedules and tracing.
That only holds while no code path reads ambient state: wall clocks, the
process-shared ``random`` module, environment variables, or the
hash-seed-dependent iteration order of a ``set``.  These rules turn each of
those into a gate.

``det.wall-clock``       direct ``time.time()``/``time.monotonic()``/
                         ``time.perf_counter()``/``datetime.now()`` reads
                         anywhere but the injectable-clock module
``det.unseeded-random``  module-level ``random.*`` calls or a seedless
                         ``random.Random()`` — RNG streams must come from
                         ``derive_seed`` plumbing
``det.env-read``         ``os.environ``/``os.getenv`` outside the CLI
``det.set-iteration``    iterating a ``set`` into an order-sensitive sink
                         (``for``, ``list()``, ``tuple()``, ``join``) —
                         ``sorted(...)`` it first
"""

from __future__ import annotations

import ast

from repro.analysis.diagnostics import Severity
from repro.checks.engine import FileContext, Rule

#: ``time.<attr>`` reads that observe a clock (sleeping is a concurrency
#: concern, not a determinism one).
_CLOCK_READS = {
    "time", "monotonic", "perf_counter", "process_time", "thread_time",
    "time_ns", "monotonic_ns", "perf_counter_ns", "process_time_ns",
}

#: ``datetime``/``date`` constructors that read the wall clock.
_DATETIME_READS = {"now", "utcnow", "today"}

#: Functions of the shared module-level RNG (``random.choice`` etc.).
_MODULE_RNG_FUNCS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "getrandbits", "seed",
}


def _attr_root(node: ast.Attribute) -> str | None:
    return node.value.id if isinstance(node.value, ast.Name) else None


class WallClockRule(Rule):
    id = "det.wall-clock"
    severity = Severity.ERROR
    description = (
        "wall-clock reads are allowed only in the injectable-clock module "
        "(repro/resilience/clock.py); everywhere else, take a clock object"
    )

    #: The one module allowed to touch ``time`` directly.
    allowed = ("repro/resilience/clock.py",)

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.path.endswith(self.allowed)

    def visit(self, node: ast.AST, ctx: FileContext):
        if not isinstance(node, ast.Attribute):
            return
        root = _attr_root(node)
        if root == "time" and node.attr in _CLOCK_READS:
            yield self.finding(
                ctx, node,
                f"direct wall-clock read time.{node.attr}; route through the "
                "injectable clock (repro.resilience.clock)",
            )
        elif root in ("datetime", "date") and node.attr in _DATETIME_READS:
            yield self.finding(
                ctx, node,
                f"wall-clock read {root}.{node.attr}(); timestamps must come "
                "from an injected clock or the caller",
            )


class UnseededRandomRule(Rule):
    id = "det.unseeded-random"
    severity = Severity.ERROR
    description = (
        "no shared module-level RNG and no seedless random.Random(); every "
        "stream must be derived from the run seed (repro.runtime.derive_seed)"
    )

    def visit(self, node: ast.AST, ctx: FileContext):
        if not isinstance(node, ast.Call):
            return
        func = node.func
        if isinstance(func, ast.Attribute) and _attr_root(func) == "random":
            if func.attr in _MODULE_RNG_FUNCS:
                yield self.finding(
                    ctx, node,
                    f"random.{func.attr}() consumes the process-shared RNG; "
                    "pass a seeded random.Random derived via derive_seed",
                )
            elif func.attr in ("Random", "SystemRandom") and not node.args:
                yield self.finding(
                    ctx, node,
                    f"random.{func.attr}() without a seed is "
                    "nondeterministic; seed it from derive_seed",
                )
        elif (
            isinstance(func, ast.Name)
            and func.id in ("Random", "SystemRandom")
            and not node.args
        ):
            yield self.finding(
                ctx, node,
                f"{func.id}() without a seed is nondeterministic; seed it "
                "from derive_seed",
            )


class EnvReadRule(Rule):
    id = "det.env-read"
    severity = Severity.ERROR
    description = (
        "os.environ is ambient configuration; only the CLI entry point may "
        "read it and must pass values down explicitly"
    )

    allowed = ("repro/cli.py",)

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.path.endswith(self.allowed)

    def visit(self, node: ast.AST, ctx: FileContext):
        if not isinstance(node, ast.Attribute):
            return
        if _attr_root(node) == "os" and node.attr in ("environ", "getenv"):
            yield self.finding(
                ctx, node,
                f"os.{node.attr} read outside the CLI; plumb the value "
                "through parameters so runs are environment-independent",
            )


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class SetIterationRule(Rule):
    id = "det.set-iteration"
    severity = Severity.ERROR
    description = (
        "set iteration order is hash-seed dependent; wrap in sorted() before "
        "feeding a loop, list, tuple or join"
    )

    _SINK_CALLS = {"list", "tuple", "enumerate", "iter", "next"}

    def visit(self, node: ast.AST, ctx: FileContext):
        if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(node.iter):
            yield self.finding(
                ctx, node.iter,
                "iterating a set directly; order is hash-seed dependent — "
                "use sorted(...)",
            )
        elif isinstance(node, ast.comprehension) and _is_set_expr(node.iter):
            yield self.finding(
                ctx, node.iter,
                "comprehension over a set; order is hash-seed dependent — "
                "use sorted(...)",
            )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in self._SINK_CALLS
                and node.args
                and _is_set_expr(node.args[0])
            ):
                yield self.finding(
                    ctx, node,
                    f"{func.id}() over a set preserves hash-seed-dependent "
                    "order; use sorted(...)",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "join"
                and node.args
                and _is_set_expr(node.args[0])
            ):
                yield self.finding(
                    ctx, node,
                    "join() over a set concatenates in hash-seed-dependent "
                    "order; use sorted(...)",
                )


RULES: tuple[Rule, ...] = (
    WallClockRule(),
    UnseededRandomRule(),
    EnvReadRule(),
    SetIterationRule(),
)
