"""The rule engine of :mod:`repro.checks`: AST walk, suppressions, findings.

The engine is deliberately repo-specific — it checks *this* codebase's
determinism, concurrency and hygiene invariants, not Python in general.
One :class:`FileChecker` parses a source file once, walks the tree once
maintaining the context every rule needs (ancestor stack, enclosing
function/class, whether the walk is inside a ``with <lock>:`` block, which
attributes of the enclosing class are locks), and dispatches each node to
every selected :class:`Rule`.

Suppressions
------------
A finding is silenced by an inline comment on the flagged line or the line
directly above it::

    value = os.environ.get("REPRO_CHECKS")  # checks: ignore[det.env-read] -- test-mode switch, read once at install

The justification after ``--`` is *required*: a suppression without one is
itself reported (``checks.unjustified-suppression``), and a suppression
naming a rule that never fired on that line is reported as stale
(``checks.useless-suppression``) so dead suppressions cannot accumulate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Severity

#: Inline suppression marker: rule ids in brackets, justification after
#: a double dash (see the module docstring for the exact syntax).
_SUPPRESS_RE = re.compile(
    r"#\s*checks:\s*ignore\[([^\]]*)\]\s*(?:--\s*(.*\S))?\s*$"
)

#: Lock-ish attribute names: ``with self._lock:`` / ``with self._cond:``
#: blocks guard the mutations inside them.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "new_lock"}


@dataclass(frozen=True)
class Finding:
    """One violation of a repo invariant, anchored to file:line:col."""

    rule: str
    severity: Severity
    message: str
    file: str
    line: int
    col: int = 0

    def render(self) -> str:
        return (
            f"{self.file}:{self.line}:{self.col + 1}: "
            f"{self.severity.value}[{self.rule}] {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "col": self.col,
        }


@dataclass(frozen=True)
class Suppression:
    """One parsed ``checks: ignore`` comment."""

    line: int
    rules: tuple[str, ...]
    justification: str


class Rule:
    """Base class: subclasses set the id/severity and implement ``visit``.

    ``visit`` is called for every AST node of a file the rule applies to and
    yields :class:`Finding` records.  ``applies_to`` lets a rule skip whole
    files (the wall-clock rule skips the injectable-clock module, for
    example) without paying for the walk.
    """

    id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def applies_to(self, ctx: "FileContext") -> bool:
        return True

    def begin_file(self, ctx: "FileContext") -> None:
        """Per-file state reset hook (the tree is available on ``ctx``)."""

    def visit(self, node: ast.AST, ctx: "FileContext"):
        return ()

    def finding(
        self, ctx: "FileContext", node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            message=message,
            file=ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
        )


@dataclass
class FileContext:
    """Everything a rule may ask about the current position in the walk."""

    path: str  # repo-relative posix path, e.g. "repro/serving/server.py"
    tree: ast.Module
    #: Ancestor chain, outermost first; the node under visit is *not* on it.
    stack: list[ast.AST] = field(default_factory=list)
    #: Nesting depth of ``with <lock-attribute>:`` blocks.
    lock_depth: int = 0
    #: Lock-holding attribute names of the innermost enclosing class.
    class_lock_attrs: frozenset[str] = frozenset()
    #: Module-level names bound to ``ContextVar(...)``.
    contextvars: frozenset[str] = frozenset()

    def parent(self) -> ast.AST | None:
        return self.stack[-1] if self.stack else None

    def enclosing_function(self) -> ast.AST | None:
        """The innermost enclosing def/async-def, if any."""
        for node in reversed(self.stack):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node
        return None

    def in_async_function(self) -> bool:
        return isinstance(self.enclosing_function(), ast.AsyncFunctionDef)

    def in_method_of_locked_class(self) -> bool:
        return bool(self.class_lock_attrs)


def parse_suppressions(source: str) -> list[Suppression]:
    """Extract every ``checks: ignore`` comment with its line number.

    Tokenized, not line-matched: the marker inside a string literal (a
    docstring showing the syntax, a message mentioning it) is not a
    suppression.
    """
    suppressions = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except tokenize.TokenError:
        comments = []
    for lineno, comment in comments:
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            continue
        rules = tuple(
            rule.strip() for rule in match.group(1).split(",") if rule.strip()
        )
        suppressions.append(
            Suppression(
                line=lineno,
                rules=rules,
                justification=(match.group(2) or "").strip(),
            )
        )
    return suppressions


def _lock_attrs_of(class_node: ast.ClassDef) -> frozenset[str]:
    """Attribute names a class binds to locks in ``__init__``.

    Detects ``self.X = threading.Lock()`` / ``RLock`` / ``Condition`` and
    the repo's monitored factory ``new_lock(...)``.
    """
    attrs: set[str] = set()
    for body_node in class_node.body:
        if not isinstance(body_node, ast.FunctionDef) or body_node.name != "__init__":
            continue
        for node in ast.walk(body_node):
            if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                continue
            func = node.value.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else ""
            )
            if name not in _LOCK_FACTORIES:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add(target.attr)
    return frozenset(attrs)


def _module_contextvars(tree: ast.Module) -> frozenset[str]:
    """Module-level names assigned from a ``ContextVar(...)`` call."""
    names: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            value = node.value
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value = node.value
            targets = [node.target]
        else:
            continue
        if not isinstance(value, ast.Call):
            continue
        func = value.func
        callee = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if callee != "ContextVar":
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return frozenset(names)


def _is_lock_guard(item: ast.withitem, lock_attrs: frozenset[str]) -> bool:
    """Does ``with <expr>:`` take a lock of the enclosing class?"""
    expr = item.context_expr
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        attr = expr.attr
        return attr in lock_attrs or "lock" in attr or "cond" in attr
    return False


class FileChecker:
    """Walks one parsed file, dispatching nodes to the selected rules."""

    def __init__(self, path: str, source: str, rules: list[Rule]) -> None:
        self.path = path
        self.source = source
        self.rules = rules

    def run(self) -> tuple[list[Finding], list[Suppression]]:
        """All raw findings (pre-suppression) plus the parsed suppressions."""
        tree = ast.parse(self.source, filename=self.path)
        ctx = FileContext(path=self.path, tree=tree)
        ctx.contextvars = _module_contextvars(tree)
        active = [rule for rule in self.rules if rule.applies_to(ctx)]
        if not active:
            return [], parse_suppressions(self.source)
        for rule in active:
            rule.begin_file(ctx)
        findings: list[Finding] = []
        self._walk(tree, ctx, active, findings)
        return findings, parse_suppressions(self.source)

    def _walk(
        self,
        node: ast.AST,
        ctx: FileContext,
        rules: list[Rule],
        findings: list[Finding],
    ) -> None:
        for rule in rules:
            findings.extend(rule.visit(node, ctx))

        entered_class = isinstance(node, ast.ClassDef)
        saved_lock_attrs = ctx.class_lock_attrs
        if entered_class:
            ctx.class_lock_attrs = _lock_attrs_of(node)

        guards = 0
        if isinstance(node, (ast.With, ast.AsyncWith)):
            guards = sum(
                1 for item in node.items if _is_lock_guard(item, ctx.class_lock_attrs)
            )
            ctx.lock_depth += guards

        ctx.stack.append(node)
        for child in ast.iter_child_nodes(node):
            self._walk(child, ctx, rules, findings)
        ctx.stack.pop()

        if guards:
            ctx.lock_depth -= guards
        if entered_class:
            ctx.class_lock_attrs = saved_lock_attrs


def apply_suppressions(
    findings: list[Finding],
    suppressions: list[Suppression],
    path: str,
    active_rules: frozenset[str] | None = None,
) -> tuple[list[Finding], list[Finding]]:
    """Filter suppressed findings; audit the suppressions themselves.

    Returns ``(kept, meta)`` where ``meta`` contains the findings *about*
    suppressions: missing justifications and suppressions that silenced
    nothing.  A suppression on line N covers findings on lines N and N+1
    (comment-above style).  Staleness is only judged when every rule the
    suppression names was actually run (``active_rules``, None = all ran):
    under ``--select``, a suppression for an unselected rule is not stale,
    merely unexercised.
    """
    kept: list[Finding] = []
    meta: list[Finding] = []
    used: set[int] = set()

    by_line: dict[tuple[int, str], Suppression] = {}
    for sup in suppressions:
        for covered in (sup.line, sup.line + 1):
            for rule in sup.rules:
                by_line.setdefault((covered, rule), sup)

    for finding in findings:
        sup = by_line.get((finding.line, finding.rule))
        if sup is None:
            kept.append(finding)
            continue
        used.add(sup.line)
        if not sup.justification:
            meta.append(
                Finding(
                    rule="checks.unjustified-suppression",
                    severity=Severity.ERROR,
                    message=(
                        f"suppression of {finding.rule} has no justification "
                        "(write `# checks: ignore[rule] -- why`)"
                    ),
                    file=path,
                    line=sup.line,
                )
            )

    for sup in suppressions:
        if active_rules is not None and not all(
            rule in active_rules for rule in sup.rules
        ):
            continue
        if sup.line not in used:
            meta.append(
                Finding(
                    rule="checks.useless-suppression",
                    severity=Severity.WARNING,
                    message=(
                        f"suppression of {', '.join(sup.rules)} silences "
                        "nothing on this line; remove it"
                    ),
                    file=path,
                    line=sup.line,
                )
            )
    return kept, meta
