"""Hygiene rules: exception discipline and API-shape footguns.

``hyg.bare-except``       ``except:`` catches everything including
                          ``KeyboardInterrupt``; always an error
``hyg.broad-except``      ``except Exception`` without binding the
                          exception (``as exc``) and without re-raising
                          swallows the failure class silently — the PR 4
                          convention is to record the exception class
``hyg.swallowed-cancel``  a handler inside ``async def`` that catches
                          ``BaseException`` (or ``CancelledError``) and
                          does not re-raise eats task cancellation
``hyg.mutable-default``   ``def f(x=[])`` shares one list across calls
"""

from __future__ import annotations

import ast

from repro.analysis.diagnostics import Severity
from repro.checks.engine import FileContext, Rule


def _exception_names(type_node: ast.expr | None) -> list[str]:
    """The dotted-tail names of the caught exception types."""
    if type_node is None:
        return []
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    names = []
    for node in nodes:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise) for node in ast.walk(handler)
    )


class BareExceptRule(Rule):
    id = "hyg.bare-except"
    severity = Severity.ERROR
    description = "bare except catches SystemExit/KeyboardInterrupt; name the types"

    def visit(self, node: ast.AST, ctx: FileContext):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield self.finding(
                ctx, node,
                "bare except catches everything including KeyboardInterrupt; "
                "catch concrete exception types",
            )


class BroadExceptRule(Rule):
    id = "hyg.broad-except"
    severity = Severity.WARNING
    description = (
        "except Exception must either re-raise or bind the exception "
        "(`as exc`) and record its class; better, narrow the types"
    )

    def visit(self, node: ast.AST, ctx: FileContext):
        if not isinstance(node, ast.ExceptHandler):
            return
        names = _exception_names(node.type)
        if "Exception" not in names and "BaseException" not in names:
            return
        if node.name is not None or _reraises(node):
            return
        caught = "BaseException" if "BaseException" in names else "Exception"
        yield self.finding(
            ctx, node,
            f"except {caught} swallows the failure class; narrow the types, "
            "or bind `as exc` and record type(exc).__name__",
        )


class SwallowedCancelRule(Rule):
    id = "hyg.swallowed-cancel"
    severity = Severity.ERROR
    description = (
        "inside async def, catching BaseException or CancelledError without "
        "re-raising eats task cancellation"
    )

    def visit(self, node: ast.AST, ctx: FileContext):
        if not isinstance(node, ast.ExceptHandler) or not ctx.in_async_function():
            return
        names = _exception_names(node.type)
        catches_cancel = (
            node.type is None
            or "BaseException" in names
            or "CancelledError" in names
        )
        if catches_cancel and not _reraises(node):
            yield self.finding(
                ctx, node,
                "this handler swallows asyncio.CancelledError, so the task "
                "cannot be cancelled; re-raise it",
            )


class MutableDefaultRule(Rule):
    id = "hyg.mutable-default"
    severity = Severity.ERROR
    description = "mutable default arguments are shared across calls; use None"

    _MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "Counter", "deque"}

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else ""
            )
            return name in self._MUTABLE_CALLS
        return False

    def visit(self, node: ast.AST, ctx: FileContext):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                yield self.finding(
                    ctx, default,
                    f"mutable default argument in {node.name}(); one object "
                    "is shared across every call — default to None",
                )


RULES: tuple[Rule, ...] = (
    BareExceptRule(),
    BroadExceptRule(),
    SwallowedCancelRule(),
    MutableDefaultRule(),
)
