"""Runtime lock-order recording: cyclic lock acquisition = potential deadlock.

The static rules prove mutations happen *under* a lock; they cannot prove
two locks are always taken in the same order.  This module can, at test
time: every lock the repo creates through :func:`new_lock` is — when a
:class:`LockOrderMonitor` is installed — wrapped in a proxy that records,
per thread, which locks are held when a new one is acquired.  Each such
pair becomes an edge in a global lock-order graph; an edge that closes a
cycle means two threads can deadlock under the right interleaving, and is
recorded as a :class:`LockOrderViolation` (or raised in strict mode).

Locks are named by *role* (``obs.tracer``, ``resilience.breaker``), not by
instance: the discipline being checked is "the tracer lock is never taken
while holding a breaker lock and vice versa", which is a property of the
code, not of particular objects.

Off by default.  ``REPRO_CHECKS=1`` makes the test suite install a monitor
for the whole session (see ``tests/conftest.py``); production code pays a
single module-global ``is None`` check per lock construction and nothing
per acquisition.
"""

from __future__ import annotations

import os
import threading


class LockOrderViolation(RuntimeError):
    """Acquiring ``name`` while holding ``held`` contradicts a recorded order."""

    def __init__(self, name: str, held: str, cycle: list[str]) -> None:
        chain = " -> ".join(cycle + [cycle[0]]) if cycle else f"{held} -> {name}"
        super().__init__(
            f"lock-order cycle: acquiring {name!r} while holding {held!r}, "
            f"but the reverse order is already on record ({chain}); two "
            "threads interleaving these paths can deadlock"
        )
        self.name = name
        self.held = held
        self.cycle = cycle


class MonitoredLock:
    """A ``threading.Lock`` proxy that reports acquisitions to the monitor."""

    __slots__ = ("_inner", "_name", "_monitor")

    def __init__(self, inner, name: str, monitor: "LockOrderMonitor") -> None:
        self._inner = inner
        self._name = name
        self._monitor = monitor

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        # Record *before* blocking: a true deadlock would otherwise keep the
        # detector from ever seeing the closing edge.
        self._monitor._on_acquire(self._name)
        acquired = self._inner.acquire(blocking, timeout)
        if not acquired:
            self._monitor._on_release(self._name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._monitor._on_release(self._name)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


class LockOrderMonitor:
    """Global lock-order graph + per-thread held-lock stacks."""

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        #: role -> set of roles ever acquired while holding it.
        self._edges: dict[str, set[str]] = {}
        #: every (held, acquired) pair observed, for assertions in tests.
        self.observed: list[tuple[str, str]] = []
        self.violations: list[LockOrderViolation] = []
        self._graph_lock = threading.Lock()
        self._held = threading.local()

    # -- proxy callbacks ------------------------------------------------------

    def wrap(self, lock, name: str) -> MonitoredLock:
        return MonitoredLock(lock, name, self)

    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def _on_acquire(self, name: str) -> None:
        stack = self._stack()
        violation: LockOrderViolation | None = None
        with self._graph_lock:
            for held in stack:
                if held == name:
                    violation = LockOrderViolation(name, held, [name])
                    self.violations.append(violation)
                    break
                self.observed.append((held, name))
                cycle = self._path_locked(name, held)
                if cycle is not None:
                    violation = LockOrderViolation(name, held, cycle)
                    self.violations.append(violation)
                    break
                self._edges.setdefault(held, set()).add(name)
        stack.append(name)
        if violation is not None and self.strict:
            raise violation

    def _on_release(self, name: str) -> None:
        stack = self._stack()
        # Locks are normally released LIFO, but nothing enforces it; remove
        # the innermost matching entry.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    # -- graph queries --------------------------------------------------------

    def _path_locked(self, start: str, goal: str) -> list[str] | None:
        """DFS for a recorded ``start -> ... -> goal`` ordering path."""
        seen = {start}
        trail = [start]

        def walk(node: str) -> bool:
            if node == goal:
                return True
            for follower in sorted(self._edges.get(node, ())):
                if follower in seen:
                    continue
                seen.add(follower)
                trail.append(follower)
                if walk(follower):
                    return True
                trail.pop()
            return False

        return trail if walk(start) else None

    def edges(self) -> dict[str, set[str]]:
        with self._graph_lock:
            return {name: set(followers) for name, followers in self._edges.items()}

    def assert_clean(self) -> None:
        if self.violations:
            raise self.violations[0]


#: The process-wide monitor; None means recording is off and ``new_lock``
#: returns plain locks at full speed.
_MONITOR: LockOrderMonitor | None = None


def new_lock(name: str):
    """Create a lock under role ``name`` — the repo's one lock factory.

    Returns a plain ``threading.Lock`` unless a monitor is installed, in
    which case the lock is wrapped in an order-recording proxy.
    """
    monitor = _MONITOR
    if monitor is None:
        return threading.Lock()
    return monitor.wrap(threading.Lock(), name)


def install(strict: bool = False) -> LockOrderMonitor:
    """Install a fresh process-wide monitor; returns it for inspection.

    Only locks created *after* installation are monitored, so install
    before constructing the objects under test.
    """
    global _MONITOR
    _MONITOR = LockOrderMonitor(strict=strict)
    return _MONITOR


def uninstall() -> LockOrderMonitor | None:
    """Stop monitoring new locks; already-wrapped locks keep reporting."""
    global _MONITOR
    monitor, _MONITOR = _MONITOR, None
    return monitor


def current_monitor() -> LockOrderMonitor | None:
    return _MONITOR


def enabled_by_env() -> bool:
    """Whether the REPRO_CHECKS=1 test mode is requested.

    The conftest hook calls this once at session start; nothing else in the
    repo reads the environment for it.
    """
    return os.environ.get("REPRO_CHECKS") == "1"  # checks: ignore[det.env-read] -- the lock-order test mode is an opt-in of the test harness, read once at pytest session start; it can never influence artifacts
