"""Reporters for ``sciencebenchmark check``: terminal text and JSON.

Both formats ride on the shared envelope/exit-code helpers in
:mod:`repro.analysis.diagnostics`, the same ones ``sciencebenchmark lint``
uses — one formatting path for every lint-style gate in the repo.
"""

from __future__ import annotations

from repro.analysis.diagnostics import json_report, summary_line
from repro.checks.runner import CheckReport


def render_terminal(report: CheckReport) -> str:
    lines = []
    for finding in report.findings:
        lines.append(finding.render())
    lines.append(
        summary_line(
            f"checks ({report.n_files} files, {len(report.rules)} rules)",
            report.n_errors,
            report.n_warnings,
        )
    )
    return "\n".join(lines)


def render_json(report: CheckReport) -> str:
    return json_report(
        "checks",
        [finding.to_dict() for finding in report.findings],
        files_scanned=report.n_files,
        rules=sorted(report.rules),
    )
