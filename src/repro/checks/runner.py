"""Orchestration: discover files, run every selected rule, collect findings.

``run_checks(paths)`` is what ``sciencebenchmark check`` calls.  With no
paths it scans the installed ``repro`` package itself — the framework's
primary job is gating this repo's own source.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Severity
from repro.checks import concurrency, determinism, hygiene
from repro.checks.engine import (
    FileChecker,
    Finding,
    Rule,
    apply_suppressions,
)

#: Every shipped rule, in reporting order.
ALL_RULES: tuple[Rule, ...] = (
    determinism.RULES + concurrency.RULES + hygiene.RULES
)


def rule_index() -> dict[str, Rule]:
    return {rule.id: rule for rule in ALL_RULES}


@dataclass
class CheckReport:
    """Everything one ``run_checks`` invocation found."""

    findings: list[Finding] = field(default_factory=list)
    n_files: int = 0
    rules: tuple[str, ...] = ()

    @property
    def n_errors(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def n_warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.WARNING)


def default_root() -> str:
    """The installed ``repro`` package directory — the default scan target."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def _python_files(root: str) -> list[str]:
    if os.path.isfile(root):
        return [root]
    files = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if not d.startswith("__pycache__"))
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                files.append(os.path.join(dirpath, filename))
    return files


def _display_path(file_path: str) -> str:
    """Repo-relative posix path starting at the package root.

    ``.../site-packages/repro/serving/server.py`` → ``repro/serving/server.py``;
    paths outside any ``repro`` package segment stay as given.
    """
    normalized = os.path.abspath(file_path).replace(os.sep, "/")
    marker = "/repro/"
    index = normalized.rfind(marker)
    if index >= 0:
        return normalized[index + 1 :]
    return file_path.replace(os.sep, "/")


def select_rules(select: list[str] | None) -> list[Rule]:
    """Resolve ``--select`` ids (exact id or pack prefix like ``det``)."""
    if not select:
        return list(ALL_RULES)
    chosen = []
    for rule in ALL_RULES:
        pack = rule.id.split(".", 1)[0]
        if rule.id in select or pack in select:
            chosen.append(rule)
    unknown = [
        item
        for item in select
        if item not in {rule.id for rule in ALL_RULES}
        and item not in {rule.id.split(".", 1)[0] for rule in ALL_RULES}
    ]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return chosen


def run_checks(
    paths: list[str] | None = None,
    select: list[str] | None = None,
) -> CheckReport:
    """Run the selected rule packs over ``paths`` (default: the repo source)."""
    rules = select_rules(select)
    roots = paths or [default_root()]
    active = frozenset(rule.id for rule in rules)
    report = CheckReport(rules=tuple(rule.id for rule in rules))
    for root in roots:
        for file_path in _python_files(root):
            with open(file_path, encoding="utf-8") as handle:
                source = handle.read()
            display = _display_path(file_path)
            report.n_files += 1
            raw, suppressions = FileChecker(display, source, rules).run()
            kept, meta = apply_suppressions(raw, suppressions, display, active)
            report.findings.extend(kept)
            report.findings.extend(meta)
    report.findings.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
    return report
