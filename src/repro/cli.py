"""Command-line interface: ``sciencebenchmark <command>``.

Commands
--------
``tables``     regenerate one or all paper tables (1, 2, 3, 4, 5)
``figures``    regenerate the Figure 1 / Figure 2 walk-throughs
``augment``    run the pipeline for one domain and write the Synth split
``stats``      print the per-domain split statistics
``lint``       static-analyze the gold queries and data of the domains

All commands accept ``--preset quick|full`` (default quick) and are fully
deterministic.  Failures exit non-zero: 1 for benchmark errors (including
lint findings), 2 for usage errors.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sciencebenchmark",
        description="ScienceBenchmark (VLDB 2023) reproduction harness",
    )
    parser.add_argument(
        "--preset", choices=("quick", "full"), default="quick",
        help="experiment scale preset (default: quick)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tables = sub.add_parser("tables", help="regenerate paper tables")
    tables.add_argument(
        "which", nargs="*", default=["1", "2", "4"],
        help="table numbers (1-5); default: the fast ones (1, 2, 4)",
    )

    sub.add_parser("figures", help="regenerate Figure 1 and Figure 2")

    augment = sub.add_parser("augment", help="run the pipeline for one domain")
    augment.add_argument("domain", choices=("cordis", "sdss", "oncomx"))
    augment.add_argument("--out", default=None, help="write the Synth split as JSON")

    sub.add_parser("stats", help="print split statistics for all domains")

    lint = sub.add_parser(
        "lint", help="static-analyze gold queries and data integrity"
    )
    lint.add_argument(
        "domains", nargs="*", default=[], metavar="domain",
        help="domains to lint (default: cordis sdss oncomx)",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="also fail on warnings, not only errors",
    )

    args = parser.parse_args(argv)
    from repro.errors import ReproError
    from repro.experiments.runner import get_suite

    suite = get_suite(args.preset)

    try:
        if args.command == "tables":
            return _tables(suite, args.which)
        if args.command == "figures":
            return _figures(suite)
        if args.command == "augment":
            return _augment(suite, args.domain, args.out)
        if args.command == "stats":
            return _stats(suite)
        if args.command == "lint":
            return _lint(suite, args.domains, args.strict)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 2


def _tables(suite, which: list[str]) -> int:
    renderers = {
        "1": lambda: __import__("repro.experiments.table1", fromlist=["render_table1"]).render_table1(suite),
        "2": lambda: __import__("repro.experiments.table2", fromlist=["render_table2"]).render_table2(suite),
        "3": lambda: __import__("repro.experiments.table3", fromlist=["render_table3"]).render_table3(suite),
        "4": lambda: __import__("repro.experiments.table4", fromlist=["render_table4"]).render_table4(suite),
        "5": _table5_renderer(suite),
    }
    for number in which:
        if number not in renderers:
            print(f"unknown table {number!r} (choose 1-5)", file=sys.stderr)
            return 2
        print(renderers[number]())
        print()
    return 0


def _table5_renderer(suite):
    def run():
        from repro.experiments.table5 import compute_table5, render_table5

        result = compute_table5(suite)
        return render_table5(result)

    return run


def _figures(suite) -> int:
    from repro.experiments.figures import (
        render_figure1,
        render_figure2,
        run_figure1,
        run_figure2,
    )

    print(render_figure1(run_figure1(suite)))
    print()
    print(render_figure2(run_figure2(suite)))
    return 0


def _augment(suite, domain_name: str, out: str | None) -> int:
    domain = suite.domain(domain_name)
    synth = domain.synth
    print(f"{domain_name}: {len(synth)} synthetic pairs "
          f"({synth.hardness_counts()})")
    if out:
        synth.to_json(out)
        print(f"written to {out}")
    return 0


def _lint(suite, domain_names: list[str], strict: bool) -> int:
    """Lint the gold queries and data of the requested domains.

    Builds the bare domains directly — linting must not trigger the
    (expensive) synthesis pipeline that ``suite.domain()`` runs.
    """
    from repro.analysis import lint_domain
    from repro.experiments.runner import DOMAIN_BUILDERS

    names = domain_names or list(DOMAIN_BUILDERS)
    failed = False
    for name in names:
        if name not in DOMAIN_BUILDERS:
            print(f"unknown domain {name!r} (choose from "
                  f"{', '.join(DOMAIN_BUILDERS)})", file=sys.stderr)
            return 2
        domain = DOMAIN_BUILDERS[name](scale=suite.config.domain_scale)
        report = lint_domain(domain)
        print(report.render())
        if report.has_errors or (strict and report.n_warnings):
            failed = True
    return 1 if failed else 0


def _stats(suite) -> int:
    for name, domain in suite.domains().items():
        print(f"{name}:")
        for split in (domain.seed, domain.dev, domain.synth):
            if split is None:
                continue
            print(f"  {split.name:16s} {len(split):5d} {split.hardness_counts()}")
    corpus = suite.corpus
    print("minispider:")
    for split in (corpus.train, corpus.dev):
        print(f"  {split.name:16s} {len(split):5d} {split.hardness_counts()}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
