"""Command-line interface: ``sciencebenchmark <command>``.

Commands
--------
``tables``     regenerate one or all paper tables (1, 2, 3, 4, 5)
``figures``    regenerate the Figure 1 / Figure 2 walk-throughs
``augment``    run the pipeline for one domain and write the Synth split
``stats``      print the per-domain split statistics
``lint``       static-analyze the gold queries and data of the domains
``check``      static-analyze the repo's own Python source against the
               determinism/concurrency/hygiene rule packs
``serve-bench`` benchmark the serving layer (unbatched/batched/fleet arms)
``chaos-bench`` replay the pipeline and a Table-5 slice under a named
               fault schedule and assert byte-identical recovery
``robustness-bench`` run the scenario matrix (system x domain x
               perturbation family x severity) and report the per-axis
               hardness/robustness breakdown with degradation deltas
``diff-exec``  differentially execute a domain's query sets on the in-repo
               engine and an alternative backend (sqlite, vector, or the
               three-way ``all`` gate) and report divergences
``engine-bench`` time the native/vector/sqlite engines on the gold
               workloads, check cross-engine agreement and gate the vector
               speedup
``explain``    print the vector engine's costed plan tree for one query
``trace``      run any other command under the tracer and export a Chrome
               trace, a JSONL span log and a terminal flame summary

All commands accept ``--preset quick|full`` (default quick) and are fully
deterministic: for a fixed seed, ``--workers 4`` produces byte-identical
output to ``--workers 1``.  Domain selection is uniform: ``--domain NAME``
(repeatable) restricts any command to a subset of the registered adapters,
and ``--adapter PATH`` registers an extra single-file domain adapter before
the command runs — both validated against :func:`repro.adapters.list_adapters`.
Artifacts are built through the task-graph runtime — ``--workers`` fans
independent tasks across processes, ``--cache-dir``/``--no-cache`` control
the content-addressed artifact cache (default ``.repro-cache/``), and
``--timings`` prints the per-task runtime report to stderr.  Failures exit
non-zero: 1 for benchmark errors (including lint findings), 2 for usage
errors.
"""

from __future__ import annotations

import argparse
import sys


def _add_shared_flags(parser: argparse.ArgumentParser, suppress: bool) -> None:
    """Preset + runtime flags, accepted before *or* after the subcommand.

    The subparser copies use ``SUPPRESS`` defaults so a flag given before the
    subcommand is not clobbered by the subparser's default afterwards.
    """

    def default(value):
        return argparse.SUPPRESS if suppress else value

    parser.add_argument(
        "--preset", choices=("quick", "full"), default=default("quick"),
        help="experiment scale preset (default: quick)",
    )
    parser.add_argument(
        "--workers", type=int, default=default(1), metavar="N",
        help="worker processes for independent artifact builds (default: 1)",
    )
    parser.add_argument(
        "--cache-dir", default=default(".repro-cache"), metavar="PATH",
        help="artifact cache directory (default: .repro-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", default=default(False),
        help="disable the content-addressed artifact cache",
    )
    parser.add_argument(
        "--timings", action="store_true", default=default(False),
        help="print the runtime report (per-task wall time, cache hits) to stderr",
    )
    parser.add_argument(
        "--domain", action="append", default=default(None), metavar="NAME",
        help="restrict to a registered domain adapter; repeatable "
             "(default: every registered adapter)",
    )
    parser.add_argument(
        "--adapter", action="append", default=default(None), metavar="PATH",
        help="register a domain adapter from a Python file or module path "
             "before running; repeatable",
    )


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sciencebenchmark",
        description="ScienceBenchmark (VLDB 2023) reproduction harness",
    )
    _add_shared_flags(parser, suppress=False)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_command(*args, **kwargs):
        command = sub.add_parser(*args, **kwargs)
        _add_shared_flags(command, suppress=True)
        return command

    tables = add_command("tables", help="regenerate paper tables")
    tables.add_argument(
        "which", nargs="*", default=["1", "2", "4"],
        help="table numbers (1-5); default: the fast ones (1, 2, 4)",
    )
    tables.add_argument(
        "--backend", dest="engine", choices=("native", "vector"),
        default="native",
        help="SQL engine for the evaluation's execute stage; results are "
             "byte-identical, vector is an order of magnitude faster "
             "(default: native)",
    )

    add_command("figures", help="regenerate Figure 1 and Figure 2")

    augment = add_command(
        "augment", help="run the pipeline for one domain (exactly one --domain)"
    )
    augment.add_argument("--out", default=None, help="write the Synth split as JSON")
    augment.add_argument(
        "--target", type=int, default=None, metavar="N",
        help="override the pipeline's target query count",
    )
    augment.add_argument(
        "--seed", type=int, default=None, metavar="S",
        help="override the pipeline's RNG seed",
    )

    add_command("stats", help="print split statistics for all domains")

    lint = add_command(
        "lint", help="static-analyze gold queries and data integrity"
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="also fail on warnings, not only errors",
    )

    check = add_command(
        "check",
        help="static-analyze the repo's own source for determinism, "
             "concurrency and hygiene violations",
    )
    check.add_argument(
        "paths", nargs="*", default=[], metavar="path",
        help="files or directories to scan (default: the repro package)",
    )
    check.add_argument(
        "--format", choices=("terminal", "json"), default="terminal",
        help="report format (default: terminal)",
    )
    check.add_argument(
        "--select", default=None, metavar="RULE,...",
        help="comma-separated rule ids or packs (e.g. det,con.blocking-async)",
    )
    check.add_argument(
        "--list-rules", action="store_true",
        help="print every shipped rule with its severity and exit",
    )

    serve = add_command(
        "serve-bench",
        help="load-test the serving layer: unbatched vs batched vs (with "
             "--replicas) a sharded multi-replica fleet, plus an open-loop "
             "multi-tenant soak arm under --qps",
    )
    serve.add_argument(
        "--system", choices=("valuenet", "t5-large", "smbop"), default="valuenet",
        help="NL-to-SQL system to serve (default: valuenet)",
    )
    serve.add_argument(
        "--regime", choices=("zero", "seed", "synth", "both"), default="both",
        help="training regime of the served systems (default: both)",
    )
    serve.add_argument(
        "--concurrency", type=int, default=16, metavar="N",
        help="closed-loop client concurrency (default: 16)",
    )
    serve.add_argument(
        "--repeat", type=int, default=4, metavar="N",
        help="times each dev question appears in the stream (default: 4)",
    )
    serve.add_argument(
        "--qps", type=float, default=None, metavar="Q",
        help="open-loop offered rate; with --replicas >= 2 this drives a "
             "sustained multi-tenant soak arm against the fleet, otherwise "
             "it paces the base arms instead of the closed loop",
    )
    serve.add_argument(
        "--replicas", type=int, default=1, metavar="N",
        help="replica slots behind the fleet router; >= 2 adds the fleet "
             "arm (default: 1 = no fleet)",
    )
    serve.add_argument(
        "--isolation", choices=("process", "thread"), default="process",
        help="replica decode isolation: process forks one decode worker "
             "per replica (parallel across cores), thread shares the "
             "interpreter (default: process)",
    )
    serve.add_argument(
        "--tenants", type=int, default=4, metavar="N",
        help="tenants the soak arm round-robins requests over (default: 4)",
    )
    serve.add_argument(
        "--soak-requests", type=int, default=None, metavar="N",
        help="cap on soak-arm requests (default: the full stream)",
    )
    serve.add_argument(
        "--quota-rate", type=float, default=None, metavar="Q",
        help="per-tenant token-bucket refill rate for the soak arm "
             "(default: no quotas)",
    )
    serve.add_argument(
        "--quota-burst", type=float, default=None, metavar="N",
        help="per-tenant token-bucket burst size (default: the rate)",
    )
    serve.add_argument(
        "--allow-rejections", action="store_true",
        help="tolerate admission rejections under deliberate overload "
             "(quota rejections never gate; failures/timeouts always do)",
    )
    serve.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="cap the total request count",
    )
    serve.add_argument(
        "--max-batch", type=int, default=8, metavar="N",
        help="micro-batch size limit of the batched arm (default: 8)",
    )
    serve.add_argument(
        "--max-wait-ms", type=float, default=2.0, metavar="MS",
        help="micro-batch coalescing window (default: 2.0)",
    )
    serve.add_argument(
        "--execute", action="store_true",
        help="also execute the predicted SQL against the domain databases",
    )
    serve.add_argument(
        "--exec-backend", choices=("native", "vector"), default="native",
        help="SQL engine behind the --execute stage (default: native)",
    )
    serve.add_argument(
        "--out", default="benchmarks/BENCH_serving.json", metavar="PATH",
        help="report destination (default: benchmarks/BENCH_serving.json)",
    )
    serve.add_argument(
        "--assert-speedup", type=float, default=None, metavar="MIN",
        help="exit 1 unless batched/unbatched throughput >= MIN",
    )
    serve.add_argument(
        "--assert-p95-ms", type=float, default=None, metavar="MS",
        help="exit 1 unless the batched arm's p95 latency <= MS",
    )
    serve.add_argument(
        "--assert-p99-ms", type=float, default=None, metavar="MS",
        help="exit 1 unless the batched arm's p99 latency <= MS",
    )
    serve.add_argument(
        "--assert-fairness", type=float, default=None, metavar="X",
        help="exit 1 unless the soak arm's worst/best tenant p95 ratio <= X",
    )
    serve.add_argument(
        "--assert-fleet-gain", action="store_true",
        help="exit 1 unless the fleet arm shows >= 2x throughput or <= 0.5x "
             "queue-stage p95 vs the batched arm",
    )

    trace = add_command(
        "trace",
        help="run any sciencebenchmark command under the tracer and export "
             "a Chrome trace, a span log and a flame summary",
    )
    trace.add_argument(
        "--trace-dir", default="traces", metavar="PATH",
        help="directory for trace artifacts (default: traces)",
    )
    trace.add_argument(
        "rest", nargs=argparse.REMAINDER, metavar="command",
        help="the command to trace, with its own flags after it",
    )

    chaos = add_command(
        "chaos-bench",
        help="replay the pipeline and a Table-5 slice under a fault "
             "schedule; verify recovery is byte-identical",
    )
    chaos.add_argument(
        "--schedule", default="transient-small",
        choices=("transient-small", "transient-heavy", "permanent-mix"),
        help="named fault schedule (default: transient-small)",
    )
    chaos.add_argument(
        "--skip-tables", action="store_true",
        help="skip the (slower) Table-5 runtime replay",
    )
    chaos.add_argument(
        "--assert-identical", action="store_true",
        help="exit 1 unless chaos output is byte-identical to fault-free",
    )
    chaos.add_argument(
        "--max-dead-letter", type=int, default=None, metavar="N",
        help="exit 1 when more than N queries were dead-lettered",
    )
    chaos.add_argument(
        "--out", default="benchmarks/BENCH_resilience.json", metavar="PATH",
        help="report destination (default: benchmarks/BENCH_resilience.json)",
    )

    robust = add_command(
        "robustness-bench",
        help="run the scenario matrix (system x domain x perturbation "
             "family x severity) and report hardness/robustness breakdowns "
             "with degradation-vs-baseline deltas",
    )
    robust.add_argument(
        "--family", action="append", metavar="NAME", default=None,
        choices=("distractor", "drift", "paraphrase", "rename", "synth"),
        help="perturbation family to include; repeatable (default: all five)",
    )
    robust.add_argument(
        "--severity", action="append", type=int, choices=(1, 2, 3),
        default=None, metavar="S",
        help="severity level to include; repeatable (default: 1 2 3)",
    )
    robust.add_argument(
        "--system", action="append", default=None,
        choices=("valuenet", "t5-large", "smbop"),
        help="NL-to-SQL system to evaluate; repeatable (default: valuenet)",
    )
    robust.add_argument(
        "--seed", type=int, default=2023, metavar="S",
        help="base seed of the matrix (default: 2023)",
    )
    robust.add_argument(
        "--scale", type=float, default=0.2, metavar="X",
        help="domain data scale for the matrix (default: 0.2)",
    )
    robust.add_argument(
        "--dev-limit", type=int, default=12, metavar="N",
        help="dev pairs evaluated per cell; 0 = the full split (default: 12)",
    )
    robust.add_argument(
        "--fault-schedule", default=None,
        choices=("transient-small", "transient-heavy", "permanent-mix"),
        help="also inject this resilience fault schedule into the matrix "
             "run (chaos composition; default: no faults)",
    )
    robust.add_argument(
        "--out", default="benchmarks/BENCH_robustness.json", metavar="PATH",
        help="report destination (default: benchmarks/BENCH_robustness.json)",
    )
    robust.add_argument(
        "--assert-max-degradation", type=float, default=None, metavar="X",
        help="exit 1 when any family's mean degradation exceeds X",
    )
    robust.add_argument(
        "--assert-invariant", action="store_true",
        help="exit 1 unless every distractor-widened gold query returned "
             "exactly the baseline rows",
    )

    diff = add_command(
        "diff-exec",
        help="differentially execute a domain's query sets on the in-repo "
             "engine and an alternative backend; report divergences",
    )
    diff.add_argument(
        "--backend", choices=("sqlite", "vector", "all"), default="sqlite",
        help="execution backend to compare against; 'all' runs the "
             "three-way gate (engine vs vector strict, engine vs sqlite "
             "tolerant) (default: sqlite)",
    )
    diff.add_argument(
        "--splits", choices=("gold", "silver", "all"), default="gold",
        help="query sets to execute: gold (seed+dev, built bare), silver "
             "(the synth split, built through the suite) or all "
             "(default: gold)",
    )
    diff.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON divergence report",
    )

    engine = add_command(
        "engine-bench",
        help="benchmark the SQL engines (native vs vector vs sqlite) on "
             "the gold workloads and gate the vector speedup",
    )
    engine.add_argument(
        "--workload", choices=("table5", "serve"), default="table5",
        help="query stream: table5 (all gold queries, steady-state per-"
             "query minimum) or serve (dev split streamed --repeat times) "
             "(default: table5)",
    )
    engine.add_argument(
        "--repeat", type=int, default=5, metavar="N",
        help="runs per query (table5) or stream repetitions (serve) "
             "(default: 5)",
    )
    engine.add_argument(
        "--out", default="benchmarks/BENCH_engine.json", metavar="PATH",
        help="report destination (default: benchmarks/BENCH_engine.json)",
    )
    engine.add_argument(
        "--assert-speedup", type=float, default=None, metavar="MIN",
        help="exit 1 unless the vector engine's overall p50 speedup over "
             "native >= MIN",
    )
    engine.add_argument(
        "--assert-identical", action="store_true",
        help="exit 1 unless vector results are byte-identical to native "
             "and sqlite agrees on every query",
    )

    explain = add_command(
        "explain",
        help="print the vector engine's costed plan tree for one SQL query",
    )
    explain.add_argument("sql", help="the SQL query to plan")
    return parser


def _config_for(args):
    import dataclasses

    from repro.experiments.config import full, quick

    config = {"quick": quick, "full": full}[args.preset]()
    if args.domain:
        config = dataclasses.replace(config, domains=tuple(args.domain))
    engine = getattr(args, "engine", None)
    if engine and engine != "native":
        config = dataclasses.replace(config, engine=engine)
    return config


def _resolve_domain_flags(args) -> int:
    """Register ``--adapter`` sources, then validate ``--domain`` names.

    Adapters register first so a just-loaded single-file domain is a valid
    ``--domain`` target in the same invocation.  Returns 0 on success or the
    usage exit code.
    """
    from repro import adapters
    from repro.errors import AdapterError

    for path in args.adapter or ():
        try:
            adapters.load_adapter_source(path)
        except AdapterError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.domain:
        available = adapters.list_adapters()
        for name in args.domain:
            if name.lower() not in available:
                print(
                    f"unknown domain {name!r} (available: "
                    f"{', '.join(available)})",
                    file=sys.stderr,
                )
                return 2
        args.domain = [name.lower() for name in args.domain]
    return 0


def _build_suite(args):
    """One suite per invocation, wired to the requested runtime policy."""
    from repro.experiments.runner import Suite
    from repro.runtime import Runtime

    cache_dir = None if args.no_cache else args.cache_dir
    runtime = Runtime(workers=args.workers, cache_dir=cache_dir)
    return Suite.from_config(_config_for(args), runtime=runtime)


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    from repro.errors import ReproError

    try:
        if args.command == "trace":
            # The wrapper re-enters main() for the wrapped command; it never
            # builds a suite (or touches the shared flags) itself.
            return _trace(args)
        code = _resolve_domain_flags(args)
        if code:
            return code
        if args.command == "lint":
            # Lint never builds the suite: it constructs bare domains itself
            # and must not pay for (or trigger) the synthesis pipeline.
            return _lint(args)
        if args.command == "check":
            # Source checks touch no artifacts at all.
            return _check(args)
        if args.command == "chaos-bench":
            # Chaos-bench owns its runtimes (baseline vs chaos vs repair
            # caches must stay separate); it never touches the suite cache.
            return _chaos_bench(args)
        if args.command == "robustness-bench":
            # The matrix builds bare perturbed domains through its own
            # runtime (never the suite's synthesis pipeline).
            return _robustness_bench(args)
        if args.command == "diff-exec":
            # Gold splits execute on bare domains (no synthesis); the silver
            # split goes through a suite inside the handler.
            return _diff_exec(args)
        if args.command == "engine-bench":
            # Gold workloads run on bare domains — never the synthesis suite.
            return _engine_bench(args)
        if args.command == "explain":
            return _explain(args)
        suite = _build_suite(args)
        if args.command == "tables":
            code = _tables(suite, args.which)
        elif args.command == "figures":
            code = _figures(suite)
        elif args.command == "augment":
            code = _augment(suite, args)
        elif args.command == "stats":
            code = _stats(suite)
        elif args.command == "serve-bench":
            code = _serve_bench(suite, args)
        else:  # pragma: no cover - argparse enforces the choices
            return 2
        if args.timings:
            print(suite.runtime.report.render(), file=sys.stderr)
        return code
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _tables(suite, which: list[str]) -> int:
    from repro.experiments import registry

    names = registry.available(kind="table")
    for number in which:
        if number not in names:
            print(f"unknown table {number!r} (choose 1-5)", file=sys.stderr)
            return 2
    # Prefetch every requested table's artifacts in one batch so independent
    # tasks (domains, corpus, Table-5 cells) fan across the workers.
    prefetch = [
        task for number in which for task in registry.required_tasks(number, suite.config)
    ]
    suite.ensure(prefetch)
    for number in which:
        print(registry.render(number, suite))
        print()
    return 0


def _figures(suite) -> int:
    from repro.experiments import registry

    if "sdss" not in suite.domain_names():
        print("figures requires the sdss domain (the paper's Figure 1/2 "
              "walk-throughs are SDSS-based)", file=sys.stderr)
        return 2
    suite.ensure(
        registry.required_tasks("figure1", suite.config)
        + registry.required_tasks("figure2", suite.config)
    )
    print(registry.render("figure1", suite))
    print()
    print(registry.render("figure2", suite))
    return 0


def _augment(suite, args) -> int:
    if not args.domain or len(args.domain) != 1:
        print("augment requires exactly one --domain", file=sys.stderr)
        return 2
    domain_name = args.domain[0]
    out, target, seed = args.out, args.target, args.seed
    if target is None and seed is None:
        # Default run: the suite's own Synth artifact (graph-built, cached).
        synth = suite.domain(domain_name).synth
    else:
        # Overrides map onto an explicit PipelineConfig over a bare domain.
        import random

        from repro import adapters
        from repro.llm.models import GPT3_PROFILE, make_model
        from repro.runtime import derive_seed
        from repro.synthesis import augment_domain

        if seed is None:
            seed = derive_seed(suite.config.seed, f"augment:{domain_name}")
        if target is None:
            target = suite.config.synth_targets.get(domain_name, 300)
        domain = adapters.get_adapter(domain_name).build(
            scale=suite.config.domain_scale
        )
        synth = augment_domain(
            domain,
            target_queries=target,
            seed=seed,
            model=make_model(GPT3_PROFILE, seed=seed),
            rng=random.Random(seed),
        )
    print(f"{domain_name}: {len(synth)} synthetic pairs "
          f"({synth.hardness_counts()})")
    if out:
        synth.to_json(out)
        print(f"written to {out}")
    return 0


def _lint(args) -> int:
    """Lint the gold queries and data of the requested domains.

    Builds the bare domains directly — linting must not trigger the
    (expensive) synthesis pipeline that ``suite.domain()`` runs.
    """
    from repro import adapters
    from repro.analysis import lint_domain
    from repro.analysis.diagnostics import gate_exit_code

    config = _config_for(args)
    names = args.domain or list(adapters.list_adapters())
    n_errors = n_warnings = 0
    for name in names:
        domain = adapters.get_adapter(name).build(scale=config.domain_scale)
        report = lint_domain(domain)
        print(report.render())
        n_errors += report.n_errors
        n_warnings += report.n_warnings
    return gate_exit_code(n_errors, n_warnings, strict=args.strict)


def _check(args) -> int:
    """Run the repo's own determinism/concurrency/hygiene source checks.

    Warnings gate too (``strict=True``): an invariant worth a warning is
    worth failing CI over — suppressions with justifications are the escape
    hatch, not severities.
    """
    from repro.analysis.diagnostics import gate_exit_code
    from repro.checks import ALL_RULES, render_json, render_terminal, run_checks

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id:24s} {rule.severity.value:8s} {rule.description}")
        return 0
    select = [item.strip() for item in args.select.split(",")] if args.select else None
    try:
        report = run_checks(paths=args.paths or None, select=select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_terminal(report))
    return gate_exit_code(report.n_errors, report.n_warnings, strict=True)


def _serve_bench(suite, args) -> int:
    """Warm-start the serving layer and replay dev questions through it."""
    from repro.serving import (
        FleetProfile,
        LoadProfile,
        ServerConfig,
        evaluate_gates,
        load_backends,
        render_report,
        run_serve_bench,
        write_report,
    )

    # --domain (already validated against the registry) narrows the serve
    # set; default is everything the suite's config names.
    domains = tuple(args.domain) if args.domain else suite.domain_names()

    bundle = load_backends(
        suite, domains=domains, system_name=args.system, regime=args.regime,
        exec_engine=args.exec_backend,
    )
    start = "warm (all artifacts cached)" if bundle.warm else "cold (training ran)"
    print(f"serving {args.system} [{args.regime}] on "
          f"{', '.join(domains)} — start was {start}", file=sys.stderr)

    questions = {
        name: [pair.question for pair in suite.dev_pairs(name)] for name in domains
    }
    # With a fleet, --qps drives the open-loop soak arm and the base arms
    # stay closed-loop; without one it paces the base arms (old behaviour).
    fleet = None
    base_qps = args.qps
    if args.replicas >= 2:
        base_qps = None
        fleet = FleetProfile(
            replicas=args.replicas, isolation=args.isolation,
            tenants=args.tenants,
            soak_qps=args.qps, soak_requests=args.soak_requests,
            quota_rate=args.quota_rate, quota_burst=args.quota_burst,
        )
        print(f"fleet: {args.replicas} replica slots over "
              f"{', '.join(domains)} ({bundle.fleet_spec().system} "
              f"[{bundle.fleet_spec().regime}])", file=sys.stderr)
    profile = LoadProfile(
        concurrency=args.concurrency, repeat=args.repeat,
        qps=base_qps, seed=suite.config.seed, limit=args.limit,
    )
    config = ServerConfig(
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        execute=args.execute,
    )
    report = run_serve_bench(
        bundle.backends, questions, profile, config, fleet=fleet
    )
    print(render_report(report))
    # Gates run before the report is written: a downgraded gate (e.g.
    # --assert-fleet-gain on a 1-cpu host) records its warning *in* the
    # report, so the written artifact carries the note.
    failures = evaluate_gates(
        report,
        assert_speedup=args.assert_speedup,
        assert_p95_ms=args.assert_p95_ms,
        assert_p99_ms=args.assert_p99_ms,
        assert_fairness=args.assert_fairness,
        assert_fleet_gain=args.assert_fleet_gain,
        allow_rejections=args.allow_rejections,
    )
    if args.out:
        path = write_report(report, args.out)
        print(f"report written to {path}", file=sys.stderr)
    for warning in report.get("warnings", ()):
        print(f"WARN: {warning}", file=sys.stderr)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _trace(args) -> int:
    """``sciencebenchmark trace <command…>``: run a command traced.

    Installs a live tracer process-wide, re-enters :func:`main` with the
    wrapped command, then writes the Chrome ``trace_event`` JSON and the
    JSONL span log under ``--trace-dir`` and prints the flame summary to
    stderr.  The wrapped command's exit code is propagated.
    """
    import os

    from repro import obs
    from repro.obs import Tracer, flame_summary, write_chrome_trace, write_span_log

    rest = [token for token in args.rest if token != "--"]
    if not rest or rest[0] == "trace":
        print("usage: sciencebenchmark trace <command> [args...]", file=sys.stderr)
        return 2
    sub = rest[0]
    trace_path = os.path.join(args.trace_dir, f"trace-{sub}.json")
    span_log_path = os.path.join(args.trace_dir, f"trace-{sub}.spans.jsonl")

    tracer = Tracer()
    # Announce the artifact path up front so reports written by the wrapped
    # command (serve-bench, chaos-bench) can embed it.
    previous_path = obs.set_trace_path(trace_path)
    previous_tracer = obs.set_tracer(tracer)
    try:
        with tracer.span(f"command:{sub}", argv=" ".join(rest)) as span:
            code = main(rest)
            span.set_attr("exit_code", code)
    finally:
        obs.set_tracer(previous_tracer)
        obs.set_trace_path(previous_path)

    spans = tracer.finished()
    write_chrome_trace(spans, trace_path)
    write_span_log(spans, span_log_path)
    print(flame_summary(spans), file=sys.stderr)
    print(f"trace: {len(spans)} spans -> {trace_path} (span log: "
          f"{span_log_path})", file=sys.stderr)
    return code


def _chaos_bench(args) -> int:
    """Run the resilience benchmark and enforce its gates."""
    from repro.resilience.chaosbench import (
        render_report,
        run_chaos_bench,
        write_report,
    )

    if args.domain and len(args.domain) > 1:
        print("chaos-bench accepts a single --domain", file=sys.stderr)
        return 2
    domain = args.domain[0] if args.domain else "cordis"
    report = run_chaos_bench(
        schedule=args.schedule,
        domain=domain,
        skip_tables=args.skip_tables,
        workers=max(2, args.workers),
    )
    print(render_report(report))
    if args.out:
        path = write_report(report, args.out)
        print(f"report written to {path}", file=sys.stderr)

    code = 0
    if args.assert_identical and not report["identical"]:
        print("FAIL: chaos output is not byte-identical to the fault-free run",
              file=sys.stderr)
        code = 1
    if (
        args.max_dead_letter is not None
        and report["dead_lettered"] > args.max_dead_letter
    ):
        print(f"FAIL: {report['dead_lettered']} dead-lettered queries exceed "
              f"the budget of {args.max_dead_letter}", file=sys.stderr)
        code = 1
    if report["breaker_ended_open"]:
        print("FAIL: a circuit breaker ended the run open", file=sys.stderr)
        code = 1
    return code


def _robustness_bench(args) -> int:
    """Run the perturbation scenario matrix and enforce its gates."""
    from repro import adapters
    from repro.perturb import FAMILY_NAMES, SEVERITIES
    from repro.perturb.bench import (
        evaluate_robustness_gates,
        render_report,
        run_robustness_bench,
        write_report,
    )

    domains = tuple(args.domain) if args.domain else adapters.list_adapters()
    families = tuple(dict.fromkeys(args.family)) if args.family else FAMILY_NAMES
    severities = (
        tuple(dict.fromkeys(args.severity)) if args.severity else SEVERITIES
    )
    systems = tuple(dict.fromkeys(args.system)) if args.system else ("valuenet",)
    report, run_report = run_robustness_bench(
        domains=domains,
        systems=systems,
        families=families,
        severities=severities,
        seed=args.seed,
        scale=args.scale,
        dev_limit=args.dev_limit or None,
        workers=args.workers,
        cache_dir=None if args.no_cache else args.cache_dir,
        fault_schedule=args.fault_schedule,
    )
    print(render_report(report))
    if args.out:
        path = write_report(report, args.out)
        print(f"report written to {path}", file=sys.stderr)
    if args.timings:
        print(run_report.render(), file=sys.stderr)
    failures = evaluate_robustness_gates(
        report,
        max_degradation=args.assert_max_degradation,
        assert_invariant=args.assert_invariant,
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _diff_exec(args) -> int:
    """Differentially execute query sets on the engine and a backend.

    Gold splits (seed+dev) run against bare adapter-built domains — no
    synthesis.  Asking for the silver split builds the domains through the
    suite so the Synth artifact is materialised (and cached).  Exit 1 when
    any query diverges, 2 on usage errors, 0 on full agreement.
    """
    from repro import adapters
    from repro.engine.diffexec import (
        ALL_SPLITS,
        GOLD_SPLITS,
        run_diff_exec,
        run_three_way,
        write_reports,
    )

    splits = {"gold": GOLD_SPLITS, "silver": ("synth",), "all": ALL_SPLITS}[
        args.splits
    ]
    names = list(args.domain or adapters.list_adapters())
    suite = _build_suite(args) if "synth" in splits else None
    config = suite.config if suite is not None else _config_for(args)

    reports = []
    for name in names:
        if suite is not None:
            domain = suite.domain(name)
        else:
            domain = adapters.get_adapter(name).build(scale=config.domain_scale)
        if args.backend == "all":
            new_reports = run_three_way(domain, splits=splits)
        else:
            new_reports = [
                run_diff_exec(domain, backend=args.backend, splits=splits)
            ]
        for report in new_reports:
            print(report.render())
        reports.extend(new_reports)
    if args.out:
        path = write_reports(reports, args.out)
        print(f"report written to {path}", file=sys.stderr)
    if suite is not None and args.timings:
        print(suite.runtime.report.render(), file=sys.stderr)
    return 0 if all(report.agreed for report in reports) else 1


def _engine_bench(args) -> int:
    """Benchmark the execution engines on bare gold domains."""
    from repro import adapters
    from repro.engine.bench import (
        evaluate_engine_gates,
        render_report,
        run_engine_bench,
        write_report,
    )

    config = _config_for(args)
    names = list(args.domain or adapters.list_adapters())
    domains = {
        name: adapters.get_adapter(name).build(scale=config.domain_scale)
        for name in names
    }
    report = run_engine_bench(
        domains, workload=args.workload, repeat=args.repeat
    )
    print(render_report(report))
    failures = evaluate_engine_gates(
        report,
        assert_speedup=args.assert_speedup,
        assert_identical=args.assert_identical,
    )
    if args.out:
        path = write_report(report, args.out)
        print(f"report written to {path}", file=sys.stderr)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _explain(args) -> int:
    """Plan one query with the vector engine and print the costed tree."""
    from repro import adapters
    from repro.engine.vector import VectorEngine
    from repro.sql import parse

    if not args.domain or len(args.domain) != 1:
        print("explain requires exactly one --domain", file=sys.stderr)
        return 2
    config = _config_for(args)
    domain = adapters.get_adapter(args.domain[0]).build(
        scale=config.domain_scale
    )
    engine = VectorEngine(domain.database)
    print(engine.explain(parse(args.sql), args.sql))
    return 0


def _stats(suite) -> int:
    from repro.experiments.tasks import CORPUS_TASK, domain_task

    suite.ensure(
        [CORPUS_TASK, *(domain_task(name) for name in suite.domain_names())]
    )
    for name, domain in suite.domains().items():
        print(f"{name}:")
        for split in (domain.seed, domain.dev, domain.synth):
            if split is None:
                continue
            print(f"  {split.name:16s} {len(split):5d} {split.hardness_counts()}")
    corpus = suite.corpus
    print("minispider:")
    for split in (corpus.train, corpus.dev):
        print(f"  {split.name:16s} {len(split):5d} {split.hardness_counts()}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
