"""ScienceBenchmark datasets: the three scientific domains and containers.

The domain modules (``cordis``, ``sdss``, ``oncomx``) and ``generators``
load lazily: importing this package no longer pulls in all three domains,
so a run that only touches one domain (resolved through the
:mod:`repro.adapters` registry) imports only that module.
"""

import importlib

from repro.datasets.programs import Program, expand_programs
from repro.datasets.records import BenchmarkDomain, NLSQLPair, Split

_LAZY_MODULES = ("cordis", "sdss", "oncomx", "generators")

__all__ = [
    "cordis",
    "sdss",
    "oncomx",
    "generators",
    "BenchmarkDomain",
    "NLSQLPair",
    "Split",
    "Program",
    "expand_programs",
]


def __getattr__(name):
    if name in _LAZY_MODULES:
        module = importlib.import_module(f"{__name__}.{name}")
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY_MODULES))
