"""ScienceBenchmark datasets: the three scientific domains and containers."""

from repro.datasets import cordis, generators, oncomx, sdss
from repro.datasets.programs import Program, expand_programs
from repro.datasets.records import BenchmarkDomain, NLSQLPair, Split

__all__ = [
    "cordis",
    "sdss",
    "oncomx",
    "generators",
    "BenchmarkDomain",
    "NLSQLPair",
    "Split",
    "Program",
    "expand_programs",
]
