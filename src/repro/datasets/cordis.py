"""CORDIS — the research-policy-making domain of ScienceBenchmark.

The Community Research and Development Information Service database holds
the EU's research-funding record: projects, the institutions and people
behind them, funding schemes, framework programmes, thematic topics and the
NUTS territorial-unit hierarchy — all expressed in the EU's enigmatic
administrative vocabulary that the paper highlights (e.g. "NUTS").

We rebuild the version-2022-08 structure the paper reports: 19 tables and 82
columns, populated with synthetic but referentially consistent funding data.
Nominal (paper-scale) statistics for Table 1: 671 K rows, 35 K rows/table
average, 1 GB.
"""

from __future__ import annotations

import random

from repro.datasets import generators as gen
from repro.datasets.programs import Program, expand_programs
from repro.datasets.records import BenchmarkDomain, Split
from repro.engine.database import Database, create_database
from repro.nlgen.lexicon import DomainLexicon
from repro.schema.enhanced import EnhancedSchema
from repro.schema.introspect import profile_database
from repro.schema.model import Column, ColumnType, ForeignKey, Schema, TableDef

I = ColumnType.INTEGER
F = ColumnType.REAL
T = ColumnType.TEXT
D = ColumnType.DATE

#: Paper-reported full-scale statistics (Table 1).
NOMINAL_STATS = {
    "tables": 19,
    "columns": 82,
    "rows": 671_000,
    "avg_rows_per_table": 35_355,
    "size_gb": 1.0,
}

FRAMEWORK_PROGRAMS = ("H2020", "FP7", "HORIZON", "FP6")
FUNDING_SCHEMES = (
    ("ERC-STG", "ERC Starting Grant"),
    ("ERC-ADG", "ERC Advanced Grant"),
    ("MSCA-IF", "Marie Sklodowska-Curie Individual Fellowship"),
    ("RIA", "Research and Innovation Action"),
    ("IA", "Innovation Action"),
    ("CSA", "Coordination and Support Action"),
    ("SME-2", "SME Instrument Phase 2"),
    ("MSCA-ITN", "Marie Sklodowska-Curie Innovative Training Network"),
)
ACTIVITY_TYPES = (
    ("HES", "Higher or Secondary Education Establishments"),
    ("REC", "Research Organisations"),
    ("PRC", "Private for-profit entities"),
    ("PUB", "Public bodies"),
    ("OTH", "Other"),
)
MEMBER_ROLES = (
    ("coordinator", "Project coordinator"),
    ("participant", "Project participant"),
    ("thirdParty", "Third party"),
)
COUNTRIES = (
    ("Germany", "DE"), ("France", "FR"), ("Italy", "IT"), ("Spain", "ES"),
    ("Netherlands", "NL"), ("Belgium", "BE"), ("Switzerland", "CH"),
    ("Austria", "AT"), ("Greece", "EL"), ("Sweden", "SE"), ("Poland", "PL"),
    ("Portugal", "PT"), ("Denmark", "DK"), ("Finland", "FI"), ("Ireland", "IE"),
    ("Norway", "NO"), ("Czechia", "CZ"), ("Hungary", "HU"), ("Romania", "RO"),
    ("United Kingdom", "UK"),
)
SUBJECT_AREAS = (
    ("INF", "Information and Media"),
    ("BIO", "Biotechnology"),
    ("ENE", "Energy"),
    ("ENV", "Environment"),
    ("MAT", "Materials"),
    ("NUC", "Nuclear Fission"),
    ("TRA", "Transport"),
    ("SOC", "Social and Economic Concerns"),
)
ERC_DOMAINS = (
    ("PE", "Physical Sciences and Engineering"),
    ("LS", "Life Sciences"),
    ("SH", "Social Sciences and Humanities"),
)
ERC_PANELS = (
    ("PE1", "Mathematics", "PE"),
    ("PE6", "Computer Science and Informatics", "PE"),
    ("PE9", "Universe Sciences", "PE"),
    ("LS2", "Genetics, Genomics, Bioinformatics", "LS"),
    ("LS4", "Physiology, Pathophysiology and Endocrinology", "LS"),
    ("SH1", "Individuals, Markets and Organisations", "SH"),
    ("SH2", "Institutions, Values, Environment and Space", "SH"),
)
PROJECT_STATUS = ("SIGNED", "CLOSED", "TERMINATED")


def build_schema() -> Schema:
    """The 19-table / 82-column CORDIS schema."""
    tables = (
        TableDef(
            "countries",
            (
                Column("unics_id", I, alias="country id", nullable=False),
                Column("country_name", T, alias="country name"),
                Column("country_code2", T, alias="two letter country code"),
                Column("country_code3", T, alias="three letter country code"),
                Column("geocode_region", T, alias="geocode region"),
            ),
            primary_key="unics_id",
            alias="country",
        ),
        TableDef(
            "eu_territorial_units",
            (
                Column("geocode_regions", T, alias="geocode region code", nullable=False),
                Column("description", T, alias="territorial unit description"),
                Column("geocode_level", I, alias="geocode level"),
                Column("nuts_version", T, alias="NUTS version"),
            ),
            primary_key="geocode_regions",
            alias="territorial unit",
        ),
        TableDef(
            "institutions",
            (
                Column("unics_id", I, alias="institution id", nullable=False),
                Column("institution_name", T, alias="institution name"),
                Column("acronym", T, alias="institution acronym"),
                Column("country_id", I, alias="country id"),
                Column("geocode_regions_3", T, alias="NUTS level 3 region"),
                Column("city", T, alias="city"),
                Column("postal_code", T, alias="postal code"),
                Column("website", T, alias="website"),
                Column("activity_type_code", T, alias="activity type code"),
            ),
            primary_key="unics_id",
            alias="institution",
        ),
        TableDef(
            "activity_types",
            (
                Column("code", T, alias="activity type code", nullable=False),
                Column("description", T, alias="activity type description"),
            ),
            primary_key="code",
            alias="activity type",
        ),
        TableDef(
            "ec_framework_programs",
            (
                Column("program_id", I, alias="framework program id", nullable=False),
                Column("program_name", T, alias="framework program name"),
            ),
            primary_key="program_id",
            alias="framework program",
        ),
        TableDef(
            "funding_schemes",
            (
                Column("code", T, alias="funding scheme code", nullable=False),
                Column("title", T, alias="funding scheme title"),
                Column("description", T, alias="funding scheme description"),
            ),
            primary_key="code",
            alias="funding scheme",
        ),
        TableDef(
            "projects",
            (
                Column("unics_id", I, alias="project id", nullable=False),
                Column("acronym", T, alias="project acronym"),
                Column("title", T, alias="project title"),
                Column("ec_call", T, alias="EC call"),
                Column("ec_fund_scheme", T, alias="funding scheme code"),
                Column("framework_program", I, alias="framework program id"),
                Column("start_date", D, alias="start date"),
                Column("end_date", D, alias="end date"),
                Column("start_year", I, alias="start year"),
                Column("end_year", I, alias="end year"),
                Column("duration_months", I, alias="duration in months"),
                Column("total_cost", F, alias="total cost"),
                Column("ec_max_contribution", F, alias="maximum EC contribution"),
                Column("objective", T, alias="project objective"),
                Column("homepage", T, alias="project homepage"),
                Column("status", T, alias="project status"),
                Column("ec_signature_date", D, alias="EC signature date"),
            ),
            primary_key="unics_id",
            alias="project",
        ),
        TableDef(
            "people",
            (
                Column("person_id", I, alias="person id", nullable=False),
                Column("full_name", T, alias="full name"),
                Column("title", T, alias="person title"),
                Column("project", I, alias="project id"),
            ),
            primary_key="person_id",
            alias="person",
        ),
        TableDef(
            "project_members",
            (
                Column("member_id", I, alias="member id", nullable=False),
                Column("project", I, alias="project id"),
                Column("institution_id", I, alias="institution id"),
                Column("member_name", T, alias="member name"),
                Column("activity_type", T, alias="activity type code"),
                Column("country_id", I, alias="country id"),
                Column("city", T, alias="member city"),
                Column("member_role", T, alias="member role"),
                Column("ec_contribution", F, alias="EC contribution"),
                Column("geocode_regions_3", T, alias="NUTS level 3 region"),
            ),
            primary_key="member_id",
            alias="project member",
        ),
        TableDef(
            "project_member_roles",
            (
                Column("code", T, alias="member role code", nullable=False),
                Column("description", T, alias="member role description"),
            ),
            primary_key="code",
            alias="project member role",
        ),
        TableDef(
            "topics",
            (
                Column("code", T, alias="topic code", nullable=False),
                Column("title", T, alias="topic title"),
                Column("rcn", I, alias="record control number"),
                Column("description", T, alias="topic description"),
            ),
            primary_key="code",
            alias="topic",
        ),
        TableDef(
            "project_topics",
            (
                Column("project", I, alias="project id"),
                Column("topic", T, alias="topic code"),
            ),
            alias="project topic link",
        ),
        TableDef(
            "subject_areas",
            (
                Column("code", T, alias="subject area code", nullable=False),
                Column("title", T, alias="subject area title"),
                Column("description", T, alias="subject area description"),
            ),
            primary_key="code",
            alias="subject area",
        ),
        TableDef(
            "project_subject_areas",
            (
                Column("project", I, alias="project id"),
                Column("subject_area", T, alias="subject area code"),
            ),
            alias="project subject area link",
        ),
        TableDef(
            "programmes",
            (
                Column("code", T, alias="programme code", nullable=False),
                Column("title", T, alias="programme title"),
                Column("short_name", T, alias="programme short name"),
                Column("rcn", I, alias="record control number"),
            ),
            primary_key="code",
            alias="programme",
        ),
        TableDef(
            "project_programmes",
            (
                Column("project", I, alias="project id"),
                Column("programme", T, alias="programme code"),
            ),
            alias="project programme link",
        ),
        TableDef(
            "erc_research_domains",
            (
                Column("code", T, alias="ERC research domain code", nullable=False),
                Column("description", T, alias="ERC research domain description"),
            ),
            primary_key="code",
            alias="ERC research domain",
        ),
        TableDef(
            "erc_panels",
            (
                Column("code", T, alias="ERC panel code", nullable=False),
                Column("description", T, alias="ERC panel description"),
                Column("part_of", T, alias="parent research domain"),
            ),
            primary_key="code",
            alias="ERC panel",
        ),
        TableDef(
            "project_erc_panels",
            (
                Column("project", I, alias="project id"),
                Column("panel", T, alias="ERC panel code"),
            ),
            alias="project ERC panel link",
        ),
    )
    foreign_keys = (
        ForeignKey("institutions", "country_id", "countries", "unics_id"),
        ForeignKey("institutions", "geocode_regions_3", "eu_territorial_units", "geocode_regions"),
        ForeignKey("institutions", "activity_type_code", "activity_types", "code"),
        ForeignKey("projects", "ec_fund_scheme", "funding_schemes", "code"),
        ForeignKey("projects", "framework_program", "ec_framework_programs", "program_id"),
        ForeignKey("people", "project", "projects", "unics_id"),
        ForeignKey("project_members", "project", "projects", "unics_id"),
        ForeignKey("project_members", "institution_id", "institutions", "unics_id"),
        ForeignKey("project_members", "activity_type", "activity_types", "code"),
        ForeignKey("project_members", "country_id", "countries", "unics_id"),
        ForeignKey("project_members", "member_role", "project_member_roles", "code"),
        ForeignKey("project_members", "geocode_regions_3", "eu_territorial_units", "geocode_regions"),
        ForeignKey("project_topics", "project", "projects", "unics_id"),
        ForeignKey("project_topics", "topic", "topics", "code"),
        ForeignKey("project_subject_areas", "project", "projects", "unics_id"),
        ForeignKey("project_subject_areas", "subject_area", "subject_areas", "code"),
        ForeignKey("project_programmes", "project", "projects", "unics_id"),
        ForeignKey("project_programmes", "programme", "programmes", "code"),
        ForeignKey("erc_panels", "part_of", "erc_research_domains", "code"),
        ForeignKey("project_erc_panels", "project", "projects", "unics_id"),
        ForeignKey("project_erc_panels", "panel", "erc_panels", "code"),
    )
    return Schema(name="cordis", tables=tables, foreign_keys=foreign_keys)


def populate(database: Database, scale: float, rng: random.Random) -> None:
    """Fill the CORDIS instance with synthetic funding data."""
    n_projects = max(80, int(900 * scale))
    n_institutions = max(40, int(300 * scale))
    n_members = max(160, int(2200 * scale))
    n_people = max(60, int(700 * scale))
    n_topics = max(12, int(50 * scale))
    n_regions = max(15, int(60 * scale))
    n_programmes = max(8, int(30 * scale))

    database.insert("activity_types", list(ACTIVITY_TYPES))
    database.insert("project_member_roles", list(MEMBER_ROLES))
    database.insert(
        "ec_framework_programs",
        [(i + 1, name) for i, name in enumerate(FRAMEWORK_PROGRAMS)],
    )
    database.insert(
        "funding_schemes",
        [(code, title, gen.sentence(rng, 8)) for code, title in FUNDING_SCHEMES],
    )
    database.insert(
        "countries",
        [
            (i + 1, name, code, code + "U", f"EU{code}")
            for i, (name, code) in enumerate(COUNTRIES)
        ],
    )
    database.insert(
        "subject_areas",
        [(code, title, gen.sentence(rng, 6)) for code, title in SUBJECT_AREAS],
    )
    database.insert("erc_research_domains", list(ERC_DOMAINS))
    database.insert("erc_panels", list(ERC_PANELS))

    region_codes = []
    for _ in range(n_regions):
        country = rng.choice(COUNTRIES)[1]
        code = f"{country}{rng.randint(1, 9)}{rng.randint(0, 9)}{rng.randint(0, 9)}"
        if code in region_codes:
            continue
        region_codes.append(code)
        database.insert(
            "eu_territorial_units",
            [(code, f"{gen.word(rng, 2).capitalize()} region", 3, "2021")],
        )

    topic_codes = []
    for i in range(n_topics):
        code = f"{rng.choice(['ICT', 'HEALTH', 'ENERGY', 'SPACE', 'FOOD'])}-{i:02d}-{rng.randint(2014, 2022)}"
        topic_codes.append(code)
        database.insert(
            "topics", [(code, gen.title(rng, 5), 600000 + i, gen.sentence(rng, 10))]
        )

    programme_codes = []
    for i in range(n_programmes):
        code = f"H2020-EU.{rng.randint(1, 4)}.{rng.randint(1, 9)}."
        if code in programme_codes:
            code = f"{code}{i}"
        programme_codes.append(code)
        database.insert(
            "programmes",
            [(code, gen.title(rng, 4), gen.acronym(rng, 5), 660000 + i)],
        )

    institution_ids = []
    for i in range(n_institutions):
        inst_id = 9000 + i
        institution_ids.append(inst_id)
        kind = gen.skewed_choice(rng, ["University of", "Institute of", "Centre for", ""])
        name = f"{kind} {gen.title(rng, 2)}".strip()
        database.insert(
            "institutions",
            [
                (
                    inst_id,
                    name,
                    gen.acronym(rng, rng.randint(3, 5)),
                    rng.randint(1, len(COUNTRIES)),
                    rng.choice(region_codes),
                    gen.word(rng, 2).capitalize(),
                    f"{rng.randint(1000, 99999)}",
                    f"https://www.{gen.word(rng, 2)}.eu",
                    gen.skewed_choice(rng, [c for c, _ in ACTIVITY_TYPES]),
                )
            ],
        )

    project_ids = []
    project_rows = []
    for i in range(n_projects):
        project_id = 100000 + i
        project_ids.append(project_id)
        start_year = rng.randint(2008, 2022)
        duration = rng.choice([24, 36, 48, 60])
        end_year = start_year + duration // 12
        total_cost = round(gen.lognormal_int(rng, 2_000_000, 0.9, lo=50_000), 2)
        contribution = round(total_cost * rng.uniform(0.5, 1.0), 2)
        framework = gen.skewed_choice(rng, list(range(1, len(FRAMEWORK_PROGRAMS) + 1)), alpha=1.0)
        scheme = gen.skewed_choice(rng, [c for c, _ in FUNDING_SCHEMES], alpha=1.0)
        project_rows.append(
            (
                project_id,
                gen.acronym(rng, rng.randint(4, 7)),
                gen.title(rng, rng.randint(4, 7)),
                f"{FRAMEWORK_PROGRAMS[framework - 1]}-{gen.acronym(rng, 3)}-{start_year}",
                scheme,
                framework,
                f"{start_year:04d}-{rng.randint(1, 12):02d}-01",
                f"{end_year:04d}-{rng.randint(1, 12):02d}-28",
                start_year,
                end_year,
                duration,
                float(total_cost),
                float(contribution),
                gen.sentence(rng, rng.randint(20, 60)),
                f"https://project-{gen.word(rng, 2)}.eu",
                gen.skewed_choice(rng, list(PROJECT_STATUS), alpha=1.0),
                f"{start_year - 1:04d}-{rng.randint(1, 12):02d}-15",
            )
        )
    database.insert("projects", project_rows)

    people_rows = []
    for i in range(n_people):
        people_rows.append(
            (
                40000 + i,
                gen.person_name(rng),
                gen.skewed_choice(rng, ["Dr.", "Prof.", "Ms.", "Mr."]),
                rng.choice(project_ids),
            )
        )
    database.insert("people", people_rows)

    member_rows = []
    for i in range(n_members):
        inst = rng.choice(institution_ids)
        member_rows.append(
            (
                500000 + i,
                rng.choice(project_ids),
                inst,
                gen.title(rng, 2),
                gen.skewed_choice(rng, [c for c, _ in ACTIVITY_TYPES]),
                rng.randint(1, len(COUNTRIES)),
                gen.word(rng, 2).capitalize(),
                gen.skewed_choice(rng, [c for c, _ in MEMBER_ROLES], alpha=1.0),
                round(gen.lognormal_int(rng, 300_000, 1.0, lo=10_000) * 1.0, 2),
                rng.choice(region_codes),
            )
        )
    database.insert("project_members", member_rows)

    link_rows = set()
    for project_id in project_ids:
        for topic in rng.sample(topic_codes, k=min(len(topic_codes), rng.randint(1, 3))):
            link_rows.add((project_id, topic))
    database.insert("project_topics", sorted(link_rows))

    subject_links = set()
    for project_id in project_ids:
        for code in rng.sample([c for c, _ in SUBJECT_AREAS], k=rng.randint(1, 2)):
            subject_links.add((project_id, code))
    database.insert("project_subject_areas", sorted(subject_links))

    programme_links = set()
    for project_id in project_ids:
        programme_links.add((project_id, rng.choice(programme_codes)))
    database.insert("project_programmes", sorted(programme_links))

    panel_links = set()
    for project_id in rng.sample(project_ids, k=max(1, len(project_ids) // 3)):
        panel_links.add((project_id, rng.choice([c for c, _, _ in ERC_PANELS])))
    database.insert("project_erc_panels", sorted(panel_links))


def build_lexicon() -> DomainLexicon:
    """Research-policy phrasing used by domain experts."""
    lex = DomainLexicon(name="cordis")
    lex.add_table("projects", "projects", "EU projects", "funded projects")
    lex.add_table("institutions", "institutions", "organisations")
    lex.add_table("project_members", "project members", "participants")
    lex.add_table("countries", "countries")
    lex.add_table("people", "people", "researchers")
    lex.add_table("topics", "topics", "call topics")
    lex.add_table("subject_areas", "subject areas")
    lex.add_table("funding_schemes", "funding schemes")
    lex.add_table("ec_framework_programs", "framework programs", "framework programmes")
    lex.add_table("eu_territorial_units", "territorial units", "NUTS regions")
    lex.add_table("erc_panels", "ERC panels")

    lex.add_column("projects", "total_cost", "total cost", "overall budget")
    lex.add_column("projects", "ec_max_contribution", "maximum EC contribution", "EU funding")
    lex.add_column("projects", "start_year", "start year")
    lex.add_column("projects", "end_year", "end year")
    lex.add_column("projects", "acronym", "acronym", "project acronym")
    lex.add_column("projects", "title", "title", "project title")
    lex.add_column("projects", "objective", "objective", "project objective")
    lex.add_column("projects", "ec_fund_scheme", "funding scheme")
    lex.add_column("projects", "duration_months", "duration in months")
    lex.add_column("institutions", "institution_name", "institution name", "name")
    lex.add_column("institutions", "geocode_regions_3", "NUTS level 3 region")
    lex.add_column("project_members", "ec_contribution", "EC contribution", "EU contribution")
    lex.add_column("project_members", "member_role", "member role", "role")
    lex.add_column("countries", "country_name", "country name")
    lex.add_column("eu_territorial_units", "geocode_level", "geocode level", "NUTS level")

    for name, _code in COUNTRIES:
        lex.add_value("countries", "country_name", name, name)
    for code, title in FUNDING_SCHEMES:
        lex.add_value("projects", "ec_fund_scheme", code, title, code)
    for _i, name in enumerate(FRAMEWORK_PROGRAMS):
        lex.add_value("ec_framework_programs", "program_name", name, name)
    for code, desc in ACTIVITY_TYPES:
        lex.add_value("institutions", "activity_type_code", code, desc, code)
        lex.add_value("project_members", "activity_type", code, desc, code)
    for code, desc in MEMBER_ROLES:
        lex.add_value("project_members", "member_role", code, desc, code)
    return lex


def _question_programs() -> list[Program]:
    """The expert question catalogue for CORDIS (seed + dev)."""
    return [
        Program(
            nl=(
                "Find the titles of projects funded under the {scheme} scheme.",
                "What are the project titles financed via the {scheme} funding scheme?",
            ),
            sql="SELECT title FROM projects WHERE ec_fund_scheme = '{scheme}'",
            params={"scheme": ("ERC-STG", "MSCA-IF", "RIA", "IA", "CSA", "ERC-ADG")},
        ),
        Program(
            nl=(
                "How many projects started in {year}?",
                "Count the EU projects with start year {year}.",
            ),
            sql="SELECT COUNT(*) FROM projects WHERE start_year = {year}",
            params={"year": (2015, 2018, 2020, 2012, 2021, 2016)},
        ),
        Program(
            nl=(
                "What is the total cost and maximum EC contribution of projects with status {status} that started in {year}?",
                "Show the overall budget and EU funding for {status} projects with start year {year}.",
            ),
            sql=(
                "SELECT total_cost, ec_max_contribution FROM projects "
                "WHERE start_year = {year} AND status = '{status}'"
            ),
            params={
                "year": (2016, 2019, 2014, 2021),
                "status": ("SIGNED", "CLOSED", "SIGNED", "CLOSED"),
            },
        ),
        Program(
            nl=(
                "What is the average total cost of projects for each funding scheme code?",
                "Compute the mean total cost per funding scheme.",
            ),
            sql="SELECT AVG(total_cost), ec_fund_scheme FROM projects GROUP BY ec_fund_scheme",
            params={},
        ),
        Program(
            nl=(
                "Find the number of projects for each start year.",
                "How many projects are there per start year?",
            ),
            sql="SELECT COUNT(*), start_year FROM projects GROUP BY start_year",
            params={},
        ),
        Program(
            nl=(
                "Find the acronyms of projects whose total cost is greater than {cost}.",
                "Which project acronyms have an overall budget above {cost}?",
            ),
            sql="SELECT acronym FROM projects WHERE total_cost > {cost}",
            params={"cost": (5000000, 10000000, 2000000, 8000000, 1000000, 3000000)},
        ),
        Program(
            nl=(
                "What are the institution names located in {country}?",
                "List the names of organisations based in {country}.",
            ),
            sql=(
                "SELECT T1.institution_name FROM institutions AS T1 "
                "JOIN countries AS T2 ON T1.country_id = T2.unics_id "
                "WHERE T2.country_name = '{country}'"
            ),
            params={
                "country": ("Germany", "France", "Switzerland", "Italy", "Spain", "Greece"),
            },
        ),
        Program(
            nl=(
                "Count the institutions for each activity type code.",
                "How many institutions are there per activity type?",
            ),
            sql="SELECT COUNT(*), activity_type_code FROM institutions GROUP BY activity_type_code",
            params={},
        ),
        Program(
            nl=(
                "Find the member names of project members with member role {role}.",
                "Who are the participants whose role is {role}?",
            ),
            sql="SELECT member_name FROM project_members WHERE member_role = '{role}'",
            params={"role": ("coordinator", "participant", "thirdParty", "coordinator")},
        ),
        Program(
            nl=(
                "What is the average EC contribution of project members for each member role?",
                "Compute the mean EC contribution per member role.",
            ),
            sql=(
                "SELECT AVG(ec_contribution), member_role FROM project_members "
                "GROUP BY member_role"
            ),
            params={},
        ),
        Program(
            nl=(
                "Find the titles of projects with maximum EC contribution above the average maximum EC contribution.",
                "Which projects receive more EU funding than the average maximum EC contribution?",
            ),
            sql=(
                "SELECT title FROM projects WHERE ec_max_contribution > "
                "(SELECT AVG(ec_max_contribution) FROM projects)"
            ),
            params={},
        ),
        Program(
            nl=(
                "Find the project titles under the framework program {fp}.",
                "List the titles of projects belonging to the {fp} framework programme.",
            ),
            sql=(
                "SELECT T1.title FROM projects AS T1 "
                "JOIN ec_framework_programs AS T2 ON T1.framework_program = T2.program_id "
                "WHERE T2.program_name = '{fp}'"
            ),
            params={"fp": ("H2020", "FP7", "HORIZON", "FP6")},
        ),
        Program(
            nl=(
                "How many projects are there for each framework program name?",
                "Count projects per framework programme.",
            ),
            sql=(
                "SELECT COUNT(*), T2.program_name FROM projects AS T1 "
                "JOIN ec_framework_programs AS T2 ON T1.framework_program = T2.program_id "
                "GROUP BY T2.program_name"
            ),
            params={},
        ),
        Program(
            nl=(
                "Find the project with the highest total cost.",
                "Which project has the largest overall budget?",
            ),
            sql="SELECT acronym FROM projects ORDER BY total_cost DESC LIMIT 1",
            params={},
            only="seed",
        ),
        Program(
            nl=(
                "List the {k} projects with the highest maximum EC contribution.",
                "Return the top {k} projects by EU funding.",
            ),
            sql="SELECT acronym FROM projects ORDER BY ec_max_contribution DESC LIMIT {k}",
            params={"k": (5, 10, 3, 20)},
        ),
        Program(
            nl=(
                "Find the titles of topics whose code contains {needle}.",
                "Which call topics have a code containing {needle}?",
            ),
            sql="SELECT title FROM topics WHERE code LIKE '%{needle}%'",
            params={"needle": ("ICT", "HEALTH", "ENERGY", "SPACE")},
        ),
        Program(
            nl=(
                "Find the descriptions of the territorial units with geocode level {level}.",
                "Show the description of NUTS regions at geocode level {level}.",
            ),
            sql="SELECT description FROM eu_territorial_units WHERE geocode_level = {level}",
            params={"level": (3, 3, 3, 3)},
            only="seed",
        ),
        Program(
            nl=(
                "Find the full names of people working on the project with project id {pid}.",
                "List the researchers involved in project {pid}.",
            ),
            sql="SELECT full_name FROM people WHERE project = {pid}",
            params={"pid": (100005, 100010, 100003, 100020, 100001, 100015)},
        ),
        Program(
            nl=(
                "Find the ERC panel descriptions that are part of the research domain {domain}.",
                "Which ERC panels belong to the {domain} domain?",
            ),
            sql="SELECT description FROM erc_panels WHERE part_of = '{domain}'",
            params={"domain": ("PE", "LS", "SH", "PE")},
        ),
        Program(
            nl=(
                "Find the project acronyms assigned to the ERC panel {panel}.",
                "List the acronyms of projects evaluated in ERC panel {panel}.",
            ),
            sql=(
                "SELECT T1.acronym FROM projects AS T1 "
                "JOIN project_erc_panels AS T2 ON T2.project = T1.unics_id "
                "WHERE T2.panel = '{panel}'"
            ),
            params={"panel": ("PE6", "LS2", "SH1", "PE1")},
        ),
        Program(
            nl=(
                "Count the project members for each activity type code.",
                "How many participants are there per activity type?",
            ),
            sql=(
                "SELECT COUNT(*), activity_type FROM project_members "
                "GROUP BY activity_type"
            ),
            params={},
        ),
        # -- shared medium programs ------------------------------------------
        Program(
            nl=(
                "Find the acronym and title of projects with status {status}.",
                "List acronym together with title for projects whose status is {status}.",
            ),
            sql="SELECT acronym, title FROM projects WHERE status = '{status}'",
            params={"status": ("SIGNED", "CLOSED", "TERMINATED", "SIGNED", "CLOSED", "TERMINATED")},
        ),
        Program(
            nl=(
                "Find the start year and end year of projects with duration in months equal to {d}.",
                "Show start and end year for projects lasting {d} months.",
            ),
            sql="SELECT start_year, end_year FROM projects WHERE duration_months = {d}",
            params={"d": (36, 48, 24, 60, 36, 48)},
        ),
        Program(
            nl=(
                "What is the maximum and minimum total cost of projects that started in {year}?",
                "Find the largest and smallest overall budget among projects with start year {year}.",
            ),
            sql="SELECT MAX(total_cost), MIN(total_cost) FROM projects WHERE start_year = {year}",
            params={"year": (2015, 2018, 2020, 2016)},
        ),
        Program(
            nl=(
                "Find the institution name and city of institutions with activity type code {at}.",
                "List name and city for organisations of activity type {at}.",
            ),
            sql=(
                "SELECT institution_name, city FROM institutions "
                "WHERE activity_type_code = '{at}'"
            ),
            params={"at": ("HES", "REC", "PRC", "PUB")},
        ),
        Program(
            nl=(
                "What is the total EC contribution of project members from {country}?",
                "Sum the EC contribution over participants located in {country}.",
            ),
            sql=(
                "SELECT SUM(T1.ec_contribution) FROM project_members AS T1 "
                "JOIN countries AS T2 ON T1.country_id = T2.unics_id "
                "WHERE T2.country_name = '{country}'"
            ),
            params={"country": ("Germany", "France", "Italy", "Netherlands")},
        ),
        Program(
            nl=(
                "Find the number of distinct funding scheme codes used by projects.",
                "How many different funding schemes appear among the projects?",
            ),
            sql="SELECT COUNT(DISTINCT ec_fund_scheme) FROM projects",
            params={},
            only="seed",
        ),
        # -- seed-only extra-hard -----------------------------------------------
        Program(
            nl=(
                "For each funding scheme, find the scheme code and average total cost of projects starting after {year}, keeping schemes with more than {n} projects, ordered by average cost descending.",
                "",
            ),
            sql=(
                "SELECT ec_fund_scheme, AVG(total_cost) FROM projects "
                "WHERE start_year > {year} GROUP BY ec_fund_scheme "
                "HAVING COUNT(*) > {n} ORDER BY AVG(total_cost) DESC"
            ),
            params={"year": (2014, 2016, 2010, 2018), "n": (5, 10, 3, 8)},
            only="seed",
        ),
        Program(
            nl=(
                "Find the acronyms and total cost of projects coordinated by institutions from {country} whose total cost exceeds {cost}.",
                "",
            ),
            sql=(
                "SELECT T1.acronym, T1.total_cost FROM projects AS T1 "
                "JOIN project_members AS T2 ON T2.project = T1.unics_id "
                "JOIN countries AS T3 ON T2.country_id = T3.unics_id "
                "WHERE T3.country_name = '{country}' AND T2.member_role = 'coordinator' "
                "AND T1.total_cost > {cost}"
            ),
            params={
                "country": ("Germany", "France", "Spain", "Italy"),
                "cost": (1000000, 2000000, 500000, 3000000),
            },
            only="seed",
        ),
        Program(
            nl=(
                "Find the titles of projects that are funded under the scheme {s1} as well as projects whose maximum EC contribution is above {c}.",
                "",
            ),
            sql=(
                "SELECT title FROM projects WHERE ec_fund_scheme = '{s1}' "
                "UNION SELECT title FROM projects WHERE ec_max_contribution > {c}"
            ),
            params={
                "s1": ("ERC-STG", "MSCA-IF", "CSA", "RIA"),
                "c": (8000000, 5000000, 10000000, 6000000),
            },
            only="seed",
        ),
        Program(
            nl=(
                "Find the project acronyms whose EC contribution by some member is larger than the average EC contribution of all project members, for projects that started in {year}.",
                "",
            ),
            sql=(
                "SELECT T1.acronym FROM projects AS T1 "
                "JOIN project_members AS T2 ON T2.project = T1.unics_id "
                "WHERE T1.start_year = {year} AND T2.ec_contribution > "
                "(SELECT AVG(ec_contribution) FROM project_members)"
            ),
            params={"year": (2015, 2018, 2020, 2012)},
            only="seed",
        ),
        # -- dev-only hard/extra -------------------------------------------------
        Program(
            nl=(
                "",
                "For each country name, count the project members with role {role}, keeping countries with more than {n} such members, ordered by the count descending.",
            ),
            sql=(
                "SELECT T2.country_name, COUNT(*) FROM project_members AS T1 "
                "JOIN countries AS T2 ON T1.country_id = T2.unics_id "
                "WHERE T1.member_role = '{role}' GROUP BY T2.country_name "
                "HAVING COUNT(*) > {n} ORDER BY COUNT(*) DESC"
            ),
            params={"role": ("coordinator", "participant", "thirdParty", "coordinator"), "n": (2, 10, 1, 5)},
            only="dev",
        ),
        Program(
            nl=(
                "",
                "Which project titles belong to projects funded under {scheme} whose total cost is above {cost} and that started after {year}?",
            ),
            sql=(
                "SELECT title FROM projects WHERE ec_fund_scheme = '{scheme}' "
                "AND total_cost > {cost} AND start_year > {year}"
            ),
            params={
                "scheme": ("RIA", "IA", "ERC-STG", "MSCA-IF"),
                "cost": (1000000, 2000000, 1500000, 500000),
                "year": (2015, 2017, 2013, 2019),
            },
            only="dev",
        ),
        Program(
            nl=(
                "",
                "List the names of institutions that participate in projects of the framework programme {fp} and are located in {country}.",
            ),
            sql=(
                "SELECT T1.institution_name FROM institutions AS T1 "
                "JOIN project_members AS T2 ON T2.institution_id = T1.unics_id "
                "JOIN projects AS T3 ON T2.project = T3.unics_id "
                "JOIN ec_framework_programs AS T4 ON T3.framework_program = T4.program_id "
                "JOIN countries AS T5 ON T1.country_id = T5.unics_id "
                "WHERE T4.program_name = '{fp}' AND T5.country_name = '{country}'"
            ),
            params={
                "fp": ("H2020", "FP7", "H2020", "HORIZON"),
                "country": ("Germany", "France", "Netherlands", "Italy"),
            },
            only="dev",
        ),
        Program(
            nl=(
                "",
                "Find the acronyms of projects whose ids appear among the projects linked to the subject area {area} and whose total cost is below {cost}.",
            ),
            sql=(
                "SELECT acronym FROM projects WHERE unics_id IN "
                "(SELECT project FROM project_subject_areas WHERE subject_area = '{area}') "
                "AND total_cost < {cost}"
            ),
            params={
                "area": ("INF", "BIO", "ENE", "ENV"),
                "cost": (3000000, 5000000, 2000000, 4000000),
            },
            only="dev",
        ),
        Program(
            nl=(
                "",
                "Return the titles of projects funded under {s1}, excluding those that started before {year}.",
            ),
            sql=(
                "SELECT title FROM projects WHERE ec_fund_scheme = '{s1}' "
                "EXCEPT SELECT title FROM projects WHERE start_year < {year}"
            ),
            params={"s1": ("RIA", "CSA", "IA", "ERC-ADG"), "year": (2016, 2018, 2015, 2019)},
            only="dev",
        ),
        Program(
            nl=(
                "",
                "For each start year after {year}, report the year and the summed total cost, ordered by the summed cost in descending order, limited to the top {k} years.",
            ),
            sql=(
                "SELECT start_year, SUM(total_cost) FROM projects "
                "WHERE start_year > {year} GROUP BY start_year "
                "ORDER BY SUM(total_cost) DESC LIMIT {k}"
            ),
            params={"year": (2010, 2014, 2012, 2016), "k": (3, 5, 2, 4)},
            only="dev",
        ),
        Program(
            nl=(
                "",
                "Which institutions participate with an EC contribution greater than the average EC contribution of all project members?",
            ),
            sql=(
                "SELECT T1.institution_name FROM institutions AS T1 "
                "JOIN project_members AS T2 ON T2.institution_id = T1.unics_id "
                "WHERE T2.ec_contribution > (SELECT AVG(ec_contribution) FROM project_members)"
            ),
            params={},
            only="dev",
        ),
        Program(
            nl=(
                "",
                "Find the topic titles of topics attached to projects that started in {year}.",
            ),
            sql=(
                "SELECT T1.title FROM topics AS T1 "
                "JOIN project_topics AS T2 ON T2.topic = T1.code "
                "JOIN projects AS T3 ON T2.project = T3.unics_id "
                "WHERE T3.start_year = {year}"
            ),
            params={"year": (2015, 2019, 2021, 2017)},
            only="dev",
        ),
        Program(
            nl=(
                "Find the subject area titles and their codes.",
                "List every subject area code together with its title.",
            ),
            sql="SELECT code, title FROM subject_areas",
            params={"pad": (1, 2)},
        ),
        Program(
            nl=(
                "Find the programme titles whose short name contains {needle}.",
                "Which programme titles have a short name containing {needle}?",
            ),
            sql="SELECT title FROM programmes WHERE short_name LIKE '%{needle}%'",
            params={"needle": ("A", "E", "O", "R")},
        ),
        Program(
            nl=(
                "How many people work on EU projects, for each person title?",
                "Count the researchers per person title.",
            ),
            sql="SELECT COUNT(*), title FROM people GROUP BY title",
            params={},
        ),
        Program(
            nl=(
                "Find the member city and EC contribution of project members whose EC contribution is above {c}.",
                "Show city and EU contribution for participants contributing more than {c}.",
            ),
            sql=(
                "SELECT city, ec_contribution FROM project_members "
                "WHERE ec_contribution > {c}"
            ),
            params={"c": (500000, 1000000, 200000, 800000, 300000, 600000)},
        ),
        Program(
            nl=(
                "What is the minimum duration in months of projects funded under {scheme}?",
                "Find the shortest project duration for the {scheme} scheme.",
            ),
            sql=(
                "SELECT MIN(duration_months) FROM projects WHERE ec_fund_scheme = '{scheme}'"
            ),
            params={"scheme": ("RIA", "CSA", "ERC-STG", "IA")},
        ),
        Program(
            nl=(
                "Find the EC call of projects that ended in {year}.",
                "Which EC calls belong to projects with end year {year}?",
            ),
            sql="SELECT ec_call FROM projects WHERE end_year = {year}",
            params={"year": (2018, 2021, 2016, 2023, 2019, 2020)},
        ),
        Program(
            nl=(
                "Find the country names and two letter country codes of all countries.",
                "List every country name with its two letter code.",
            ),
            sql="SELECT country_name, country_code2 FROM countries",
            params={"pad": (1, 2)},
        ),
        Program(
            nl=(
                "Find the acronym of projects whose project objective contains {needle}.",
                "Which project acronyms have an objective containing {needle}?",
            ),
            sql="SELECT acronym FROM projects WHERE objective LIKE '%{needle}%'",
            params={"needle": ("an", "el", "ra", "or")},
        ),
    ]


def build(scale: float = 1.0, seed: int = 29) -> BenchmarkDomain:
    """Construct the full CORDIS benchmark domain."""
    rng = random.Random(seed)
    schema = build_schema()
    database = create_database(schema)
    populate(database, scale, rng)

    enhanced = profile_database(database)
    _refine_enhanced(enhanced)
    lexicon = build_lexicon()

    seed_pairs, dev_pairs = expand_programs(_question_programs(), db_id="cordis")
    return BenchmarkDomain(
        name="cordis",
        database=database,
        enhanced=enhanced,
        lexicon=lexicon,
        seed=Split(name="cordis-seed", pairs=seed_pairs),
        dev=Split(name="cordis-dev", pairs=dev_pairs),
        nominal_stats=dict(NOMINAL_STATS),
    )


def _refine_enhanced(enhanced: EnhancedSchema) -> None:
    """The domain experts' one-shot manual refinement (Section 3.3.2)."""
    enhanced.mark_non_aggregatable("projects", "start_year", "end_year", "framework_program")
    enhanced.mark_categorical(
        "projects", "ec_fund_scheme", "status", "start_year", "end_year", "duration_months"
    )
    enhanced.mark_categorical("institutions", "activity_type_code")
    enhanced.mark_categorical("project_members", "member_role", "activity_type")
    enhanced.mark_categorical("eu_territorial_units", "geocode_level")
    enhanced.mark_categorical("erc_panels", "part_of")
    enhanced.mark_math_group("projects", "projects:money", "total_cost", "ec_max_contribution")
