"""Deterministic synthetic-data primitives shared by all database builders.

Real CORDIS/SDSS/OncoMX content is not available offline; these helpers
fabricate value distributions with the properties the benchmark exercises:
skewed categorical columns, heavy-tailed numeric measurements, plausible
names/titles, ISO dates, and referentially consistent foreign keys.  All
functions are pure given their ``random.Random`` instance.
"""

from __future__ import annotations

import random

_SYLLABLES = [
    "al", "an", "ar", "ba", "bel", "ca", "cor", "da", "del", "el", "fa",
    "gra", "hel", "in", "ka", "lo", "ma", "mi", "na", "or", "pa", "qui",
    "ra", "sa", "ta", "tha", "ul", "va", "wen", "xi", "yo", "zan",
]

_FIRST_NAMES = [
    "Anna", "Bruno", "Carla", "David", "Elena", "Felix", "Greta", "Hugo",
    "Iris", "Jonas", "Katja", "Luca", "Marta", "Nils", "Olga", "Pavel",
    "Rosa", "Stefan", "Tanja", "Viktor",
]

_LAST_NAMES = [
    "Keller", "Moreau", "Rossi", "Novak", "Schmidt", "Costa", "Berg",
    "Dubois", "Fischer", "Garcia", "Horvath", "Jansen", "Kovacs", "Lindt",
    "Meier", "Nilsen", "Olsen", "Petrov", "Richter", "Santos",
]


def word(rng: random.Random, syllables: int = 3) -> str:
    """A pronounceable fabricated word."""
    return "".join(rng.choice(_SYLLABLES) for _ in range(syllables))


def title(rng: random.Random, words: int = 4) -> str:
    """A fabricated title-cased phrase (project titles, paper names)."""
    return " ".join(word(rng, rng.randint(2, 3)).capitalize() for _ in range(words))


def person_name(rng: random.Random) -> str:
    """A plausible first + last name."""
    return f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"


def sentence(rng: random.Random, words: int = 12) -> str:
    """A fabricated descriptive sentence (e.g. CORDIS project objectives)."""
    body = " ".join(word(rng, rng.randint(1, 3)) for _ in range(words))
    return body.capitalize() + "."


def iso_date(rng: random.Random, start_year: int = 2000, end_year: int = 2022) -> str:
    """An ISO-8601 date within [start_year, end_year]."""
    year = rng.randint(start_year, end_year)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"{year:04d}-{month:02d}-{day:02d}"


def skewed_choice(rng: random.Random, values: list, alpha: float = 1.6):
    """Zipf-ish draw: earlier values are exponentially more likely.

    Real categorical columns (galaxy classes, funding schemes, cancer types)
    are heavily skewed; GROUP BY results only look realistic with skew.
    """
    weights = [1.0 / (i + 1) ** alpha for i in range(len(values))]
    return rng.choices(values, weights=weights, k=1)[0]


def lognormal_int(rng: random.Random, median: float, sigma: float = 0.8, lo: int = 0) -> int:
    """Heavy-tailed positive integer around ``median``."""
    value = int(round(rng.lognormvariate(_ln(median), sigma)))
    return max(lo, value)


def bounded_float(rng: random.Random, lo: float, hi: float, digits: int = 4) -> float:
    """A uniform float in [lo, hi], rounded to ``digits``."""
    return round(rng.uniform(lo, hi), digits)


def gauss_float(rng: random.Random, mu: float, sigma: float, digits: int = 4) -> float:
    """A Gaussian float around ``mu``, rounded to ``digits``."""
    return round(rng.gauss(mu, sigma), digits)


def unique_ints(rng: random.Random, n: int, lo: int, hi: int) -> list[int]:
    """``n`` distinct integers in [lo, hi]."""
    if hi - lo + 1 < n:
        raise ValueError("range too small for requested unique count")
    return rng.sample(range(lo, hi + 1), n)


def acronym(rng: random.Random, length: int = 4) -> str:
    """An upper-case acronym of the given length."""
    return "".join(rng.choice("ABCDEFGHIJKLMNOPQRSTUVWXYZ") for _ in range(length))


def _ln(x: float) -> float:
    import math

    if x <= 0:
        raise ValueError("median must be positive")
    return math.log(x)
