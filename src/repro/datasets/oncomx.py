"""OncoMX — the cancer-research domain of ScienceBenchmark.

OncoMX integrates cancer-biomarker knowledge from EDRN and the FDA with
healthy gene expression (Bgee), differential expression between healthy and
cancerous samples (BioXpress) and cancer mutations (BioMuta).  The paper's
version has 25 tables and 106 columns; queries are deliberately of lower
Spider-hardness than the other domains because realistic OncoMX questions
("Show biomarkers for breast cancer") already require multi-relational joins
but rarely nesting.

Nominal (paper-scale) statistics for Table 1: 65 M rows, 2.64 M rows/table
average, 12 GB.
"""

from __future__ import annotations

import random

from repro.datasets import generators as gen
from repro.datasets.programs import Program, expand_programs
from repro.datasets.records import BenchmarkDomain, Split
from repro.engine.database import Database, create_database
from repro.nlgen.lexicon import DomainLexicon
from repro.schema.enhanced import EnhancedSchema
from repro.schema.introspect import profile_database
from repro.schema.model import Column, ColumnType, ForeignKey, Schema, TableDef

I = ColumnType.INTEGER
F = ColumnType.REAL
T = ColumnType.TEXT

#: Paper-reported full-scale statistics (Table 1).
NOMINAL_STATS = {
    "tables": 25,
    "columns": 106,
    "rows": 65_000_000,
    "avg_rows_per_table": 2_636_771,
    "size_gb": 12.0,
}

GENES = (
    ("BRCA1", "breast cancer gene 1"),
    ("BRCA2", "breast cancer gene 2"),
    ("TP53", "tumor protein p53"),
    ("EGFR", "epidermal growth factor receptor"),
    ("KRAS", "kirsten rat sarcoma viral oncogene"),
    ("ERBB2", "erb-b2 receptor tyrosine kinase 2"),
    ("PTEN", "phosphatase and tensin homolog"),
    ("MYC", "myc proto-oncogene"),
    ("ALK", "anaplastic lymphoma kinase"),
    ("BRAF", "b-raf proto-oncogene"),
    ("PIK3CA", "phosphatidylinositol kinase catalytic alpha"),
    ("RB1", "retinoblastoma 1"),
)
DISEASES = (
    ("DOID:1612", "breast cancer"),
    ("DOID:2394", "ovarian cancer"),
    ("DOID:1324", "lung cancer"),
    ("DOID:9256", "colorectal cancer"),
    ("DOID:10283", "prostate cancer"),
    ("DOID:1909", "melanoma"),
    ("DOID:684", "hepatocellular carcinoma"),
    ("DOID:11054", "urinary bladder cancer"),
)
ANATOMICAL_ENTITIES = (
    ("UBERON:0000310", "breast"),
    ("UBERON:0002048", "lung"),
    ("UBERON:0002107", "liver"),
    ("UBERON:0000955", "brain"),
    ("UBERON:0001155", "colon"),
    ("UBERON:0002097", "skin"),
    ("UBERON:0000992", "ovary"),
    ("UBERON:0002367", "prostate gland"),
    ("UBERON:0002113", "kidney"),
    ("UBERON:0000945", "stomach"),
)
SPECIES = ((9606, "Homo sapiens", "human"), (10090, "Mus musculus", "mouse"))
BIOMARKER_TYPES = ("protein", "gene", "glycan", "metabolite")
EDRN_PHASES = ("One", "Two", "Three", "Four", "Five")
QA_STATES = ("Curated", "Under Review", "Initial Load")
CALL_QUALITIES = ("gold", "silver", "bronze")
EXPRESSION_LEVELS = ("HIGH", "MEDIUM", "LOW", "ABSENT")
STAGES = (
    ("HsapDv:0000087", "adult"),
    ("HsapDv:0000083", "infant"),
    ("HsapDv:0000084", "child"),
    ("HsapDv:0000086", "adolescent"),
)
AA_CODES = ("A", "R", "N", "D", "C", "E", "G", "H", "L", "K", "P", "S", "T", "V")
DATA_SOURCES = ("cosmic", "icgc", "tcga")
POLYPHEN = ("probably damaging", "possibly damaging", "benign")
TREND = ("UP", "DOWN")


def build_schema() -> Schema:
    """The 25-table / 106-column OncoMX schema."""
    tables = (
        TableDef(
            "species",
            (
                Column("speciesid", I, alias="species id", nullable=False),
                Column("species_name", T, alias="species name"),
                Column("common_name", T, alias="common name"),
                Column("genome_assembly", T, alias="genome assembly"),
            ),
            primary_key="speciesid",
            alias="species",
        ),
        TableDef(
            "gene",
            (
                Column("gene_id", I, alias="gene id", nullable=False),
                Column("gene_symbol", T, alias="gene symbol"),
                Column("gene_name", T, alias="gene name"),
                Column("speciesid", I, alias="species id"),
                Column("chromosome_id", T, alias="chromosome"),
            ),
            primary_key="gene_id",
            alias="gene",
        ),
        TableDef(
            "anatomical_entity",
            (
                Column("uberon_anatomical_id", T, alias="anatomical entity id", nullable=False),
                Column("name", T, alias="anatomical entity name"),
                Column("description", T, alias="anatomical entity description"),
            ),
            primary_key="uberon_anatomical_id",
            alias="anatomical entity",
        ),
        TableDef(
            "disease",
            (
                Column("doid", T, alias="disease ontology id", nullable=False),
                Column("disease_name", T, alias="disease name"),
                Column("description", T, alias="disease description"),
            ),
            primary_key="doid",
            alias="disease",
        ),
        TableDef(
            "biomarker",
            (
                Column("biomarker_id", I, alias="biomarker id", nullable=False),
                Column("biomarker_internal_id", T, alias="biomarker internal id"),
                Column("gene_id", I, alias="gene id"),
                Column("biomarker_type", T, alias="biomarker type"),
                Column("test_is_a_panel", ColumnType.BOOLEAN, alias="test is a panel"),
                Column("biomarker_status", T, alias="biomarker status"),
                Column("description", T, alias="biomarker description"),
            ),
            primary_key="biomarker_id",
            alias="biomarker",
        ),
        TableDef(
            "biomarker_fda",
            (
                Column("id", I, alias="FDA biomarker id", nullable=False),
                Column("biomarker_id", I, alias="biomarker id"),
                Column("test_trade_name", T, alias="test trade name"),
                Column("test_manufacturer", T, alias="test manufacturer"),
                Column("approved_indication", T, alias="approved indication"),
            ),
            primary_key="id",
            alias="FDA biomarker",
        ),
        TableDef(
            "biomarker_fda_test_use",
            (
                Column("id", I, alias="test use id", nullable=False),
                Column("fda_id", I, alias="FDA biomarker id"),
                Column("test_use", T, alias="test use"),
            ),
            primary_key="id",
            alias="FDA biomarker test use",
        ),
        TableDef(
            "biomarker_fda_drug",
            (
                Column("id", I, alias="FDA drug id", nullable=False),
                Column("fda_id", I, alias="FDA biomarker id"),
                Column("drug_name", T, alias="drug name"),
            ),
            primary_key="id",
            alias="FDA biomarker drug",
        ),
        TableDef(
            "biomarker_fda_ncit_term",
            (
                Column("id", I, alias="NCIT term id", nullable=False),
                Column("fda_id", I, alias="FDA biomarker id"),
                Column("ncit_biomarker", T, alias="NCIT biomarker term"),
            ),
            primary_key="id",
            alias="FDA NCIT term",
        ),
        TableDef(
            "biomarker_edrn",
            (
                Column("id", I, alias="EDRN biomarker id", nullable=False),
                Column("biomarker_id", I, alias="biomarker id"),
                Column("phase", T, alias="EDRN phase"),
                Column("qa_state", T, alias="QA state"),
                Column("biomarker_title", T, alias="biomarker title"),
            ),
            primary_key="id",
            alias="EDRN biomarker",
        ),
        TableDef(
            "biomarker_article",
            (
                Column("id", I, alias="article link id", nullable=False),
                Column("biomarker_id", I, alias="biomarker id"),
                Column("pmid", I, alias="PubMed id"),
            ),
            primary_key="id",
            alias="biomarker article",
        ),
        TableDef(
            "biomarker_alias",
            (
                Column("id", I, alias="alias id", nullable=False),
                Column("biomarker_id", I, alias="biomarker id"),
                Column("alias", T, alias="biomarker alias"),
            ),
            primary_key="id",
            alias="biomarker alias",
        ),
        TableDef(
            "biomarker_disease",
            (
                Column("id", I, alias="biomarker disease id", nullable=False),
                Column("biomarker_id", I, alias="biomarker id"),
                Column("doid", T, alias="disease ontology id"),
                Column("clinical_significance", T, alias="clinical significance"),
            ),
            primary_key="id",
            alias="biomarker disease link",
        ),
        TableDef(
            "healthy_expression",
            (
                Column("id", I, alias="expression record id", nullable=False),
                Column("gene_id", I, alias="gene id"),
                Column("uberon_anatomical_id", T, alias="anatomical entity id"),
                Column("expression_score", F, alias="expression score"),
                Column("expression_rank_score", F, alias="expression rank score"),
                Column("expression_level_gene_relative", T, alias="relative expression level"),
                Column("call_quality", T, alias="call quality"),
                Column("developmental_stage_id", T, alias="developmental stage id"),
            ),
            primary_key="id",
            alias="healthy expression",
        ),
        TableDef(
            "developmental_stage",
            (
                Column("stage_id", T, alias="developmental stage id", nullable=False),
                Column("stage_name", T, alias="stage name"),
                Column("description", T, alias="stage description"),
            ),
            primary_key="stage_id",
            alias="developmental stage",
        ),
        TableDef(
            "differential_expression",
            (
                Column("id", I, alias="differential expression id", nullable=False),
                Column("gene_id", I, alias="gene id"),
                Column("doid", T, alias="disease ontology id"),
                Column("subjects_up", I, alias="subjects with increased expression"),
                Column("subjects_down", I, alias="subjects with decreased expression"),
                Column("subjects_total", I, alias="total subjects"),
                Column("log2fc", F, alias="log2 fold change"),
                Column("pvalue", F, alias="p-value"),
                Column("adjpvalue", F, alias="adjusted p-value"),
                Column("expression_trend", T, alias="expression trend"),
            ),
            primary_key="id",
            alias="differential expression",
        ),
        TableDef(
            "cancer_tissue",
            (
                Column("id", I, alias="cancer tissue id", nullable=False),
                Column("doid", T, alias="disease ontology id"),
                Column("uberon_anatomical_id", T, alias="anatomical entity id"),
            ),
            primary_key="id",
            alias="cancer tissue",
        ),
        TableDef(
            "disease_mutation",
            (
                Column("mutation_id", I, alias="mutation id", nullable=False),
                Column("gene_id", I, alias="gene id"),
                Column("doid", T, alias="disease ontology id"),
                Column("chromosome_pos", I, alias="chromosome position"),
                Column("ref_aa", T, alias="reference amino acid"),
                Column("alt_aa", T, alias="altered amino acid"),
                Column("ref_nt", T, alias="reference nucleotide"),
                Column("alt_nt", T, alias="altered nucleotide"),
                Column("data_source", T, alias="data source"),
                Column("polyphen_prediction", T, alias="polyphen prediction"),
            ),
            primary_key="mutation_id",
            alias="disease mutation",
        ),
        TableDef(
            "disease_mutation_tissue",
            (
                Column("id", I, alias="mutation tissue id", nullable=False),
                Column("mutation_id", I, alias="mutation id"),
                Column("uberon_anatomical_id", T, alias="anatomical entity id"),
            ),
            primary_key="id",
            alias="disease mutation tissue",
        ),
        TableDef(
            "disease_mutation_article",
            (
                Column("id", I, alias="mutation article id", nullable=False),
                Column("mutation_id", I, alias="mutation id"),
                Column("pmid", I, alias="PubMed id"),
            ),
            primary_key="id",
            alias="disease mutation article",
        ),
        TableDef(
            "xref_gene_ensembl",
            (
                Column("id", I, alias="ensembl xref id", nullable=False),
                Column("gene_id", I, alias="gene id"),
                Column("ensembl_gene_id", T, alias="Ensembl gene id"),
            ),
            primary_key="id",
            alias="Ensembl cross-reference",
        ),
        TableDef(
            "map_uniprot_canonical",
            (
                Column("id", I, alias="uniprot mapping id", nullable=False),
                Column("gene_id", I, alias="gene id"),
                Column("uniprot_ac", T, alias="UniProt accession"),
            ),
            primary_key="id",
            alias="UniProt mapping",
        ),
        TableDef(
            "anatomical_entity_synonym",
            (
                Column("id", I, alias="anatomical synonym id", nullable=False),
                Column("uberon_anatomical_id", T, alias="anatomical entity id"),
                Column("synonym", T, alias="synonym"),
            ),
            primary_key="id",
            alias="anatomical entity synonym",
        ),
        TableDef(
            "disease_synonym",
            (
                Column("id", I, alias="disease synonym id", nullable=False),
                Column("doid", T, alias="disease ontology id"),
                Column("synonym", T, alias="synonym"),
            ),
            primary_key="id",
            alias="disease synonym",
        ),
        TableDef(
            "gene_disease",
            (
                Column("id", I, alias="gene disease id", nullable=False),
                Column("gene_id", I, alias="gene id"),
                Column("doid", T, alias="disease ontology id"),
            ),
            primary_key="id",
            alias="gene disease association",
        ),
    )
    foreign_keys = (
        ForeignKey("gene", "speciesid", "species", "speciesid"),
        ForeignKey("biomarker", "gene_id", "gene", "gene_id"),
        ForeignKey("biomarker_fda", "biomarker_id", "biomarker", "biomarker_id"),
        ForeignKey("biomarker_fda_test_use", "fda_id", "biomarker_fda", "id"),
        ForeignKey("biomarker_fda_drug", "fda_id", "biomarker_fda", "id"),
        ForeignKey("biomarker_fda_ncit_term", "fda_id", "biomarker_fda", "id"),
        ForeignKey("biomarker_edrn", "biomarker_id", "biomarker", "biomarker_id"),
        ForeignKey("biomarker_article", "biomarker_id", "biomarker", "biomarker_id"),
        ForeignKey("biomarker_alias", "biomarker_id", "biomarker", "biomarker_id"),
        ForeignKey("biomarker_disease", "biomarker_id", "biomarker", "biomarker_id"),
        ForeignKey("biomarker_disease", "doid", "disease", "doid"),
        ForeignKey("healthy_expression", "gene_id", "gene", "gene_id"),
        ForeignKey("healthy_expression", "uberon_anatomical_id", "anatomical_entity", "uberon_anatomical_id"),
        ForeignKey("healthy_expression", "developmental_stage_id", "developmental_stage", "stage_id"),
        ForeignKey("differential_expression", "gene_id", "gene", "gene_id"),
        ForeignKey("differential_expression", "doid", "disease", "doid"),
        ForeignKey("cancer_tissue", "doid", "disease", "doid"),
        ForeignKey("cancer_tissue", "uberon_anatomical_id", "anatomical_entity", "uberon_anatomical_id"),
        ForeignKey("disease_mutation", "gene_id", "gene", "gene_id"),
        ForeignKey("disease_mutation", "doid", "disease", "doid"),
        ForeignKey("disease_mutation_tissue", "mutation_id", "disease_mutation", "mutation_id"),
        ForeignKey("disease_mutation_tissue", "uberon_anatomical_id", "anatomical_entity", "uberon_anatomical_id"),
        ForeignKey("disease_mutation_article", "mutation_id", "disease_mutation", "mutation_id"),
        ForeignKey("xref_gene_ensembl", "gene_id", "gene", "gene_id"),
        ForeignKey("map_uniprot_canonical", "gene_id", "gene", "gene_id"),
        ForeignKey("anatomical_entity_synonym", "uberon_anatomical_id", "anatomical_entity", "uberon_anatomical_id"),
        ForeignKey("disease_synonym", "doid", "disease", "doid"),
        ForeignKey("gene_disease", "gene_id", "gene", "gene_id"),
        ForeignKey("gene_disease", "doid", "disease", "doid"),
    )
    return Schema(name="oncomx", tables=tables, foreign_keys=foreign_keys)


def populate(database: Database, scale: float, rng: random.Random) -> None:
    """Fill the OncoMX instance with synthetic biomarker data."""
    n_biomarkers = max(40, int(250 * scale))
    n_healthy = max(200, int(2000 * scale))
    n_diff = max(150, int(1200 * scale))
    n_mutations = max(120, int(1000 * scale))

    database.insert("species", [(sid, name, common, f"GRC{common[0]}38") for sid, name, common in SPECIES])
    database.insert(
        "gene",
        [
            (
                1000 + i,
                symbol,
                name,
                gen.skewed_choice(rng, [9606, 9606, 9606, 10090]),
                str(rng.randint(1, 22)),
            )
            for i, (symbol, name) in enumerate(GENES)
        ],
    )
    database.insert(
        "anatomical_entity",
        [(uid, name, gen.sentence(rng, 6)) for uid, name in ANATOMICAL_ENTITIES],
    )
    database.insert(
        "disease",
        [(doid, name, gen.sentence(rng, 8)) for doid, name in DISEASES],
    )
    database.insert(
        "developmental_stage",
        [(sid, name, gen.sentence(rng, 5)) for sid, name in STAGES],
    )

    gene_ids = [1000 + i for i in range(len(GENES))]
    doids = [doid for doid, _ in DISEASES]
    uberons = [uid for uid, _ in ANATOMICAL_ENTITIES]
    stage_ids = [sid for sid, _ in STAGES]

    biomarker_rows = []
    for i in range(n_biomarkers):
        biomarker_rows.append(
            (
                2000 + i,
                f"ONX_{2000 + i}",
                rng.choice(gene_ids),
                gen.skewed_choice(rng, list(BIOMARKER_TYPES)),
                rng.random() < 0.2,
                gen.skewed_choice(rng, ["approved", "investigational", "retired"]),
                gen.sentence(rng, 10),
            )
        )
    database.insert("biomarker", biomarker_rows)
    biomarker_ids = [row[0] for row in biomarker_rows]

    fda_rows = []
    for i, biomarker_id in enumerate(rng.sample(biomarker_ids, k=len(biomarker_ids) // 2)):
        fda_rows.append(
            (
                3000 + i,
                biomarker_id,
                f"{gen.word(rng, 2).capitalize()}Dx",
                f"{gen.word(rng, 2).capitalize()} Diagnostics",
                gen.skewed_choice(rng, [name for _, name in DISEASES]),
            )
        )
    database.insert("biomarker_fda", fda_rows)
    fda_ids = [row[0] for row in fda_rows]

    database.insert(
        "biomarker_fda_test_use",
        [
            (3500 + i, rng.choice(fda_ids), gen.skewed_choice(
                rng, ["diagnosis", "prognosis", "monitoring", "predisposition"]))
            for i in range(len(fda_ids) * 2)
        ],
    )
    database.insert(
        "biomarker_fda_drug",
        [
            (3800 + i, rng.choice(fda_ids), gen.skewed_choice(
                rng, ["trastuzumab", "erlotinib", "olaparib", "vemurafenib", "cetuximab"]))
            for i in range(len(fda_ids))
        ],
    )
    database.insert(
        "biomarker_fda_ncit_term",
        [
            (3900 + i, fda_id, gen.skewed_choice(rng, [s for s, _ in GENES]))
            for i, fda_id in enumerate(fda_ids)
        ],
    )

    database.insert(
        "biomarker_edrn",
        [
            (
                4000 + i,
                rng.choice(biomarker_ids),
                gen.skewed_choice(rng, list(EDRN_PHASES)),
                gen.skewed_choice(rng, list(QA_STATES)),
                gen.title(rng, 4),
            )
            for i in range(max(20, n_biomarkers // 2))
        ],
    )
    database.insert(
        "biomarker_article",
        [
            (4500 + i, rng.choice(biomarker_ids), 10_000_000 + rng.randint(0, 9_999_999))
            for i in range(n_biomarkers)
        ],
    )
    database.insert(
        "biomarker_alias",
        [
            (4800 + i, rng.choice(biomarker_ids), gen.acronym(rng, rng.randint(3, 6)))
            for i in range(n_biomarkers)
        ],
    )
    database.insert(
        "biomarker_disease",
        [
            (
                5000 + i,
                rng.choice(biomarker_ids),
                gen.skewed_choice(rng, doids),
                gen.skewed_choice(rng, ["diagnostic", "prognostic", "predictive"]),
            )
            for i in range(n_biomarkers * 2)
        ],
    )

    healthy_rows = []
    for i in range(n_healthy):
        score = gen.bounded_float(rng, 0.0, 100.0, 2)
        level = (
            "HIGH" if score > 75 else "MEDIUM" if score > 40 else "LOW" if score > 5 else "ABSENT"
        )
        healthy_rows.append(
            (
                6000 + i,
                rng.choice(gene_ids),
                rng.choice(uberons),
                score,
                gen.bounded_float(rng, 0.0, 1.0, 4),
                level,
                gen.skewed_choice(rng, list(CALL_QUALITIES)),
                rng.choice(stage_ids),
            )
        )
    database.insert("healthy_expression", healthy_rows)

    diff_rows = []
    for i in range(n_diff):
        up = rng.randint(0, 120)
        down = rng.randint(0, 120)
        diff_rows.append(
            (
                7000 + i,
                rng.choice(gene_ids),
                gen.skewed_choice(rng, doids),
                up,
                down,
                up + down + rng.randint(0, 40),
                gen.gauss_float(rng, 0.0, 2.2),
                gen.bounded_float(rng, 0.0, 0.2, 6),
                gen.bounded_float(rng, 0.0, 0.3, 6),
                "UP" if up >= down else "DOWN",
            )
        )
    database.insert("differential_expression", diff_rows)

    database.insert(
        "cancer_tissue",
        [
            (7500 + i, doid, rng.choice(uberons))
            for i, doid in enumerate(doids)
        ],
    )

    mutation_rows = []
    for i in range(n_mutations):
        ref, alt = rng.sample(list(AA_CODES), 2)
        mutation_rows.append(
            (
                8000 + i,
                rng.choice(gene_ids),
                gen.skewed_choice(rng, doids),
                rng.randint(10_000, 248_000_000),
                ref,
                alt,
                rng.choice("ACGT"),
                rng.choice("ACGT"),
                gen.skewed_choice(rng, list(DATA_SOURCES)),
                gen.skewed_choice(rng, list(POLYPHEN)),
            )
        )
    database.insert("disease_mutation", mutation_rows)
    mutation_ids = [row[0] for row in mutation_rows]

    database.insert(
        "disease_mutation_tissue",
        [
            (8500 + i, rng.choice(mutation_ids), rng.choice(uberons))
            for i in range(n_mutations)
        ],
    )
    database.insert(
        "disease_mutation_article",
        [
            (8800 + i, rng.choice(mutation_ids), 20_000_000 + rng.randint(0, 9_999_999))
            for i in range(n_mutations // 2)
        ],
    )
    database.insert(
        "xref_gene_ensembl",
        [
            (9000 + i, gene_id, f"ENSG{rng.randint(10_000_000_000, 99_999_999_999)}")
            for i, gene_id in enumerate(gene_ids)
        ],
    )
    database.insert(
        "map_uniprot_canonical",
        [
            (9100 + i, gene_id, f"P{rng.randint(10000, 99999)}")
            for i, gene_id in enumerate(gene_ids)
        ],
    )
    database.insert(
        "anatomical_entity_synonym",
        [
            (9200 + i, uid, f"{name} tissue")
            for i, (uid, name) in enumerate(ANATOMICAL_ENTITIES)
        ],
    )
    database.insert(
        "disease_synonym",
        [
            (9300 + i, doid, f"{name} (malignant)")
            for i, (doid, name) in enumerate(DISEASES)
        ],
    )
    database.insert(
        "gene_disease",
        [
            (9400 + i, rng.choice(gene_ids), gen.skewed_choice(rng, doids))
            for i in range(len(gene_ids) * 4)
        ],
    )


def build_lexicon() -> DomainLexicon:
    """Cancer-research phrasing used by domain experts."""
    lex = DomainLexicon(name="oncomx")
    lex.add_table("biomarker", "biomarkers", "cancer biomarkers")
    lex.add_table("gene", "genes")
    lex.add_table("disease", "diseases", "cancers")
    lex.add_table("anatomical_entity", "anatomical entities", "tissues")
    lex.add_table("healthy_expression", "healthy expression records", "gene expressions in healthy tissue")
    lex.add_table("differential_expression", "differential expression records")
    lex.add_table("disease_mutation", "cancer mutations", "disease mutations")
    lex.add_table("biomarker_fda", "FDA approved biomarker tests", "FDA biomarkers")
    lex.add_table("biomarker_edrn", "EDRN biomarkers")

    lex.add_column("gene", "gene_symbol", "gene symbol", "symbol")
    lex.add_column("gene", "gene_name", "gene name")
    lex.add_column("disease", "disease_name", "disease name", "cancer name")
    lex.add_column("healthy_expression", "expression_score", "expression score")
    lex.add_column("healthy_expression", "expression_level_gene_relative", "relative expression level")
    lex.add_column("differential_expression", "log2fc", "log2 fold change", "fold change")
    lex.add_column("differential_expression", "pvalue", "p-value")
    lex.add_column("differential_expression", "subjects_up", "subjects with increased expression")
    lex.add_column("disease_mutation", "polyphen_prediction", "polyphen prediction")
    lex.add_column("disease_mutation", "chromosome_pos", "chromosome position")
    lex.add_column("biomarker", "biomarker_type", "biomarker type")
    lex.add_column("biomarker_edrn", "phase", "EDRN phase", "phase")

    for symbol, name in GENES:
        lex.add_value("gene", "gene_symbol", symbol, symbol, name)
    for doid, name in DISEASES:
        lex.add_value("disease", "disease_name", name, name)
        lex.add_value("differential_expression", "doid", doid, name)
        lex.add_value("disease_mutation", "doid", doid, name)
    for uid, name in ANATOMICAL_ENTITIES:
        lex.add_value("anatomical_entity", "name", name, name)
        lex.add_value("healthy_expression", "uberon_anatomical_id", uid, name)
    return lex


def _question_programs() -> list[Program]:
    """The expert question catalogue for OncoMX (seed + dev).

    Deliberately easier than the other domains: mostly easy/medium with a
    handful of hard queries, matching Table 2's OncoMX distribution.
    """
    return [
        Program(
            nl=(
                "Show biomarkers for {disease}.",
                "Which biomarkers are associated with {disease}?",
            ),
            sql=(
                "SELECT T1.biomarker_internal_id FROM biomarker AS T1 "
                "JOIN biomarker_disease AS T2 ON T2.biomarker_id = T1.biomarker_id "
                "JOIN disease AS T3 ON T2.doid = T3.doid "
                "WHERE T3.disease_name = '{disease}'"
            ),
            params={
                "disease": ("breast cancer", "lung cancer", "ovarian cancer",
                            "colorectal cancer", "prostate cancer", "melanoma"),
            },
        ),
        Program(
            nl=(
                "Find the gene name of the gene with symbol {symbol}.",
                "What is the full name of the {symbol} gene?",
            ),
            sql="SELECT gene_name FROM gene WHERE gene_symbol = '{symbol}'",
            params={"symbol": ("BRCA1", "TP53", "EGFR", "KRAS", "BRCA2", "MYC")},
        ),
        Program(
            nl=(
                "How many biomarkers are of biomarker type {t}?",
                "Count the biomarkers whose type is {t}.",
            ),
            sql="SELECT COUNT(*) FROM biomarker WHERE biomarker_type = '{t}'",
            params={"t": ("protein", "gene", "glycan", "metabolite")},
        ),
        Program(
            nl=(
                "Find the number of biomarkers for each biomarker type.",
                "How many biomarkers exist per biomarker type?",
            ),
            sql="SELECT COUNT(*), biomarker_type FROM biomarker GROUP BY biomarker_type",
            params={},
        ),
        Program(
            nl=(
                "What is the average expression score of the gene {symbol} in healthy tissue?",
                "Compute the mean expression score for gene {symbol} across healthy expression records.",
            ),
            sql=(
                "SELECT AVG(T1.expression_score) FROM healthy_expression AS T1 "
                "JOIN gene AS T2 ON T1.gene_id = T2.gene_id "
                "WHERE T2.gene_symbol = '{symbol}'"
            ),
            params={"symbol": ("BRCA1", "TP53", "EGFR", "PTEN", "MYC", "BRAF")},
        ),
        Program(
            nl=(
                "Find the expression score of genes in the {tissue}.",
                "Show the expression scores measured in the {tissue}.",
            ),
            sql=(
                "SELECT T1.expression_score FROM healthy_expression AS T1 "
                "JOIN anatomical_entity AS T2 "
                "ON T1.uberon_anatomical_id = T2.uberon_anatomical_id "
                "WHERE T2.name = '{tissue}'"
            ),
            params={"tissue": ("breast", "lung", "liver", "brain", "colon", "ovary")},
        ),
        Program(
            nl=(
                "Find the mutations of the gene {symbol} in {disease}.",
                "List mutation ids of {symbol} mutations observed in {disease}.",
            ),
            sql=(
                "SELECT T1.mutation_id FROM disease_mutation AS T1 "
                "JOIN gene AS T2 ON T1.gene_id = T2.gene_id "
                "JOIN disease AS T3 ON T1.doid = T3.doid "
                "WHERE T2.gene_symbol = '{symbol}' AND T3.disease_name = '{disease}'"
            ),
            params={
                "symbol": ("BRCA1", "TP53", "KRAS", "EGFR"),
                "disease": ("breast cancer", "lung cancer", "colorectal cancer", "lung cancer"),
            },
        ),
        Program(
            nl=(
                "How many cancer mutations come from the data source {src}?",
                "Count disease mutations recorded in {src}.",
            ),
            sql="SELECT COUNT(*) FROM disease_mutation WHERE data_source = '{src}'",
            params={"src": ("cosmic", "tcga", "icgc", "cosmic")},
        ),
        Program(
            nl=(
                "Find the number of mutations for each polyphen prediction.",
                "How many mutations are there per polyphen prediction?",
            ),
            sql=(
                "SELECT COUNT(*), polyphen_prediction FROM disease_mutation "
                "GROUP BY polyphen_prediction"
            ),
            params={},
        ),
        Program(
            nl=(
                "Find the test trade names of FDA approved biomarker tests manufactured by {m}.",
                "Which FDA biomarker tests does {m} manufacture?",
            ),
            sql="SELECT test_trade_name FROM biomarker_fda WHERE test_manufacturer LIKE '%{m}%'",
            params={"m": ("Diagnostics", "Diagnostics", "Diagnostics", "Diagnostics")},
            only="seed",
        ),
        Program(
            nl=(
                "Find the EDRN biomarker titles in phase {phase}.",
                "List EDRN biomarkers whose phase is {phase}.",
            ),
            sql="SELECT biomarker_title FROM biomarker_edrn WHERE phase = '{phase}'",
            params={"phase": ("Two", "Three", "One", "Four")},
        ),
        Program(
            nl=(
                "Find genes with log2 fold change greater than {fc} in {disease}.",
                "Which gene ids show a fold change above {fc} for {disease}?",
            ),
            sql=(
                "SELECT T1.gene_id FROM differential_expression AS T1 "
                "JOIN disease AS T2 ON T1.doid = T2.doid "
                "WHERE T2.disease_name = '{disease}' AND T1.log2fc > {fc}"
            ),
            params={
                "disease": ("breast cancer", "lung cancer", "prostate cancer", "melanoma"),
                "fc": (1.5, 2.0, 1.0, 2.5),
            },
        ),
        Program(
            nl=(
                "What is the average log2 fold change for each disease ontology id?",
                "Compute the mean fold change per disease.",
            ),
            sql="SELECT AVG(log2fc), doid FROM differential_expression GROUP BY doid",
            params={},
        ),
        Program(
            nl=(
                "Find the relative expression level of the gene {symbol} in the {tissue}.",
                "What is the relative expression level of {symbol} measured in the {tissue}?",
            ),
            sql=(
                "SELECT T1.expression_level_gene_relative FROM healthy_expression AS T1 "
                "JOIN gene AS T2 ON T1.gene_id = T2.gene_id "
                "JOIN anatomical_entity AS T3 "
                "ON T1.uberon_anatomical_id = T3.uberon_anatomical_id "
                "WHERE T2.gene_symbol = '{symbol}' AND T3.name = '{tissue}'"
            ),
            params={
                "symbol": ("BRCA1", "TP53", "EGFR", "PTEN"),
                "tissue": ("breast", "lung", "brain", "liver"),
            },
        ),
        Program(
            nl=(
                "How many healthy expression records have call quality {q}?",
                "Count expression records whose call quality equals {q}.",
            ),
            sql="SELECT COUNT(*) FROM healthy_expression WHERE call_quality = '{q}'",
            params={"q": ("gold", "silver", "bronze", "gold")},
        ),
        Program(
            nl=(
                "Find the anatomical entity names of the cancer tissues of {disease}.",
                "Which tissues are affected by {disease}?",
            ),
            sql=(
                "SELECT T1.name FROM anatomical_entity AS T1 "
                "JOIN cancer_tissue AS T2 "
                "ON T2.uberon_anatomical_id = T1.uberon_anatomical_id "
                "JOIN disease AS T3 ON T2.doid = T3.doid "
                "WHERE T3.disease_name = '{disease}'"
            ),
            params={
                "disease": ("breast cancer", "lung cancer", "melanoma", "prostate cancer"),
            },
        ),
        Program(
            nl=(
                "Find the PubMed ids of articles about biomarkers of the gene {symbol}.",
                "List PubMed ids for biomarker articles linked to gene {symbol}.",
            ),
            sql=(
                "SELECT T1.pmid FROM biomarker_article AS T1 "
                "JOIN biomarker AS T2 ON T1.biomarker_id = T2.biomarker_id "
                "JOIN gene AS T3 ON T2.gene_id = T3.gene_id "
                "WHERE T3.gene_symbol = '{symbol}'"
            ),
            params={"symbol": ("BRCA1", "TP53", "ERBB2", "ALK")},
        ),
        Program(
            nl=(
                "Find the drug names associated with FDA biomarker tests approved for {disease}.",
                "Which drugs are linked to FDA biomarkers indicated for {disease}?",
            ),
            sql=(
                "SELECT T1.drug_name FROM biomarker_fda_drug AS T1 "
                "JOIN biomarker_fda AS T2 ON T1.fda_id = T2.id "
                "WHERE T2.approved_indication = '{disease}'"
            ),
            params={
                "disease": ("breast cancer", "lung cancer", "colorectal cancer", "melanoma"),
            },
        ),
        Program(
            nl=(
                "Find the gene symbols of genes associated with {disease}.",
                "Which gene symbols are linked to {disease}?",
            ),
            sql=(
                "SELECT T1.gene_symbol FROM gene AS T1 "
                "JOIN gene_disease AS T2 ON T2.gene_id = T1.gene_id "
                "JOIN disease AS T3 ON T2.doid = T3.doid "
                "WHERE T3.disease_name = '{disease}'"
            ),
            params={
                "disease": ("breast cancer", "ovarian cancer", "lung cancer", "melanoma"),
            },
        ),
        Program(
            nl=(
                "Find the Ensembl gene id of the gene {symbol}.",
                "What is the Ensembl identifier for gene {symbol}?",
            ),
            sql=(
                "SELECT T1.ensembl_gene_id FROM xref_gene_ensembl AS T1 "
                "JOIN gene AS T2 ON T1.gene_id = T2.gene_id "
                "WHERE T2.gene_symbol = '{symbol}'"
            ),
            params={"symbol": ("BRCA2", "KRAS", "PIK3CA", "RB1")},
        ),
        Program(
            nl=(
                "Find the UniProt accession of the gene {symbol}.",
                "Show the UniProt accession mapped to gene {symbol}.",
            ),
            sql=(
                "SELECT T1.uniprot_ac FROM map_uniprot_canonical AS T1 "
                "JOIN gene AS T2 ON T1.gene_id = T2.gene_id "
                "WHERE T2.gene_symbol = '{symbol}'"
            ),
            params={"symbol": ("BRCA1", "EGFR", "MYC", "PTEN")},
        ),
        Program(
            nl=(
                "List the gene symbol and chromosome of all human genes.",
                "Show gene symbols with their chromosome for the species Homo sapiens.",
            ),
            sql=(
                "SELECT T1.gene_symbol, T1.chromosome_id FROM gene AS T1 "
                "JOIN species AS T2 ON T1.speciesid = T2.speciesid "
                "WHERE T2.species_name = 'Homo sapiens'"
            ),
            params={},
        ),
        Program(
            nl=(
                "Find the number of subjects with increased expression for the gene {symbol} in {disease}.",
                "How many subjects show increased expression of {symbol} in {disease}?",
            ),
            sql=(
                "SELECT T1.subjects_up FROM differential_expression AS T1 "
                "JOIN gene AS T2 ON T1.gene_id = T2.gene_id "
                "JOIN disease AS T3 ON T1.doid = T3.doid "
                "WHERE T2.gene_symbol = '{symbol}' AND T3.disease_name = '{disease}'"
            ),
            params={
                "symbol": ("BRCA1", "TP53", "EGFR", "KRAS"),
                "disease": ("breast cancer", "ovarian cancer", "lung cancer", "colorectal cancer"),
            },
        ),
        # -- a handful of hard programs (OncoMX Dev has ~11% hard) -------------
        Program(
            nl=(
                "",
                "Which gene symbols have a mean healthy expression score above {s}?",
            ),
            sql=(
                "SELECT T2.gene_symbol FROM healthy_expression AS T1 "
                "JOIN gene AS T2 ON T1.gene_id = T2.gene_id "
                "GROUP BY T2.gene_symbol HAVING AVG(T1.expression_score) > {s}"
            ),
            params={"s": (50, 60, 40, 55)},
            only="dev",
        ),
        Program(
            nl=(
                "",
                "Find the disease names with more than {n} recorded mutations, ordered by the number of mutations in descending order.",
            ),
            sql=(
                "SELECT T2.disease_name FROM disease_mutation AS T1 "
                "JOIN disease AS T2 ON T1.doid = T2.doid "
                "GROUP BY T2.disease_name HAVING COUNT(*) > {n} "
                "ORDER BY COUNT(*) DESC"
            ),
            params={"n": (10, 30, 5, 20)},
            only="dev",
        ),
        Program(
            nl=(
                "",
                "Which genes have a log2 fold change above the average log2 fold change across all differential expression records?",
            ),
            sql=(
                "SELECT gene_id FROM differential_expression WHERE log2fc > "
                "(SELECT AVG(log2fc) FROM differential_expression)"
            ),
            params={},
            only="dev",
        ),
        Program(
            nl=(
                "",
                "Find the expression score and call quality of records for the {tissue} whose expression score is greater than {s}.",
            ),
            sql=(
                "SELECT T1.expression_score, T1.call_quality FROM healthy_expression AS T1 "
                "JOIN anatomical_entity AS T2 "
                "ON T1.uberon_anatomical_id = T2.uberon_anatomical_id "
                "WHERE T2.name = '{tissue}' AND T1.expression_score > {s}"
            ),
            params={"tissue": ("breast", "lung", "liver", "kidney"), "s": (50, 70, 30, 60)},
            only="dev",
        ),
        Program(
            nl=(
                "Count the biomarkers for each clinical significance.",
                "How many biomarker-disease links are there per clinical significance?",
            ),
            sql=(
                "SELECT COUNT(*), clinical_significance FROM biomarker_disease "
                "GROUP BY clinical_significance"
            ),
            params={},
        ),
        Program(
            nl=(
                "Find the stage names of developmental stages.",
                "List all developmental stage names.",
            ),
            sql="SELECT stage_name FROM developmental_stage",
            params={},
            only="seed",
        ),
        Program(
            nl=(
                "Find the {k} differential expression records with the highest log2 fold change.",
                "Return the top {k} records by fold change.",
            ),
            sql="SELECT id FROM differential_expression ORDER BY log2fc DESC LIMIT {k}",
            params={"k": (5, 10, 3, 20)},
        ),
        Program(
            nl=(
                "Find the reference amino acid and altered amino acid of mutations in the gene {symbol}.",
                "Show the amino acid changes for mutations of gene {symbol}.",
            ),
            sql=(
                "SELECT T1.ref_aa, T1.alt_aa FROM disease_mutation AS T1 "
                "JOIN gene AS T2 ON T1.gene_id = T2.gene_id "
                "WHERE T2.gene_symbol = '{symbol}'"
            ),
            params={"symbol": ("TP53", "KRAS", "BRAF", "PIK3CA")},
        ),
        Program(
            nl=(
                "Find the test use of FDA biomarker tests.",
                "List the recorded test uses of FDA biomarkers.",
            ),
            sql="SELECT test_use FROM biomarker_fda_test_use",
            params={"pad": (1, 2)},
        ),
        Program(
            nl=(
                "How many FDA biomarker tests are approved for each approved indication?",
                "Count FDA biomarkers per approved indication.",
            ),
            sql=(
                "SELECT COUNT(*), approved_indication FROM biomarker_fda "
                "GROUP BY approved_indication"
            ),
            params={},
        ),
        Program(
            nl=(
                "Find the biomarker aliases of the biomarker with biomarker id {b}.",
                "List the aliases recorded for biomarker {b}.",
            ),
            sql="SELECT alias FROM biomarker_alias WHERE biomarker_id = {b}",
            params={"b": (2001, 2005, 2010, 2003, 2007, 2012)},
        ),
        Program(
            nl=(
                "Find the disease synonyms of {disease}.",
                "Which synonyms exist for {disease}?",
            ),
            sql=(
                "SELECT T1.synonym FROM disease_synonym AS T1 "
                "JOIN disease AS T2 ON T1.doid = T2.doid "
                "WHERE T2.disease_name = '{disease}'"
            ),
            params={
                "disease": ("breast cancer", "melanoma", "lung cancer", "ovarian cancer"),
            },
        ),
        Program(
            nl=(
                "How many mutations have the altered amino acid {aa}?",
                "Count disease mutations whose altered amino acid equals {aa}.",
            ),
            sql="SELECT COUNT(*) FROM disease_mutation WHERE alt_aa = '{aa}'",
            params={"aa": ("A", "R", "L", "S", "V", "G")},
        ),
        Program(
            nl=(
                "Find the expression score and the expression rank score of records with relative expression level {level}.",
                "Show expression score alongside rank score where the relative expression level is {level}.",
            ),
            sql=(
                "SELECT expression_score, expression_rank_score FROM healthy_expression "
                "WHERE expression_level_gene_relative = '{level}'"
            ),
            params={"level": ("HIGH", "LOW", "MEDIUM", "ABSENT")},
        ),
        Program(
            nl=(
                "Find the species name and genome assembly of all species.",
                "List every species with its genome assembly.",
            ),
            sql="SELECT species_name, genome_assembly FROM species",
            params={"pad": (1, 2)},
        ),
        Program(
            nl=(
                "What is the maximum chromosome position among mutations from {src}?",
                "Find the largest chromosome position recorded in {src}.",
            ),
            sql=(
                "SELECT MAX(chromosome_pos) FROM disease_mutation "
                "WHERE data_source = '{src}'"
            ),
            params={"src": ("cosmic", "tcga", "icgc", "cosmic")},
        ),
        Program(
            nl=(
                "Count the healthy expression records for each developmental stage id.",
                "How many expression records exist per developmental stage?",
            ),
            sql=(
                "SELECT COUNT(*), developmental_stage_id FROM healthy_expression "
                "GROUP BY developmental_stage_id"
            ),
            params={},
        ),
        Program(
            nl=(
                "Find the NCIT biomarker terms of FDA biomarkers approved for {disease}.",
                "Which NCIT terms are attached to FDA biomarkers indicated for {disease}?",
            ),
            sql=(
                "SELECT T1.ncit_biomarker FROM biomarker_fda_ncit_term AS T1 "
                "JOIN biomarker_fda AS T2 ON T1.fda_id = T2.id "
                "WHERE T2.approved_indication = '{disease}'"
            ),
            params={
                "disease": ("breast cancer", "lung cancer", "melanoma", "colorectal cancer"),
            },
        ),
    ]


def build(scale: float = 1.0, seed: int = 41) -> BenchmarkDomain:
    """Construct the full OncoMX benchmark domain."""
    rng = random.Random(seed)
    schema = build_schema()
    database = create_database(schema)
    populate(database, scale, rng)

    enhanced = profile_database(database)
    _refine_enhanced(enhanced)
    lexicon = build_lexicon()

    seed_pairs, dev_pairs = expand_programs(_question_programs(), db_id="oncomx")
    return BenchmarkDomain(
        name="oncomx",
        database=database,
        enhanced=enhanced,
        lexicon=lexicon,
        seed=Split(name="oncomx-seed", pairs=seed_pairs),
        dev=Split(name="oncomx-dev", pairs=dev_pairs),
        nominal_stats=dict(NOMINAL_STATS),
    )


def _refine_enhanced(enhanced: EnhancedSchema) -> None:
    """The domain experts' one-shot manual refinement (Section 3.3.2)."""
    enhanced.mark_categorical("biomarker", "biomarker_type", "biomarker_status")
    enhanced.mark_categorical("biomarker_edrn", "phase", "qa_state")
    enhanced.mark_categorical("biomarker_disease", "clinical_significance")
    enhanced.mark_categorical(
        "healthy_expression", "expression_level_gene_relative", "call_quality"
    )
    enhanced.mark_categorical("differential_expression", "expression_trend")
    enhanced.mark_categorical("disease_mutation", "data_source", "polyphen_prediction")
    enhanced.mark_non_aggregatable("disease_mutation", "chromosome_pos")
    enhanced.mark_non_aggregatable("biomarker_article", "pmid")
    enhanced.mark_non_aggregatable("disease_mutation_article", "pmid")
    enhanced.mark_math_group(
        "differential_expression",
        "differential_expression:subjects",
        "subjects_up",
        "subjects_down",
    )
