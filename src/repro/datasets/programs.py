"""Question programs: the machinery behind the expert-curated splits.

The paper's Seed and Dev sets were written by ~20 domain and SQL experts.
We encode that work as *question programs*: parameterised (NL template, SQL
template) pairs whose slots are filled with curated domain values.  Each
program mimics one expert's question pattern; its instantiations are split
between Seed and Dev so the two sets share domain structure without sharing
surface pairs — matching how real expert teams produce overlapping but
distinct question sets.

A program's ``nl`` field holds two template variants: index 0 is the Seed
phrasing, index 1 the Dev phrasing (experts word the same intent slightly
differently across sessions).  Programs marked ``dev_only``/``seed_only``
contribute to a single split, which is how the Dev sets acquire extra-hard
queries absent from Seed (mirroring Table 2, where e.g. SDSS Dev is much
harder than SDSS Seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.records import NLSQLPair


@dataclass(frozen=True)
class Program:
    """One parameterised expert question pattern."""

    nl: tuple[str, str]  # (seed phrasing, dev phrasing)
    sql: str
    params: dict[str, tuple] = field(default_factory=dict)
    only: str | None = None  # None | "seed" | "dev"

    def instantiations(self) -> int:
        if not self.params:
            return 1
        return max(len(v) for v in self.params.values())


def expand_programs(
    programs: list[Program], db_id: str
) -> tuple[list[NLSQLPair], list[NLSQLPair]]:
    """Expand programs into (seed pairs, dev pairs).

    For a program contributing to both splits, instantiations alternate:
    even indices go to Seed with the Seed phrasing, odd to Dev with the Dev
    phrasing.  ``only``-programs put all instantiations in their split.
    """
    seed: list[NLSQLPair] = []
    dev: list[NLSQLPair] = []
    for program in programs:
        count = program.instantiations()
        for i in range(count):
            bindings = {
                key: values[i % len(values)] for key, values in program.params.items()
            }
            sql = program.sql.format(**bindings)
            if program.only == "seed":
                seed.append(_pair(program.nl[0], bindings, sql, db_id, "seed"))
            elif program.only == "dev":
                dev.append(_pair(program.nl[1], bindings, sql, db_id, "dev"))
            elif i % 2 == 0:
                seed.append(_pair(program.nl[0], bindings, sql, db_id, "seed"))
            else:
                dev.append(_pair(program.nl[1], bindings, sql, db_id, "dev"))
    return seed, dev


def _pair(template: str, bindings: dict, sql: str, db_id: str, source: str) -> NLSQLPair:
    question = template.format(**bindings)
    return NLSQLPair(question=question, sql=sql, db_id=db_id, source=source)
