"""Benchmark data containers: NL/SQL pairs, splits and domain bundles.

These are the objects that move through the whole system: the seeding phase
reads a domain's ``seed`` split, the pipeline produces its ``synth`` split,
NL-to-SQL systems train on mixtures of splits and are evaluated on ``dev``.
Everything serialises to plain JSON so benchmark artifacts can be saved and
inspected.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.database import Database
from repro.nlgen.lexicon import DomainLexicon
from repro.schema.enhanced import EnhancedSchema


@dataclass
class NLSQLPair:
    """One natural-language question with its gold SQL query."""

    question: str
    sql: str
    db_id: str
    source: str = "manual"  # "seed" | "dev" | "synth" | "spider"
    _hardness: str | None = field(default=None, repr=False)

    @property
    def hardness(self) -> str:
        """Spider hardness class, computed lazily and cached."""
        if self._hardness is None:
            # Imported here: repro.spider's package __init__ pulls in the
            # corpus module, which needs this module — a direct top-level
            # import would be circular.
            from repro.spider.hardness import classify_hardness

            self._hardness = classify_hardness(self.sql)
        return self._hardness

    def to_dict(self) -> dict:
        return {
            "question": self.question,
            "sql": self.sql,
            "db_id": self.db_id,
            "source": self.source,
            "hardness": self.hardness,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NLSQLPair":
        return cls(
            question=data["question"],
            sql=data["sql"],
            db_id=data["db_id"],
            source=data.get("source", "manual"),
            _hardness=data.get("hardness"),
        )


@dataclass
class Split:
    """A named collection of NL/SQL pairs (Seed / Dev / Synth / Train)."""

    name: str
    pairs: list[NLSQLPair] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def extend(self, pairs) -> None:
        self.pairs.extend(pairs)

    def hardness_counts(self) -> dict[str, int]:
        counts = {"easy": 0, "medium": 0, "hard": 0, "extra": 0}
        for pair in self.pairs:
            counts[pair.hardness] += 1
        return counts

    def sample_stratified(self, n: int, rng) -> list[NLSQLPair]:
        """Sample ``n`` pairs proportionally to the hardness distribution —
        the protocol of the paper's Table-4 silver-standard evaluation."""
        if n >= len(self.pairs):
            return list(self.pairs)
        by_class: dict[str, list[NLSQLPair]] = {}
        for pair in self.pairs:
            by_class.setdefault(pair.hardness, []).append(pair)
        sampled: list[NLSQLPair] = []
        total = len(self.pairs)
        for _level, bucket in sorted(by_class.items()):
            quota = round(n * len(bucket) / total)
            quota = min(quota, len(bucket))
            sampled.extend(rng.sample(bucket, quota))
        # Rounding may leave us short; top up deterministically.
        remaining = [p for p in self.pairs if p not in sampled]
        while len(sampled) < n and remaining:
            sampled.append(remaining.pop(0))
        return sampled[:n]

    # -- JSON I/O ------------------------------------------------------------------

    def to_json(self, path: str | Path) -> None:
        payload = {"name": self.name, "pairs": [p.to_dict() for p in self.pairs]}
        Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def from_json(cls, path: str | Path) -> "Split":
        payload = json.loads(Path(path).read_text())
        return cls(
            name=payload["name"],
            pairs=[NLSQLPair.from_dict(d) for d in payload["pairs"]],
        )

    def to_spider_json(self, path: str | Path) -> None:
        """Export in the Spider dataset's JSON layout (``question`` /
        ``query`` / ``db_id``), for interoperability with external
        NL-to-SQL tooling trained on Spider files."""
        payload = [
            {"question": p.question, "query": p.sql, "db_id": p.db_id}
            for p in self.pairs
        ]
        Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def from_spider_json(cls, path: str | Path, name: str | None = None) -> "Split":
        """Load a Spider-layout JSON file as a split."""
        payload = json.loads(Path(path).read_text())
        pairs = [
            NLSQLPair(
                question=entry["question"],
                sql=entry["query"],
                db_id=entry["db_id"],
                source="spider",
            )
            for entry in payload
        ]
        return cls(name=name or Path(path).stem, pairs=pairs)


@dataclass
class BenchmarkDomain:
    """Everything one ScienceBenchmark domain bundles together."""

    name: str
    database: Database
    enhanced: EnhancedSchema
    lexicon: DomainLexicon
    seed: Split
    dev: Split
    synth: Split | None = None
    nominal_stats: dict | None = None  # paper-scale Table-1 numbers

    def validate_gold_sql(self) -> list[str]:
        """Return the gold queries (seed+dev) that fail to execute — should
        be empty for a well-formed domain; tests assert this."""
        bad = []
        for split in (self.seed, self.dev):
            for pair in split:
                if self.database.try_execute(pair.sql) is None:
                    bad.append(pair.sql)
        return bad
