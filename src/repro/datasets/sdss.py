"""SDSS — the astrophysics domain of ScienceBenchmark.

The paper uses a 6-table, 61-column subset of the Sloan Digital Sky Survey
(photometric objects, spectroscopic objects, neighbour pairs plus three
auxiliary tables).  We rebuild that subset structurally — same table roles,
same cryptic column naming (``ra``, ``dec``, ``z``, single-letter photometric
bands ``u g r i z``) — and populate it with synthetic sky data whose
distributions support the paper's example queries (Starburst galaxies,
redshift cuts, colour cuts like ``u - r < 2.22``).

Nominal (paper-scale) statistics for Table 1: 6 tables, 61 columns,
86 M rows, 14.46 M rows/table average, 6.1 GB.
"""

from __future__ import annotations

import random

from repro.datasets import generators as gen
from repro.datasets.programs import Program, expand_programs
from repro.datasets.records import BenchmarkDomain, Split
from repro.engine.database import Database, create_database
from repro.nlgen.lexicon import DomainLexicon
from repro.schema.enhanced import EnhancedSchema
from repro.schema.introspect import profile_database
from repro.schema.model import Column, ColumnType, ForeignKey, Schema, TableDef

I = ColumnType.INTEGER
F = ColumnType.REAL
T = ColumnType.TEXT

#: Paper-reported full-scale statistics (Table 1).
NOMINAL_STATS = {
    "tables": 6,
    "columns": 61,
    "rows": 86_000_000,
    "avg_rows_per_table": 14_462_875,
    "size_gb": 6.1,
}

GALAXY_SUBCLASSES = ("STARBURST", "AGN", "BROADLINE", "STARFORMING")
STAR_SUBCLASSES = ("OB", "F5", "K3", "M2")
QSO_SUBCLASSES = ("BROADLINE", "AGN")
SURVEYS = ("sdss", "boss", "eboss", "segue1")
PROGRAMS = ("legacy", "southern", "special")
LINE_NAMES = ("H_alpha", "H_beta", "OIII", "NII", "MgII", "CIV")


def build_schema() -> Schema:
    """The 6-table / 61-column SDSS subset."""
    photoobj = TableDef(
        "photoobj",
        (
            Column("objid", I, alias="object id", nullable=False),
            Column("ra", F, alias="right ascension"),
            Column("dec", F, alias="declination"),
            Column("u", F, alias="magnitude u"),
            Column("g", F, alias="magnitude g"),
            Column("r", F, alias="magnitude r"),
            Column("i", F, alias="magnitude i"),
            Column("z", F, alias="magnitude z"),
            Column("run", I, alias="run number"),
            Column("rerun", I, alias="rerun number"),
            Column("camcol", I, alias="camera column"),
            Column("field", I, alias="field number"),
            Column("type", I, alias="photometric type"),
            Column("mode", I, alias="photometric mode"),
            Column("nchild", I, alias="number of child objects"),
            Column("clean", I, alias="clean photometry flag"),
            Column("rowc", F, alias="row center position"),
            Column("colc", F, alias="column center position"),
        ),
        primary_key="objid",
        alias="photometric object",
    )
    specobj = TableDef(
        "specobj",
        (
            Column("specobjid", I, alias="spectroscopic object id", nullable=False),
            Column("bestobjid", I, alias="best object id"),
            Column("class", T, alias="spectroscopic class"),
            Column("subclass", T, alias="spectroscopic subclass"),
            Column("z", F, alias="redshift"),
            Column("zerr", F, alias="redshift error"),
            Column("ra", F, alias="right ascension"),
            Column("dec", F, alias="declination"),
            Column("plate_id", I, alias="plate id"),
            Column("mjd", I, alias="modified julian date"),
            Column("fiberid", I, alias="fiber id"),
            Column("survey", T, alias="survey name"),
            Column("programname", T, alias="program name"),
            Column("sn_median", F, alias="median signal to noise"),
            Column("veldisp", F, alias="velocity dispersion"),
            Column("veldisperr", F, alias="velocity dispersion error"),
        ),
        primary_key="specobjid",
        alias="spectroscopic object",
    )
    neighbors = TableDef(
        "neighbors",
        (
            Column("objid", I, alias="object id"),
            Column("neighborobjid", I, alias="neighbor object id"),
            Column("distance", F, alias="distance in arc minutes"),
            Column("neighbortype", I, alias="neighbor type"),
            Column("neighbormode", I, alias="neighbor mode"),
            Column("mode", I, alias="mode"),
        ),
        alias="nearest neighbor",
    )
    photo_type = TableDef(
        "photo_type",
        (
            Column("value", I, alias="type value", nullable=False),
            Column("name", T, alias="type name"),
            Column("description", T, alias="type description"),
        ),
        primary_key="value",
        alias="photometric type",
    )
    speclineall = TableDef(
        "speclineall",
        (
            Column("specline_id", I, alias="spectral line id", nullable=False),
            Column("specobjid", I, alias="spectroscopic object id"),
            Column("linename", T, alias="spectral line name"),
            Column("wave", F, alias="wavelength"),
            Column("waveerr", F, alias="wavelength error"),
            Column("ew", F, alias="equivalent width"),
            Column("ewerr", F, alias="equivalent width error"),
            Column("height", F, alias="line height"),
            Column("sigma", F, alias="line sigma"),
        ),
        primary_key="specline_id",
        alias="spectral line",
    )
    platex = TableDef(
        "platex",
        (
            Column("plate_id", I, alias="plate id", nullable=False),
            Column("plate", I, alias="plate number"),
            Column("mjd", I, alias="modified julian date"),
            Column("ra", F, alias="right ascension"),
            Column("dec", F, alias="declination"),
            Column("survey", T, alias="survey name"),
            Column("programname", T, alias="program name"),
            Column("quality", T, alias="plate quality"),
            Column("nexp", I, alias="number of exposures"),
        ),
        primary_key="plate_id",
        alias="plate",
    )
    return Schema(
        name="sdss",
        tables=(photoobj, specobj, neighbors, photo_type, speclineall, platex),
        foreign_keys=(
            ForeignKey("specobj", "bestobjid", "photoobj", "objid"),
            ForeignKey("neighbors", "objid", "photoobj", "objid"),
            ForeignKey("neighbors", "neighborobjid", "photoobj", "objid"),
            ForeignKey("photoobj", "type", "photo_type", "value"),
            ForeignKey("speclineall", "specobjid", "specobj", "specobjid"),
            ForeignKey("specobj", "plate_id", "platex", "plate_id"),
        ),
    )


def populate(database: Database, scale: float, rng: random.Random) -> None:
    """Fill the SDSS instance with synthetic sky data."""
    n_photo = max(200, int(3000 * scale))
    n_spec = max(120, int(1800 * scale))
    n_neighbors = max(150, int(2400 * scale))
    n_lines = max(150, int(2600 * scale))
    n_plates = max(12, int(60 * scale))

    database.insert(
        "photo_type",
        [
            (0, "UNKNOWN", "Unknown object type"),
            (3, "GALAXY", "Extended galaxy profile"),
            (6, "STAR", "Point source star"),
        ],
    )

    plate_rows = []
    for plate_id in range(1, n_plates + 1):
        plate_rows.append(
            (
                plate_id,
                260 + plate_id,
                51600 + rng.randint(0, 4000),
                gen.bounded_float(rng, 0.0, 360.0),
                gen.bounded_float(rng, -20.0, 80.0),
                gen.skewed_choice(rng, list(SURVEYS)),
                gen.skewed_choice(rng, list(PROGRAMS)),
                gen.skewed_choice(rng, ["good", "marginal", "bad"]),
                rng.randint(3, 12),
            )
        )
    database.insert("platex", plate_rows)

    photo_rows = []
    photo_ids = []
    for idx in range(n_photo):
        objid = 1_000_000 + idx
        photo_ids.append(objid)
        # Colour model: galaxies are redder (larger u - r) than stars.
        obj_type = gen.skewed_choice(rng, [3, 6, 0], alpha=1.2)
        r_mag = gen.gauss_float(rng, 18.5, 1.4)
        if obj_type == 3:
            u_minus_r = gen.gauss_float(rng, 2.3, 0.7)
        else:
            u_minus_r = gen.gauss_float(rng, 1.2, 0.6)
        u_mag = round(r_mag + u_minus_r, 4)
        photo_rows.append(
            (
                objid,
                gen.bounded_float(rng, 0.0, 360.0),
                gen.bounded_float(rng, -20.0, 80.0),
                u_mag,
                round(r_mag + gen.gauss_float(rng, 0.6, 0.3), 4),
                r_mag,
                round(r_mag - gen.gauss_float(rng, 0.3, 0.2), 4),
                round(r_mag - gen.gauss_float(rng, 0.5, 0.25), 4),
                rng.randint(94, 8162),
                rng.choice([40, 41, 301]),
                rng.randint(1, 6),
                rng.randint(11, 800),
                obj_type,
                rng.choice([1, 1, 1, 2]),
                gen.lognormal_int(rng, 1.2, 0.9),
                rng.choice([0, 1, 1, 1]),
                gen.bounded_float(rng, 0.0, 2048.0),
                gen.bounded_float(rng, 0.0, 1489.0),
            )
        )
    database.insert("photoobj", photo_rows)

    spec_rows = []
    spec_ids = []
    for idx in range(n_spec):
        specobjid = 3_000_000 + idx
        spec_ids.append(specobjid)
        best = rng.choice(photo_ids)
        cls = gen.skewed_choice(rng, ["GALAXY", "STAR", "QSO"], alpha=1.1)
        if cls == "GALAXY":
            subclass = gen.skewed_choice(rng, list(GALAXY_SUBCLASSES))
            redshift = abs(gen.gauss_float(rng, 0.35, 0.3))
        elif cls == "STAR":
            subclass = gen.skewed_choice(rng, list(STAR_SUBCLASSES))
            redshift = abs(gen.gauss_float(rng, 0.0002, 0.0002))
        else:
            subclass = gen.skewed_choice(rng, list(QSO_SUBCLASSES))
            redshift = abs(gen.gauss_float(rng, 1.4, 0.8))
        subclass_value = subclass if rng.random() > 0.1 else None
        spec_rows.append(
            (
                specobjid,
                best,
                cls,
                subclass_value,
                redshift,
                gen.bounded_float(rng, 0.00001, 0.003, 6),
                gen.bounded_float(rng, 0.0, 360.0),
                gen.bounded_float(rng, -20.0, 80.0),
                rng.randint(1, n_plates),
                51600 + rng.randint(0, 4000),
                rng.randint(1, 640),
                gen.skewed_choice(rng, list(SURVEYS)),
                gen.skewed_choice(rng, list(PROGRAMS)),
                gen.bounded_float(rng, 0.5, 40.0, 3),
                gen.bounded_float(rng, 30.0, 350.0, 2),
                gen.bounded_float(rng, 1.0, 40.0, 2),
            )
        )
    database.insert("specobj", spec_rows)

    neighbor_rows = []
    for _ in range(n_neighbors):
        a, b = rng.sample(photo_ids, 2)
        neighbor_rows.append(
            (
                a,
                b,
                gen.bounded_float(rng, 0.001, 0.5, 5),
                gen.skewed_choice(rng, [3, 6, 0], alpha=1.2),
                rng.choice([1, 1, 2, 2, 3]),
                rng.choice([1, 1, 1, 2]),
            )
        )
    database.insert("neighbors", neighbor_rows)

    line_rows = []
    for idx in range(n_lines):
        line_rows.append(
            (
                5_000_000 + idx,
                rng.choice(spec_ids),
                gen.skewed_choice(rng, list(LINE_NAMES)),
                gen.bounded_float(rng, 3800.0, 9200.0, 2),
                gen.bounded_float(rng, 0.01, 2.0, 3),
                gen.gauss_float(rng, 12.0, 18.0, 3),
                gen.bounded_float(rng, 0.1, 4.0, 3),
                gen.bounded_float(rng, 1.0, 80.0, 2),
                gen.bounded_float(rng, 0.5, 6.0, 3),
            )
        )
    database.insert("speclineall", line_rows)


def build_lexicon() -> DomainLexicon:
    """Astrophysics phrasing used by domain experts."""
    lex = DomainLexicon(name="sdss")
    lex.add_table("photoobj", "photometric objects", "photometrically observed objects")
    lex.add_table("specobj", "spectroscopic objects", "spectroscopically observed objects")
    lex.add_table("neighbors", "nearest neighbor objects", "neighbor pairs")
    lex.add_table("speclineall", "spectral lines", "emission lines")
    lex.add_table("platex", "plates", "spectroscopic plates")

    lex.add_column("specobj", "z", "redshift")
    lex.add_column("specobj", "ra", "right ascension")
    lex.add_column("specobj", "dec", "declination")
    lex.add_column("specobj", "class", "spectroscopic class", "class")
    lex.add_column("specobj", "subclass", "spectroscopic subclass", "subclass")
    lex.add_column("specobj", "bestobjid", "best object id")
    lex.add_column("specobj", "veldisp", "velocity dispersion")
    lex.add_column("specobj", "sn_median", "median signal to noise")
    lex.add_column("photoobj", "ra", "right ascension")
    lex.add_column("photoobj", "dec", "declination")
    lex.add_column("photoobj", "u", "magnitude u", "ultraviolet magnitude")
    lex.add_column("photoobj", "g", "magnitude g", "green magnitude")
    lex.add_column("photoobj", "r", "magnitude r", "infrared magnitude")
    lex.add_column("photoobj", "i", "magnitude i")
    lex.add_column("photoobj", "z", "magnitude z")
    lex.add_column("photoobj", "objid", "object id")
    lex.add_column("neighbors", "distance", "distance", "angular distance")
    lex.add_column("neighbors", "neighbormode", "neighbor mode")
    lex.add_column("speclineall", "ew", "equivalent width")
    lex.add_column("speclineall", "wave", "wavelength")
    lex.add_column("speclineall", "linename", "spectral line name", "line name")

    lex.add_value("specobj", "class", "GALAXY", "galaxies", "galaxy")
    lex.add_value("specobj", "class", "STAR", "stars", "star")
    lex.add_value("specobj", "class", "QSO", "quasars", "QSO")
    lex.add_value("specobj", "subclass", "STARBURST", "Starburst galaxies", "starburst")
    lex.add_value("specobj", "subclass", "AGN", "active galactic nuclei", "AGN")
    lex.add_value("specobj", "subclass", "STARFORMING", "star-forming galaxies")
    lex.add_value("specobj", "subclass", "BROADLINE", "broadline objects")
    return lex


def _question_programs() -> list[Program]:
    """The expert question catalogue for SDSS (seed + dev)."""
    return [
        Program(
            nl=(
                "Find all {name} objects.",
                "Return the spectroscopic objects that lie in the {name} subclass.",
            ),
            sql="SELECT specobjid FROM specobj WHERE subclass = '{subclass}'",
            params={
                "subclass": ("STARBURST", "AGN", "STARFORMING", "BROADLINE"),
                "name": ("Starburst", "AGN", "star-forming", "broadline"),
            },
        ),
        Program(
            nl=(
                "What is the object id, right ascension, declination and redshift of spectroscopically observed {name} with redshift greater than {lo} but less than {hi}?",
                "Show the best object id, right ascension, declination and redshift of {name} whose redshift lies above {lo} and below {hi}.",
            ),
            sql=(
                "SELECT bestobjid, ra, dec, z FROM specobj "
                "WHERE class = '{cls}' AND z > {lo} AND z < {hi}"
            ),
            params={
                "cls": ("GALAXY", "QSO", "GALAXY", "QSO"),
                "name": ("galaxies", "quasars", "galaxies", "quasars"),
                "lo": (0.5, 1.0, 0.2, 2.0),
                "hi": (1, 2, 0.4, 3),
            },
        ),
        Program(
            nl=(
                "Find the photometric objects with object ids and spectroscopic object id whose spectroscopic class is {name}, with the difference of magnitude u and magnitude r less than {hi} and greater than {lo}.",
                "List object id and spectroscopic object id for photometric objects of class {name} where magnitude u minus magnitude r is below {hi} and above {lo}.",
            ),
            sql=(
                "SELECT T1.objid, T2.specobjid FROM photoobj AS T1 "
                "JOIN specobj AS T2 ON T2.bestobjid = T1.objid "
                "WHERE T2.class = '{cls}' AND T1.u - T1.r < {hi} AND T1.u - T1.r > {lo}"
            ),
            params={
                "cls": ("GALAXY", "STAR", "GALAXY", "QSO"),
                "name": ("GALAXY", "STAR", "GALAXY", "QSO"),
                "hi": (2.22, 1.8, 3.0, 2.0),
                "lo": (1, 0.5, 2, 0.8),
            },
        ),
        Program(
            nl=(
                "Find the count of spectroscopic objects grouped by their corresponding class.",
                "How many spectroscopic objects are there for each spectroscopic class?",
            ),
            sql="SELECT COUNT(*), class FROM specobj GROUP BY class",
            params={},
        ),
        Program(
            nl=(
                "How many {name} have been observed spectroscopically?",
                "Count the spectroscopic objects whose class is {cls}.",
            ),
            sql="SELECT COUNT(*) FROM specobj WHERE class = '{cls}'",
            params={
                "cls": ("GALAXY", "STAR", "QSO", "GALAXY"),
                "name": ("galaxies", "stars", "quasars", "galaxies"),
            },
        ),
        Program(
            nl=(
                "What is the average redshift of {name}?",
                "Compute the mean redshift over all spectroscopic objects of class {cls}.",
            ),
            sql="SELECT AVG(z) FROM specobj WHERE class = '{cls}'",
            params={
                "cls": ("GALAXY", "QSO", "STAR", "GALAXY"),
                "name": ("galaxies", "quasars", "stars", "galaxies"),
            },
        ),
        Program(
            nl=(
                "Find the spectroscopic object with the highest redshift.",
                "Which spectroscopic object has the largest redshift?",
            ),
            sql="SELECT specobjid FROM specobj ORDER BY z DESC LIMIT 1",
            params={},
            only="seed",
        ),
        Program(
            nl=(
                "List the {k} spectroscopic objects with the highest velocity dispersion.",
                "Return the top {k} spectroscopic objects by velocity dispersion.",
            ),
            sql="SELECT specobjid FROM specobj ORDER BY veldisp DESC LIMIT {k}",
            params={"k": (5, 10, 3, 20)},
        ),
        Program(
            nl=(
                "Find the right ascension and declination of photometric objects with clean photometry flag {flag}.",
                "Show right ascension and declination for photometric objects whose clean flag equals {flag}.",
            ),
            sql="SELECT ra, dec FROM photoobj WHERE clean = {flag}",
            params={"flag": (1, 0, 1, 0)},
        ),
        Program(
            nl=(
                "Find the object ids of nearest neighbor objects with neighbor mode {mode}.",
                "Which object ids appear in the neighbors table with neighbor mode {mode}?",
            ),
            sql="SELECT objid FROM neighbors WHERE neighbormode = {mode}",
            params={"mode": (2, 1, 3, 2)},
        ),
        Program(
            nl=(
                "What is the average distance of nearest neighbor objects of neighbor type {t}?",
                "Compute the mean angular distance of neighbor pairs whose neighbor type equals {t}.",
            ),
            sql="SELECT AVG(distance) FROM neighbors WHERE neighbortype = {t}",
            params={"t": (3, 6, 0, 3)},
        ),
        Program(
            nl=(
                "Find spectroscopic objects whose redshift is greater than the average redshift of all spectroscopic objects.",
                "Which spectroscopic objects have a redshift above the mean redshift?",
            ),
            sql="SELECT specobjid FROM specobj WHERE z > (SELECT AVG(z) FROM specobj)",
            params={},
        ),
        Program(
            nl=(
                "Find the photometric objects whose object id appears among the best object ids of {name}.",
                "List photometric objects matched to spectroscopic objects of class {cls}.",
            ),
            sql=(
                "SELECT objid FROM photoobj WHERE objid IN "
                "(SELECT bestobjid FROM specobj WHERE class = '{cls}')"
            ),
            params={
                "cls": ("GALAXY", "STAR", "QSO", "GALAXY"),
                "name": ("galaxies", "stars", "quasars", "galaxies"),
            },
        ),
        Program(
            nl=(
                "Count the spectroscopic objects for each survey name.",
                "How many spectroscopic objects were taken in each survey?",
            ),
            sql="SELECT COUNT(*), survey FROM specobj GROUP BY survey",
            params={},
        ),
        Program(
            nl=(
                "Find the survey names with more than {n} spectroscopic objects.",
                "Which surveys contain over {n} spectroscopic objects?",
            ),
            sql="SELECT survey FROM specobj GROUP BY survey HAVING COUNT(*) > {n}",
            params={"n": (50, 100, 20, 200)},
        ),
        Program(
            nl=(
                "What is the maximum equivalent width measured for the spectral line {line}?",
                "Find the largest equivalent width among spectral lines named {line}.",
            ),
            sql="SELECT MAX(ew) FROM speclineall WHERE linename = '{line}'",
            params={"line": ("H_alpha", "OIII", "H_beta", "MgII")},
        ),
        Program(
            nl=(
                "Find the spectral line names and their average wavelength for each spectral line name.",
                "What is the mean wavelength per spectral line name?",
            ),
            sql="SELECT linename, AVG(wave) FROM speclineall GROUP BY linename",
            params={},
        ),
        Program(
            nl=(
                "Find the redshift of spectroscopic objects whose spectral lines have equivalent width greater than {w}.",
                "Show the redshift for spectroscopic objects with an emission line whose equivalent width is above {w}.",
            ),
            sql=(
                "SELECT T1.z FROM specobj AS T1 JOIN speclineall AS T2 "
                "ON T2.specobjid = T1.specobjid WHERE T2.ew > {w}"
            ),
            params={"w": (40, 25, 55, 10)},
        ),
        Program(
            nl=(
                "Find the right ascension and declination of {name} with redshift between {lo} and {hi}.",
                "Give right ascension and declination of spectroscopic objects of class {cls} whose redshift lies between {lo} and {hi}.",
            ),
            sql=(
                "SELECT ra, dec FROM specobj WHERE class = '{cls}' "
                "AND z BETWEEN {lo} AND {hi}"
            ),
            params={
                "cls": ("GALAXY", "QSO", "GALAXY", "QSO"),
                "name": ("galaxies", "quasars", "galaxies", "quasars"),
                "lo": (0.1, 1.5, 0.3, 0.8),
                "hi": (0.4, 2.5, 0.7, 1.6),
            },
        ),
        Program(
            nl=(
                "Count the photometric objects for each photometric type value.",
                "How many photometric objects are there per photometric type?",
            ),
            sql="SELECT COUNT(*), type FROM photoobj GROUP BY type",
            params={},
        ),
        Program(
            nl=(
                "Find the plate quality of plates from the survey {survey}.",
                "List the quality of spectroscopic plates belonging to survey {survey}.",
            ),
            sql="SELECT quality FROM platex WHERE survey = '{survey}'",
            params={"survey": ("sdss", "boss", "eboss", "segue1")},
        ),
        # -- dev-only harder programs (drive the Dev hardness skew) -----------
        Program(
            nl=(
                "",
                "Find object id and spectroscopic object id of {name} whose difference of magnitude u and magnitude r is greater than {lo}, sorted by redshift in descending order.",
            ),
            sql=(
                "SELECT T1.objid, T2.specobjid FROM photoobj AS T1 "
                "JOIN specobj AS T2 ON T2.bestobjid = T1.objid "
                "WHERE T2.class = '{cls}' AND T1.u - T1.r > {lo} "
                "ORDER BY T2.z DESC"
            ),
            params={
                "cls": ("GALAXY", "QSO", "GALAXY"),
                "name": ("galaxies", "quasars", "galaxies"),
                "lo": (2.2, 1.5, 2.8),
            },
            only="dev",
        ),
        Program(
            nl=(
                "",
                "What are the spectroscopic classes whose average redshift exceeds {z}, together with the number of objects in each class?",
            ),
            sql=(
                "SELECT class, COUNT(*) FROM specobj GROUP BY class "
                "HAVING AVG(z) > {z}"
            ),
            params={"z": (0.3, 0.5, 0.8)},
            only="dev",
        ),
        Program(
            nl=(
                "",
                "Find the redshift and velocity dispersion of {name} whose median signal to noise is above {sn} and velocity dispersion is greater than {vd}.",
            ),
            sql=(
                "SELECT z, veldisp FROM specobj WHERE class = '{cls}' "
                "AND sn_median > {sn} AND veldisp > {vd}"
            ),
            params={
                "cls": ("GALAXY", "QSO", "STAR"),
                "name": ("galaxies", "quasars", "stars"),
                "sn": (10, 5, 20),
                "vd": (150, 100, 200),
            },
            only="dev",
        ),
        Program(
            nl=(
                "",
                "Which photometric objects appear as neighbor object ids with angular distance below {d} but do not appear among the best object ids of spectroscopic objects?",
            ),
            sql=(
                "SELECT neighborobjid FROM neighbors WHERE distance < {d} "
                "EXCEPT SELECT bestobjid FROM specobj"
            ),
            params={"d": (0.05, 0.1, 0.02)},
            only="dev",
        ),
        Program(
            nl=(
                "",
                "Find the spectroscopic object ids of {name} whose equivalent width of the line {line} is larger than the average equivalent width of all spectral lines.",
            ),
            sql=(
                "SELECT T1.specobjid FROM specobj AS T1 JOIN speclineall AS T2 "
                "ON T2.specobjid = T1.specobjid WHERE T1.class = '{cls}' "
                "AND T2.linename = '{line}' "
                "AND T2.ew > (SELECT AVG(ew) FROM speclineall)"
            ),
            params={
                "cls": ("GALAXY", "QSO", "GALAXY"),
                "name": ("galaxies", "quasars", "galaxies"),
                "line": ("H_alpha", "MgII", "OIII"),
            },
            only="dev",
        ),
        Program(
            nl=(
                "Find the number of spectroscopic objects per program name.",
                "",
            ),
            sql="SELECT COUNT(*), programname FROM specobj GROUP BY programname",
            params={},
            only="seed",
        ),
        Program(
            nl=(
                "Find the minimum magnitude r of photometric objects of type {t}.",
                "",
            ),
            sql="SELECT MIN(r) FROM photoobj WHERE type = {t}",
            params={"t": (3, 6)},
            only="seed",
        ),
        Program(
            nl=(
                "List the distinct survey names of the spectroscopic objects.",
                "",
            ),
            sql="SELECT DISTINCT survey FROM specobj",
            params={},
            only="seed",
        ),
        # -- shared medium programs (bulk of both splits) ----------------------
        Program(
            nl=(
                "Find the redshift and redshift error of {name}.",
                "Show redshift together with its error for spectroscopic objects of class {cls}.",
            ),
            sql="SELECT z, zerr FROM specobj WHERE class = '{cls}'",
            params={
                "cls": ("GALAXY", "STAR", "QSO", "GALAXY", "QSO", "STAR"),
                "name": ("galaxies", "stars", "quasars", "galaxies", "quasars", "stars"),
            },
        ),
        Program(
            nl=(
                "Find the right ascension, declination and magnitude r of photometric objects with magnitude r less than {m}.",
                "List right ascension, declination and infrared magnitude for photometric objects brighter than magnitude r {m}.",
            ),
            sql="SELECT ra, dec, r FROM photoobj WHERE r < {m}",
            params={"m": (17.0, 18.5, 16.0, 19.0, 17.5, 20.0)},
        ),
        Program(
            nl=(
                "Find the wavelength and equivalent width of spectral lines named {line}.",
                "Give the wavelength and equivalent width for every spectral line called {line}.",
            ),
            sql="SELECT wave, ew FROM speclineall WHERE linename = '{line}'",
            params={"line": ("H_alpha", "OIII", "H_beta", "NII", "MgII", "CIV")},
        ),
        Program(
            nl=(
                "List the fiber id and plate id of spectroscopic objects from the survey {s}.",
                "Show fiber id and plate id of spectroscopic objects belonging to the {s} survey.",
            ),
            sql="SELECT fiberid, plate_id FROM specobj WHERE survey = '{s}'",
            params={"s": ("sdss", "boss", "eboss", "segue1")},
        ),
        Program(
            nl=(
                "What is the average velocity dispersion of {name}?",
                "Find the mean velocity dispersion among spectroscopic objects of class {cls}.",
            ),
            sql="SELECT AVG(veldisp) FROM specobj WHERE class = '{cls}'",
            params={
                "cls": ("GALAXY", "QSO", "STAR", "GALAXY"),
                "name": ("galaxies", "quasars", "stars", "galaxies"),
            },
        ),
        Program(
            nl=(
                "How many nearest neighbor objects of neighbor type {t} are there for each neighbor mode?",
                "Count the neighbor pairs with neighbor type {t}, grouped by neighbor mode.",
            ),
            sql=(
                "SELECT COUNT(*), neighbormode FROM neighbors "
                "WHERE neighbortype = {t} GROUP BY neighbormode"
            ),
            params={"t": (3, 6, 0, 3)},
        ),
        Program(
            nl=(
                "Find the maximum and minimum redshift of {name}.",
                "What are the largest and smallest redshift values for class {cls}?",
            ),
            sql="SELECT MAX(z), MIN(z) FROM specobj WHERE class = '{cls}'",
            params={
                "cls": ("GALAXY", "QSO", "STAR", "GALAXY"),
                "name": ("galaxies", "quasars", "stars", "galaxies"),
            },
        ),
        Program(
            nl=(
                "What is the total number of exposures over plates with plate quality {q}?",
                "Sum the exposures of all plates whose quality is {q}.",
            ),
            sql="SELECT SUM(nexp) FROM platex WHERE quality = '{q}'",
            params={"q": ("good", "marginal", "bad", "good")},
        ),
        Program(
            nl=(
                "Find the median signal to noise and redshift of spectroscopic objects on plate id {p}.",
                "Show the signal to noise together with redshift for objects observed on plate {p}.",
            ),
            sql="SELECT sn_median, z FROM specobj WHERE plate_id = {p}",
            params={"p": (1, 5, 9, 3, 7, 11)},
        ),
        # -- seed-only extra-hard programs (Seed has 24% extra in Table 2) -----
        Program(
            nl=(
                "Find the object id and magnitude u of photometric {name} whose difference of magnitude g and magnitude r is greater than {lo} and magnitude r is less than {m}.",
                "",
            ),
            sql=(
                "SELECT T1.objid, T1.u FROM photoobj AS T1 "
                "JOIN specobj AS T2 ON T2.bestobjid = T1.objid "
                "WHERE T2.class = '{cls}' AND T1.g - T1.r > {lo} AND T1.r < {m}"
            ),
            params={
                "cls": ("GALAXY", "STAR", "QSO", "GALAXY"),
                "name": ("galaxies", "stars", "quasars", "galaxies"),
                "lo": (0.5, 0.2, 0.8, 1.0),
                "m": (19.0, 18.0, 20.0, 17.5),
            },
            only="seed",
        ),
        Program(
            nl=(
                "Find the redshift and subclass of {name} whose velocity dispersion is above the average velocity dispersion and redshift is greater than {z}.",
                "",
            ),
            sql=(
                "SELECT z, subclass FROM specobj WHERE class = '{cls}' "
                "AND veldisp > (SELECT AVG(veldisp) FROM specobj) AND z > {z}"
            ),
            params={
                "cls": ("GALAXY", "QSO", "GALAXY", "QSO"),
                "name": ("galaxies", "quasars", "galaxies", "quasars"),
                "z": (0.2, 1.0, 0.5, 1.5),
            },
            only="seed",
        ),
        Program(
            nl=(
                "For each spectroscopic class, find the class and average redshift of objects with median signal to noise above {sn}, keeping classes with more than {n} such objects, ordered by the average redshift in descending order.",
                "",
            ),
            sql=(
                "SELECT class, AVG(z) FROM specobj WHERE sn_median > {sn} "
                "GROUP BY class HAVING COUNT(*) > {n} ORDER BY AVG(z) DESC"
            ),
            params={"sn": (5, 10, 2, 15), "n": (10, 20, 5, 30)},
            only="seed",
        ),
        Program(
            nl=(
                "Find the object ids and angular distance of nearest neighbor objects of neighbor type {t} whose angular distance is smaller than {d}, sorted by distance, limited to the {k} closest pairs.",
                "",
            ),
            sql=(
                "SELECT objid, distance FROM neighbors WHERE neighbortype = {t} "
                "AND distance < {d} ORDER BY distance ASC LIMIT {k}"
            ),
            params={"t": (3, 6, 0, 3), "d": (0.1, 0.2, 0.05, 0.3), "k": (5, 10, 3, 8)},
            only="seed",
        ),
        Program(
            nl=(
                "Find the spectroscopic object ids of {name} together with the stars, by listing objects whose subclass is {s1} as well as objects whose redshift exceeds {z}.",
                "",
            ),
            sql=(
                "SELECT specobjid FROM specobj WHERE subclass = '{s1}' "
                "UNION SELECT specobjid FROM specobj WHERE z > {z}"
            ),
            params={
                "s1": ("STARBURST", "AGN", "OB", "STARFORMING"),
                "name": ("starburst galaxies", "active galactic nuclei", "OB stars", "star-forming galaxies"),
                "z": (2.0, 1.5, 2.5, 1.0),
            },
            only="seed",
        ),
        # -- dev-only hard/extra programs (Dev skews hard in Table 2) ----------
        Program(
            nl=(
                "",
                "List the right ascension and declination of photometric objects that are best objects of {name} and have magnitude r below {m}.",
            ),
            sql=(
                "SELECT ra, dec FROM photoobj WHERE objid IN "
                "(SELECT bestobjid FROM specobj WHERE class = '{cls}') AND r < {m}"
            ),
            params={
                "cls": ("GALAXY", "QSO", "STAR", "GALAXY"),
                "name": ("galaxies", "quasars", "stars", "galaxies"),
                "m": (18.0, 19.0, 17.0, 20.0),
            },
            only="dev",
        ),
        Program(
            nl=(
                "",
                "Return the spectroscopic objects whose subclass is {s1} as well as those whose redshift is above {z}.",
            ),
            sql=(
                "SELECT specobjid FROM specobj WHERE subclass = '{s1}' "
                "UNION SELECT specobjid FROM specobj WHERE z > {z}"
            ),
            params={
                "s1": ("STARBURST", "AGN", "BROADLINE", "STARFORMING"),
                "z": (1.8, 2.2, 1.2, 2.8),
            },
            only="dev",
        ),
        Program(
            nl=(
                "",
                "Find the neighbor mode and spectroscopic class for nearest neighbor objects joined through their photometric object, where the redshift is above {z} and the angular distance is below {d}.",
            ),
            sql=(
                "SELECT T1.neighbormode, T3.class FROM neighbors AS T1 "
                "JOIN photoobj AS T2 ON T1.objid = T2.objid "
                "JOIN specobj AS T3 ON T3.bestobjid = T2.objid "
                "WHERE T3.z > {z} AND T1.distance < {d}"
            ),
            params={"z": (0.5, 0.2, 1.0, 0.8), "d": (0.2, 0.4, 0.1, 0.3)},
            only="dev",
        ),
        Program(
            nl=(
                "",
                "For spectroscopic objects with redshift above {z}, report each class and its object count, keeping classes with more than {n} objects, ordered by the count in descending order, limited to {k} classes.",
            ),
            sql=(
                "SELECT class, COUNT(*) FROM specobj WHERE z > {z} GROUP BY class "
                "HAVING COUNT(*) > {n} ORDER BY COUNT(*) DESC LIMIT {k}"
            ),
            params={"z": (0.1, 0.3, 0.5, 0.05), "n": (5, 10, 2, 20), "k": (2, 3, 1, 2)},
            only="dev",
        ),
        Program(
            nl=(
                "",
                "Find spectroscopic objects of class {cls} whose velocity dispersion is above the average velocity dispersion of all spectroscopic objects and whose median signal to noise exceeds {sn}.",
            ),
            sql=(
                "SELECT specobjid FROM specobj WHERE class = '{cls}' "
                "AND veldisp > (SELECT AVG(veldisp) FROM specobj) AND sn_median > {sn}"
            ),
            params={"cls": ("GALAXY", "QSO", "STAR", "GALAXY"), "sn": (5, 10, 15, 8)},
            only="dev",
        ),
        Program(
            nl=(
                "",
                "List object id and the difference of magnitude u and magnitude r for photometric objects where that difference is above {x}, ordered by magnitude r, limited to {k} rows.",
            ),
            sql=(
                "SELECT objid, u - r FROM photoobj WHERE u - r > {x} "
                "ORDER BY r ASC LIMIT {k}"
            ),
            params={"x": (2.0, 1.5, 2.5, 3.0), "k": (10, 5, 20, 8)},
            only="dev",
        ),
        Program(
            nl=(
                "",
                "Find the redshift and equivalent width of {name} joined with their spectral lines named {line}, where the equivalent width is greater than {w} and the redshift is below {z}.",
            ),
            sql=(
                "SELECT T1.z, T2.ew FROM specobj AS T1 "
                "JOIN speclineall AS T2 ON T2.specobjid = T1.specobjid "
                "WHERE T1.class = '{cls}' AND T2.linename = '{line}' "
                "AND T2.ew > {w} AND T1.z < {z}"
            ),
            params={
                "cls": ("GALAXY", "QSO", "GALAXY", "QSO"),
                "name": ("galaxies", "quasars", "galaxies", "quasars"),
                "line": ("H_alpha", "MgII", "OIII", "CIV"),
                "w": (10, 5, 20, 15),
                "z": (0.8, 2.0, 0.5, 2.5),
            },
            only="dev",
        ),
        Program(
            nl=(
                "",
                "Which spectroscopic objects of class {cls} appear among the spectroscopic object ids that have a spectral line named {line}?",
            ),
            sql=(
                "SELECT specobjid FROM specobj WHERE class = '{cls}' "
                "AND specobjid IN (SELECT specobjid FROM speclineall "
                "WHERE linename = '{line}')"
            ),
            params={
                "cls": ("GALAXY", "QSO", "STAR", "GALAXY"),
                "line": ("H_alpha", "MgII", "OIII", "H_beta"),
            },
            only="dev",
        ),
    ]


def build(scale: float = 1.0, seed: int = 13) -> BenchmarkDomain:
    """Construct the full SDSS benchmark domain."""
    rng = random.Random(seed)
    schema = build_schema()
    database = create_database(schema)
    populate(database, scale, rng)

    enhanced = profile_database(database)
    _refine_enhanced(enhanced)
    lexicon = build_lexicon()

    seed_pairs, dev_pairs = expand_programs(_question_programs(), db_id="sdss")
    return BenchmarkDomain(
        name="sdss",
        database=database,
        enhanced=enhanced,
        lexicon=lexicon,
        seed=Split(name="sdss-seed", pairs=seed_pairs),
        dev=Split(name="sdss-dev", pairs=dev_pairs),
        nominal_stats=dict(NOMINAL_STATS),
    )


def _refine_enhanced(enhanced: EnhancedSchema) -> None:
    """The domain experts' one-shot manual refinement (Section 3.3.2)."""
    enhanced.mark_math_group("photoobj", "photoobj:magnitude", "u", "g", "r", "i", "z")
    enhanced.mark_non_aggregatable(
        "photoobj", "run", "rerun", "camcol", "field", "type", "mode"
    )
    enhanced.mark_non_aggregatable("specobj", "plate_id", "mjd", "fiberid")
    enhanced.mark_non_aggregatable("neighbors", "neighbortype", "neighbormode", "mode")
    enhanced.mark_categorical("photoobj", "type", "mode", "clean")
    enhanced.mark_categorical("specobj", "class", "subclass", "survey", "programname")
    enhanced.mark_categorical("neighbors", "neighbortype", "neighbormode")
    enhanced.mark_categorical("speclineall", "linename")
    enhanced.mark_categorical("platex", "survey", "programname", "quality")
