"""Deterministic sentence embeddings (the SentenceBERT stand-in).

The paper uses SentenceBERT twice: as an automatic SQL-to-NL quality metric
(Table 3) and inside the Phase-4 discriminator, which picks the candidate
question closest to the geometric median of all candidates (Eq. 1).  Both
uses only require an embedding space in which paraphrases land close together
and unrelated sentences far apart.  We build such a space offline and
deterministically from hashed word/character n-gram features.
"""

from repro.embeddings.hashing import SentenceEmbedder, embed
from repro.embeddings.similarity import (
    cosine_similarity,
    geometric_median_ranking,
    select_top_k,
)

__all__ = [
    "SentenceEmbedder",
    "embed",
    "cosine_similarity",
    "geometric_median_ranking",
    "select_top_k",
]
