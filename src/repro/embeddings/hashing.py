"""Hashed n-gram sentence embeddings.

Features per sentence: lower-cased word unigrams and bigrams plus character
trigrams inside each word.  Each feature is hashed with CRC-32 (stable across
processes — Python's builtin ``hash`` is salted and therefore unusable) onto
a fixed-dimension sign-hashed vector, TF-weighted and L2-normalised.

The construction gives the two properties the pipeline needs:

* paraphrases share most content words → high cosine similarity;
* sentences about different columns/values share few features → low cosine.
"""

from __future__ import annotations

import re
import zlib

import numpy as np

#: Default embedding dimensionality; 512 keeps collisions negligible for
#: benchmark-sized vocabularies while staying cheap.
DEFAULT_DIM = 512

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:\.[0-9]+)?")

#: Words carrying almost no content; down-weighted rather than removed so
#: "greater than" vs "less than" still differ.
_STOPWORDS = frozenset(
    "the a an of for and or to in on with that which are is was were "
    "all any each by from as at be this those these there".split()
)


def _tokens(text: str) -> list[str]:
    return _TOKEN_RE.findall(text.lower())


class SentenceEmbedder:
    """Embeds sentences into a fixed-dimension hashed feature space."""

    def __init__(self, dim: int = DEFAULT_DIM) -> None:
        if dim <= 0:
            raise ValueError("embedding dimension must be positive")
        self.dim = dim

    def embed(self, text: str) -> np.ndarray:
        """Embed one sentence as a unit-norm vector (zeros if no tokens)."""
        vector = np.zeros(self.dim, dtype=np.float64)
        tokens = _tokens(text)
        if not tokens:
            return vector
        for feature, weight in self._features(tokens):
            digest = zlib.crc32(feature.encode("utf-8"))
            index = digest % self.dim
            sign = 1.0 if (digest >> 16) & 1 else -1.0
            vector[index] += sign * weight
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector

    def embed_all(self, texts: list[str]) -> np.ndarray:
        """Embed a batch of sentences into an ``(n, dim)`` matrix."""
        if not texts:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.stack([self.embed(t) for t in texts])

    def _features(self, tokens: list[str]):
        for token in tokens:
            weight = 0.25 if token in _STOPWORDS else 1.0
            yield f"w:{token}", weight
            if len(token) > 3 and token not in _STOPWORDS:
                padded = f"^{token}$"
                for i in range(len(padded) - 2):
                    yield f"c:{padded[i:i + 3]}", 0.3
        for left, right in zip(tokens, tokens[1:]):
            yield f"b:{left}_{right}", 0.5


_DEFAULT_EMBEDDER = SentenceEmbedder()


def embed(text: str) -> np.ndarray:
    """Embed with the module-level default embedder."""
    return _DEFAULT_EMBEDDER.embed(text)
