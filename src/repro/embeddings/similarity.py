"""Cosine similarity and the geometric-median candidate selection of Eq. 1.

Phase 4 of the pipeline (the *discriminative phase*) scores every candidate
NL question by the sum of its cosine similarities to all candidates and picks
the maximiser — the embedding closest to the centroid / geometric median.
The process repeats on the remaining set until ``k`` candidates are chosen.
"""

from __future__ import annotations

import numpy as np


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors; 0.0 when either is all-zero."""
    norm_a = np.linalg.norm(a)
    norm_b = np.linalg.norm(b)
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return float(np.dot(a, b) / (norm_a * norm_b))


def geometric_median_ranking(embeddings: np.ndarray) -> list[int]:
    """Indices of candidates ranked by Eq. 1's objective, best first.

    The score of candidate ``y`` is ``sum_i CosSim(x_i, y)``; ties broken by
    original index so the ranking is fully deterministic.
    """
    n = embeddings.shape[0]
    if n == 0:
        return []
    norms = np.linalg.norm(embeddings, axis=1)
    safe = np.where(norms == 0, 1.0, norms)
    unit = embeddings / safe[:, None]
    similarity = unit @ unit.T
    remaining = list(range(n))
    ranking: list[int] = []
    while remaining:
        scores = [
            (float(sum(similarity[i][j] for j in remaining)), i) for i in remaining
        ]
        best_score, best_index = max(scores, key=lambda pair: (pair[0], -pair[1]))
        ranking.append(best_index)
        remaining.remove(best_index)
    return ranking


def select_top_k(candidates: list[str], k: int, embedder=None) -> list[str]:
    """The paper's candidate-selection step: top-``k`` by Eq. 1.

    ``k`` is 1 or 2 in the paper; any positive value is accepted.
    """
    from repro.embeddings.hashing import SentenceEmbedder

    if k <= 0:
        raise ValueError("k must be positive")
    if embedder is None:
        embedder = SentenceEmbedder()
    if len(candidates) <= k:
        return list(candidates)
    matrix = embedder.embed_all(candidates)
    ranking = geometric_median_ranking(matrix)
    return [candidates[i] for i in ranking[:k]]
