"""In-memory relational engine: tables, databases and the SQL executor."""

from repro.engine.database import Database, create_database
from repro.engine.executor import Executor, Result
from repro.engine.table import Table

__all__ = ["Database", "create_database", "Executor", "Result", "Table"]
