"""SQL aggregate functions with standard NULL semantics.

Each aggregate takes the list of values of its argument expression over the
rows of one group (``count(*)`` is special-cased by the executor) and returns
a scalar.  NULLs are skipped; an empty input yields NULL for everything but
COUNT, which yields 0 — matching SQLite/PostgreSQL behaviour, which matters
for execution-accuracy comparisons of aggregate queries over empty groups.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.errors import ExecutionError


def agg_count(values: Sequence, distinct: bool = False) -> int:
    """COUNT(expr): non-NULL values (optionally distinct)."""
    present = [v for v in values if v is not None]
    if distinct:
        return len(set(present))
    return len(present)


def agg_sum(values: Sequence, distinct: bool = False):
    """SUM over non-NULL numeric values; NULL when the input is empty."""
    present = _numeric(values, "SUM")
    if distinct:
        present = list(dict.fromkeys(present))
    if not present:
        return None
    total = sum(present)
    return total


def agg_avg(values: Sequence, distinct: bool = False):
    """AVG over non-NULL numeric values; NULL when the input is empty."""
    present = _numeric(values, "AVG")
    if distinct:
        present = list(dict.fromkeys(present))
    if not present:
        return None
    return sum(present) / len(present)


def agg_min(values: Sequence, distinct: bool = False):
    """MIN over non-NULL values; NULL when the input is empty."""
    present = [v for v in values if v is not None]
    if not present:
        return None
    return min(present, key=_order_key)


def agg_max(values: Sequence, distinct: bool = False):
    """MAX over non-NULL values; NULL when the input is empty."""
    present = [v for v in values if v is not None]
    if not present:
        return None
    return max(present, key=_order_key)


def _numeric(values: Sequence, func: str) -> list:
    present = []
    for v in values:
        if v is None:
            continue
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            raise ExecutionError(f"{func} over non-numeric value {v!r}")
        present.append(v)
    return present


def _order_key(value):
    """Total order over mixed-type values: numbers < text < bool."""
    if isinstance(value, bool):
        return (2, value)
    if isinstance(value, (int, float)):
        return (0, value)
    return (1, str(value))


AGGREGATES: dict[str, Callable] = {
    "count": agg_count,
    "sum": agg_sum,
    "avg": agg_avg,
    "min": agg_min,
    "max": agg_max,
}
