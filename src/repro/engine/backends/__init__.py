"""Execution backends: one interface, many engines.

The reproduction's own in-memory engine (:mod:`repro.engine`) is one
implementation of the :class:`ExecutionBackend` interface; ``sqlite``
(Python's stdlib ``sqlite3``) is a second, independent one.  Differential
execution (:mod:`repro.engine.diffexec`) runs the same query set through
both and reports divergences — correctness fuzzing for the engine, and the
real-database path future domains need.

Backends are resolved by name through :func:`get_backend`; the mapping is
import-lazy so ``sqlite3`` is only required when actually requested.
"""

from __future__ import annotations

import abc
from importlib import import_module

from repro.engine.database import Database
from repro.engine.executor import Result
from repro.errors import ExecutionError


class ExecutionBackend(abc.ABC):
    """One SQL execution engine loaded with one benchmark database."""

    #: Backend name as shown in reports and trace spans.
    name: str = "abstract"

    @abc.abstractmethod
    def load(self, database: Database) -> None:
        """(Re)load the backend with ``database``'s schema and rows."""

    @abc.abstractmethod
    def execute(self, sql: str) -> Result:
        """Execute ``sql``, returning an engine-shaped :class:`Result`."""

    def try_execute(self, sql: str) -> Result | None:
        """Execute, returning None on any backend-reported query error."""
        try:
            return self.execute(sql)
        except ExecutionError:
            return None

    def close(self) -> None:
        """Release backend resources (no-op by default)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


#: name -> (module, class) — imported lazily by :func:`get_backend`.
_BACKENDS = {
    "native": ("repro.engine.backends.native", "NativeBackend"),
    "sqlite": ("repro.engine.backends.sqlite", "SqliteBackend"),
    "vector": ("repro.engine.backends.vector", "VectorBackend"),
}


def available_backends() -> tuple[str, ...]:
    return tuple(sorted(_BACKENDS))


def get_backend(name: str) -> ExecutionBackend:
    """Instantiate the backend registered under ``name``."""
    try:
        module_name, class_name = _BACKENDS[name]
    except KeyError:
        raise ExecutionError(
            f"unknown execution backend {name!r}; available: "
            + ", ".join(available_backends())
        ) from None
    return getattr(import_module(module_name), class_name)()
