"""The in-repo engine wrapped as an :class:`ExecutionBackend`.

A thin adapter: the :class:`~repro.engine.database.Database` already *is*
the engine, so loading is a pointer assignment and execution delegates to
its executor.  Exists so differential execution treats both sides of the
comparison uniformly.
"""

from __future__ import annotations

from repro.engine.backends import ExecutionBackend
from repro.engine.database import Database
from repro.engine.executor import Result
from repro.errors import ExecutionError


class NativeBackend(ExecutionBackend):
    """The reproduction's own in-memory SQL engine."""

    name = "native"

    def __init__(self) -> None:
        self._database: Database | None = None

    def load(self, database: Database) -> None:
        self._database = database

    def execute(self, sql: str) -> Result:
        if self._database is None:
            raise ExecutionError("native backend has no database loaded")
        return self._database.execute(sql)

    def try_execute(self, sql: str) -> Result | None:
        if self._database is None:
            raise ExecutionError("native backend has no database loaded")
        return self._database.try_execute(sql)
