"""SQLite execution backend (stdlib ``sqlite3``, in-memory).

Loads a benchmark :class:`~repro.engine.database.Database` into an
in-memory SQLite database and executes SQL through it.  The schema mapping
mirrors the in-repo engine's comparison semantics so differential execution
compares like with like:

* ``TEXT``/``DATE`` columns get ``COLLATE NOCASE`` — the engine's string
  equality, IN-lists and GROUP BY keys are case-insensitive (Spider's
  execution-match convention), and the collation gives SQLite the same
  behaviour at the operator level.
* ``BOOLEAN`` maps to ``INTEGER`` (SQLite has no boolean type); Python
  ``bool`` values are stored as 0/1, which is exactly how the result
  canonicaliser (:func:`repro.engine.executor._canonical`) compares them.
* No PRIMARY KEY/NOT NULL/FK constraints are emitted: the rows were already
  validated by the engine's typed tables, and constraint side effects
  (implicit indexes, NULL rejection) must not change query results.

Remaining intentional alignments: SQLite sorts NULLs first ascending (the
engine's rule), aggregates over empty input return NULL except COUNT (both
engines), and ASCII ``LIKE`` is case-insensitive on both sides.
"""

from __future__ import annotations

from repro.engine.backends import ExecutionBackend
from repro.engine.database import Database
from repro.engine.executor import Result
from repro.errors import ExecutionError
from repro.obs import get_tracer
from repro.schema.model import ColumnType

try:  # pragma: no cover - sqlite3 ships with CPython
    import sqlite3
except ImportError:  # pragma: no cover - gated for minimal interpreters
    sqlite3 = None  # type: ignore[assignment]

#: Engine column type -> SQLite column declaration.
_SQL_TYPES = {
    ColumnType.INTEGER: "INTEGER",
    ColumnType.REAL: "REAL",
    ColumnType.TEXT: "TEXT COLLATE NOCASE",
    ColumnType.BOOLEAN: "INTEGER",
    ColumnType.DATE: "TEXT COLLATE NOCASE",
}


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


def _ddl(table_def) -> str:
    columns = ", ".join(
        f"{_quote(column.name)} {_SQL_TYPES[column.type]}"
        for column in table_def.columns
    )
    return f"CREATE TABLE {_quote(table_def.name)} ({columns})"


def _storable(value):
    if isinstance(value, bool):
        return int(value)
    return value


class SqliteBackend(ExecutionBackend):
    """Stdlib SQLite as an independent execution engine."""

    name = "sqlite"

    def __init__(self) -> None:
        if sqlite3 is None:  # pragma: no cover - gated for minimal interpreters
            raise ExecutionError(
                "the sqlite backend requires the stdlib sqlite3 module, "
                "which this interpreter was built without"
            )
        self._connection = None
        self._db_name: str | None = None

    def load(self, database: Database) -> None:
        self.close()
        connection = sqlite3.connect(":memory:")
        tracer = get_tracer()
        with tracer.span("backend.sqlite.load", database=database.name):
            cursor = connection.cursor()
            for table in database.tables():
                cursor.execute(_ddl(table.definition))
                if len(table) == 0:
                    continue
                placeholders = ", ".join("?" for _ in table.columns)
                cursor.executemany(
                    f"INSERT INTO {_quote(table.name)} VALUES ({placeholders})",
                    (tuple(_storable(v) for v in row) for row in table),
                )
            connection.commit()
        self._connection = connection
        self._db_name = database.name

    def execute(self, sql: str) -> Result:
        if self._connection is None:
            raise ExecutionError("sqlite backend has no database loaded")
        tracer = get_tracer()
        with tracer.span("backend.sqlite.query", database=self._db_name) as span:
            try:
                cursor = self._connection.execute(sql)
                rows = [tuple(row) for row in cursor.fetchall()]
            except sqlite3.Error as exc:
                raise ExecutionError(f"sqlite: {exc}") from exc
            columns = (
                [item[0] for item in cursor.description] if cursor.description else []
            )
            span.set_attr("rows", len(rows))
        return Result(columns=columns, rows=rows)

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None
            self._db_name = None
