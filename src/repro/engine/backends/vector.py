"""The vectorized columnar engine wrapped as an :class:`ExecutionBackend`.

Unlike the native adapter this does not touch the database's own executor:
it owns a private :class:`~repro.engine.vector.VectorEngine` over the same
tables, so differential execution can run the row and vector engines
side by side against one database.
"""

from __future__ import annotations

from repro.engine.backends import ExecutionBackend
from repro.engine.database import Database
from repro.engine.executor import Result
from repro.errors import ExecutionError, ReproError


class VectorBackend(ExecutionBackend):
    """The vector engine over the reproduction's in-memory tables."""

    name = "vector"

    def __init__(self) -> None:
        self._database: Database | None = None
        self._engine = None

    def load(self, database: Database) -> None:
        from repro.engine.vector import VectorEngine

        self._database = database
        self._engine = VectorEngine(database)

    def execute(self, sql: str) -> Result:
        if self._engine is None:
            raise ExecutionError("vector backend has no database loaded")
        from repro.sql import parse

        return self._engine.execute(parse(sql))

    def try_execute(self, sql: str) -> Result | None:
        try:
            return self.execute(sql)
        except ReproError:
            return None
        except RecursionError:
            return None
