"""Engine micro-benchmark: native vs vector vs sqlite on the gold workloads.

``sciencebenchmark engine-bench`` times the same query set on every
execution arm and reports per-arm latency histograms plus the vector
engine's speedup over the row engine — the Table-5/serve-bench execute
stage is exactly this workload, so the speedup here is the speedup those
paths observe.

Two workloads:

* ``table5`` — every gold query (seed + dev), each timed as the minimum
  over ``repeat`` runs.  The steady-state per-query cost: plan and column
  caches are warm after the first run, mirroring how evaluation executes
  each gold query once per predicted query.
* ``serve`` — the dev split streamed ``repeat`` times in arrival order,
  every execution timed.  The serve-bench execute histogram: repeated
  questions hit the vector engine's plan/selection caches the way a
  server's repeated requests do.

Correctness rides along: the vector arm must be byte-identical to native
on every query (its engine contract) and the sqlite arm must agree under
the tolerant cross-engine comparison of :mod:`repro.engine.diffexec`.
``--assert-speedup``/``--assert-identical`` turn both into CI gates.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.datasets.records import BenchmarkDomain
from repro.engine.backends import get_backend
from repro.engine.executor import Executor, Result
from repro.engine.vector import VectorEngine
from repro.errors import ReproError
from repro.obs import get_tracer
from repro.obs.metrics import MetricsRegistry
from repro.resilience.clock import SYSTEM_CLOCK
from repro.sql import parse

#: Execution arms, in report order.  Native is the baseline arm every
#: other arm is compared against.
ARMS = ("native", "vector", "sqlite")

WORKLOADS = ("table5", "serve")


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation surprises)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _workload_queries(domain: BenchmarkDomain, workload: str, repeat: int):
    """``(sql, parsed)`` pairs of the workload, in execution order."""
    if workload == "table5":
        pairs = list(domain.seed.pairs) + list(domain.dev.pairs)
        stream = [pair.sql for pair in pairs]
    elif workload == "serve":
        stream = [pair.sql for pair in domain.dev.pairs] * max(1, repeat)
    else:
        raise ValueError(f"unknown workload {workload!r}; expected {WORKLOADS}")
    return [(sql, parse(sql)) for sql in stream]


class _NativeArm:
    """Row engine, pre-parsed queries (the execute-stage measure)."""

    name = "native"

    def __init__(self, domain: BenchmarkDomain) -> None:
        self._executor = Executor(domain.database)

    def execute(self, sql: str, query) -> Result:
        return self._executor.execute(query)

    def counters(self) -> dict:
        return {}


class _VectorArm:
    """Vector engine, pre-parsed queries; counters expose fallbacks/plans."""

    name = "vector"

    def __init__(self, domain: BenchmarkDomain) -> None:
        self._metrics = MetricsRegistry()
        self._engine = VectorEngine(domain.database, metrics=self._metrics)

    def execute(self, sql: str, query) -> Result:
        return self._engine.execute(query)

    def counters(self) -> dict:
        return {
            name.rsplit(".", 1)[-1]: entry["value"]
            for name, entry in self._metrics.snapshot().items()
            if name.startswith("engine.vector.") and entry["kind"] == "counter"
        }


class _BackendArm:
    """A registered :class:`ExecutionBackend` (sqlite) fed SQL text —
    its own parser is part of its inherent cost."""

    def __init__(self, name: str, domain: BenchmarkDomain) -> None:
        self.name = name
        self._backend = get_backend(name)
        self._backend.load(domain.database)

    def execute(self, sql: str, query) -> Result:
        return self._backend.execute(sql)

    def counters(self) -> dict:
        return {}


def _make_arm(name: str, domain: BenchmarkDomain):
    if name == "native":
        return _NativeArm(domain)
    if name == "vector":
        return _VectorArm(domain)
    return _BackendArm(name, domain)


def _time_arm(arm, queries, workload: str, repeat: int):
    """``(per_query_seconds, results, errors)`` for one arm over the stream.

    ``table5`` takes the per-query minimum over ``repeat`` runs (steady
    state); ``serve`` times every streamed execution once.  ``results``
    holds the first run's result per query (None on error) for the
    cross-arm agreement checks.
    """
    clock = SYSTEM_CLOCK
    times: list[float] = []
    results: list[Result | None] = []
    errors = 0
    runs = repeat if workload == "table5" else 1
    for sql, query in queries:
        best = None
        result = None
        failed = False
        for _ in range(max(1, runs)):
            start = clock.now()
            try:
                outcome = arm.execute(sql, query)
            except (ReproError, RecursionError):
                failed = True
                break
            elapsed = clock.now() - start
            best = elapsed if best is None else min(best, elapsed)
            if result is None:
                result = outcome
        if failed or best is None:
            errors += 1
            results.append(None)
        else:
            times.append(best)
            results.append(result)
    return times, results, errors


def _identical(a: Result, b: Result) -> bool:
    return list(a.columns) == list(b.columns) and a.rows == b.rows


def _agreement(
    baseline: list[Result | None],
    candidate: list[Result | None],
    queries,
    strict: bool,
) -> dict:
    """Cross-arm agreement summary vs the native baseline."""
    from repro.engine.diffexec import _results_agree

    mismatches = []
    compared = 0
    for (sql, _), mine, theirs in zip(queries, baseline, candidate):
        if mine is None or theirs is None:
            # A query only one arm rejects shows up in the arm's error
            # count; diff-exec is the dedicated gate for those.
            continue
        compared += 1
        agrees = _identical(mine, theirs) if strict else _results_agree(
            sql, mine, theirs
        )
        if not agrees and len(mismatches) < 5:
            mismatches.append(sql)
    return {
        "compared": compared,
        "mismatches": len(mismatches),
        "sample": mismatches,
        "identical" if strict else "agree": not mismatches,
    }


def run_engine_bench(
    domains: dict[str, BenchmarkDomain],
    workload: str = "table5",
    repeat: int = 5,
    arms: tuple[str, ...] = ARMS,
) -> dict:
    """Benchmark every arm on every domain; the JSON-ready report."""
    tracer = get_tracer()
    report: dict = {
        "schema_version": 1,
        "benchmark": "engine-bench",
        "workload": workload,
        "repeat": repeat,
        "arms": list(arms),
        "domains": {},
    }
    ratio_pool: list[float] = []
    total_native = total_vector = 0.0
    identical = True
    with tracer.span("engine.bench", workload=workload, repeat=repeat):
        for name, domain in sorted(domains.items()):
            queries = _workload_queries(domain, workload, repeat)
            entry: dict = {"n_queries": len(queries), "arms": {}}
            timings: dict[str, list[float]] = {}
            outcomes: dict[str, list[Result | None]] = {}
            for arm_name in arms:
                arm = _make_arm(arm_name, domain)
                with tracer.span("engine.bench.arm", domain=name, arm=arm_name):
                    times, results, errors = _time_arm(
                        arm, queries, workload, repeat
                    )
                timings[arm_name] = times
                outcomes[arm_name] = results
                entry["arms"][arm_name] = {
                    "p50_us": round(_percentile(times, 0.50) * 1e6, 1),
                    "p95_us": round(_percentile(times, 0.95) * 1e6, 1),
                    "total_ms": round(sum(times) * 1e3, 3),
                    "errors": errors,
                    **({"counters": arm.counters()} if arm.counters() else {}),
                }
            if "native" in arms and "vector" in arms:
                ratios = [
                    n / v
                    for n, v, rn, rv in zip(
                        timings["native"], timings["vector"],
                        outcomes["native"], outcomes["vector"],
                    )
                    if v > 0 and rn is not None and rv is not None
                ]
                ratio_pool.extend(ratios)
                total_native += sum(timings["native"])
                total_vector += sum(timings["vector"])
                entry["speedup_p50"] = round(_percentile(ratios, 0.50), 2)
                entry["speedup_total"] = round(
                    sum(timings["native"]) / max(sum(timings["vector"]), 1e-12), 2
                )
                entry["vector_vs_native"] = _agreement(
                    outcomes["native"], outcomes["vector"], queries, strict=True
                )
                identical = identical and entry["vector_vs_native"]["identical"]
            if "native" in arms and "sqlite" in arms:
                entry["sqlite_vs_native"] = _agreement(
                    outcomes["native"], outcomes["sqlite"], queries, strict=False
                )
            report["domains"][name] = entry
    if ratio_pool:
        report["overall"] = {
            "speedup_p50": round(_percentile(ratio_pool, 0.50), 2),
            "speedup_total": round(total_native / max(total_vector, 1e-12), 2),
            "vector_identical": identical,
        }
    return report


def evaluate_engine_gates(
    report: dict,
    assert_speedup: float | None = None,
    assert_identical: bool = False,
) -> list[str]:
    """CI gate failures (empty when every requested gate holds)."""
    failures = []
    overall = report.get("overall", {})
    if assert_speedup is not None:
        speedup = overall.get("speedup_p50", 0.0)
        if speedup < assert_speedup:
            failures.append(
                f"vector p50 speedup {speedup:.2f}x is below the required "
                f"{assert_speedup:.2f}x"
            )
    if assert_identical:
        if not overall.get("vector_identical", False):
            failures.append("vector results are not byte-identical to native")
        for name, entry in sorted(report.get("domains", {}).items()):
            agreement = entry.get("sqlite_vs_native")
            if agreement is not None and not agreement["agree"]:
                failures.append(
                    f"sqlite disagrees with the engine on {name}: "
                    + "; ".join(agreement["sample"][:2])
                )
    return failures


def render_report(report: dict) -> str:
    lines = [
        f"engine-bench [{report['workload']}] x{report['repeat']}: "
        + ", ".join(report["arms"])
    ]
    for name, entry in sorted(report["domains"].items()):
        lines.append(f"  {name} ({entry['n_queries']} queries)")
        for arm_name in report["arms"]:
            arm = entry["arms"][arm_name]
            note = f", {arm['errors']} errors" if arm["errors"] else ""
            counters = arm.get("counters", {})
            if counters.get("fallbacks"):
                note += f", {counters['fallbacks']} fallbacks"
            lines.append(
                f"    {arm_name:7s} p50 {arm['p50_us']:9.1f}us  "
                f"p95 {arm['p95_us']:9.1f}us  total {arm['total_ms']:8.1f}ms"
                + note
            )
        if "speedup_p50" in entry:
            check = "ok" if entry["vector_vs_native"]["identical"] else "MISMATCH"
            lines.append(
                f"    vector speedup: p50 {entry['speedup_p50']}x, "
                f"total {entry['speedup_total']}x (identity {check})"
            )
    overall = report.get("overall")
    if overall:
        lines.append(
            f"  overall: vector {overall['speedup_p50']}x p50 / "
            f"{overall['speedup_total']}x total vs native, byte-identical="
            + str(overall["vector_identical"]).lower()
        )
    return "\n".join(lines)


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


__all__ = [
    "ARMS",
    "WORKLOADS",
    "evaluate_engine_gates",
    "render_report",
    "run_engine_bench",
    "write_report",
]
