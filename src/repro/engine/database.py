"""The :class:`Database`: a schema plus populated tables plus an executor.

This is the central runtime object of the reproduction: the augmentation
pipeline samples values from it, the NL-to-SQL systems index its contents for
value linking, and the evaluation harness executes gold and predicted SQL
against it to compute execution accuracy.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import ExecutionError, SchemaError
from repro.schema.model import Schema
from repro.engine.executor import Executor, Result
from repro.engine.table import Table


class Database:
    """An in-memory relational database instance."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.name = schema.name
        self._tables: dict[str, Table] = {
            t.name.lower(): Table(t) for t in schema.tables
        }
        self._executor = Executor(self)
        self._engine_name = "native"

    # -- engine selection --------------------------------------------------------

    @property
    def engine_name(self) -> str:
        """The active execution engine: ``native`` (row) or ``vector``."""
        return self._engine_name

    def set_engine(self, name: str) -> None:
        """Swap the execution engine.  Results are byte-identical between
        engines (the vector engine's contract); only performance differs."""
        if name == self._engine_name:
            return
        if name == "native":
            self._executor = Executor(self)
        elif name == "vector":
            from repro.engine.vector import VectorEngine

            self._executor = VectorEngine(self)
        else:
            raise ExecutionError(
                f"unknown engine {name!r}; expected 'native' or 'vector'"
            )
        self._engine_name = name

    # -- table access -----------------------------------------------------------

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise ExecutionError(
                f"no table {name!r} in database {self.name!r}"
            ) from None

    def tables(self) -> list[Table]:
        return [self._tables[t.name.lower()] for t in self.schema.tables]

    def data_version(self) -> int:
        """Monotonic counter covering every table's contents; caches keyed
        on it (vector-engine scan selections, join indexes) invalidate on
        any insert anywhere in the database."""
        return sum(t.version for t in self._tables.values())

    def insert(self, table: str, rows: Iterable[tuple | list]) -> None:
        """Bulk-insert rows into one table."""
        self.table(table).insert_many(rows)

    # -- querying ----------------------------------------------------------------

    def execute(self, sql) -> Result:
        """Execute a SQL string or a pre-parsed :class:`~repro.sql.ast.Query`."""
        from repro.sql import ast, parse

        if isinstance(sql, str):
            query = parse(sql)
        elif isinstance(sql, ast.Query):
            query = sql
        else:
            raise ExecutionError(f"cannot execute {type(sql).__name__}")
        return self._executor.execute(query)

    def try_execute(self, sql) -> Result | None:
        """Execute, returning None instead of raising on any library error.

        Used by the pipeline's executability filter and by the evaluation
        harness, where a failing predicted query simply scores zero.
        """
        from repro.errors import ReproError

        try:
            return self.execute(sql)
        except ReproError:
            return None
        except RecursionError:
            return None

    # -- statistics (Table 1) ------------------------------------------------------

    def row_count(self) -> int:
        return sum(len(t) for t in self.tables())

    def average_rows_per_table(self) -> float:
        tables = self.tables()
        if not tables:
            return 0.0
        return self.row_count() / len(tables)

    def estimated_bytes(self) -> int:
        return sum(t.estimated_bytes() for t in self.tables())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database({self.name!r}, {len(self._tables)} tables, {self.row_count()} rows)"


def create_database(schema: Schema, data: dict[str, list[tuple]] | None = None) -> Database:
    """Build a database from a schema and an optional ``{table: rows}`` mapping."""
    db = Database(schema)
    if data:
        for table_name, rows in data.items():
            if not schema.has_table(table_name):
                raise SchemaError(f"data provided for unknown table {table_name!r}")
            db.insert(table_name, rows)
    return db
