"""Differential execution: the in-repo engine vs an independent backend.

``sciencebenchmark diff-exec`` runs a domain's query sets (gold Seed/Dev,
and optionally the pipeline's silver Synth split) through the native engine
and a second :class:`~repro.engine.backends.ExecutionBackend` (sqlite), and
reports every disagreement as a structured :class:`Divergence` diagnostic.
Agreement uses the same comparison as execution accuracy
(:func:`repro.metrics.execution.results_match`): multiset equality over
canonicalised rows, order-sensitive only when the query carries an ORDER BY.

This is correctness fuzzing for the engine — thousands of generated silver
queries probing NULL handling, aggregates and set semantics against SQLite,
the reference engine of Spider's execution evaluation — and the template for
running future domains against a real database.
Two comparison refinements beyond :func:`results_match` are cross-engine
necessities (same-engine accuracy scoring never needs them):

* **Tie-aware ORDER BY.**  Two engines may legitimately permute rows whose
  ORDER BY keys tie.  When every ORDER BY key maps onto a projected column,
  agreement requires only that the key-value *sequences* match and the rows
  form the same multiset; otherwise the comparison stays strictly ordered.
* **Float tolerance.**  Both engines compute correct sums in a different
  order, so aggregates can differ by one ULP — which the canonicaliser's
  ``round(x, 6)`` can amplify into different 6-decimal values exactly at a
  rounding half-boundary.  Near-equal floats (``rel_tol=1e-6``) therefore
  compare equal here.

Neither refinement applies to the in-repo ``vector`` backend: its contract
is *byte-identity* with the row engine (same columns, same rows, same
order, same value objects), so ``run_diff_exec`` compares it strictly —
no tie tolerance, no float slack.  :func:`run_three_way` runs both
comparisons (engine vs vector strict, engine vs sqlite tolerant) over one
domain, the full cross-engine correctness gate.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.datasets.records import BenchmarkDomain
from repro.engine.backends import ExecutionBackend, get_backend
from repro.engine.backends.native import NativeBackend
from repro.engine.executor import Result, _canonical
from repro.errors import ExecutionError, ReproError
from repro.metrics.execution import _is_ordered, results_match
from repro.obs import get_tracer
from repro.obs.metrics import MetricsRegistry
from repro.sql import parse
from repro.sql.printer import to_sql

#: Divergence sample size: differing canonical rows included per diagnostic.
MAX_SAMPLE_ROWS = 3

#: Split names accepted by :func:`run_diff_exec`.
GOLD_SPLITS = ("seed", "dev")
ALL_SPLITS = ("seed", "dev", "synth")

#: Backends of the three-way run (each compared against the native engine).
THREE_WAY_BACKENDS = ("vector", "sqlite")


@dataclass(frozen=True)
class Divergence:
    """One query on which the two backends disagreed."""

    domain: str
    split: str
    question: str
    sql: str
    #: "result-mismatch" | "engine-error" | "backend-error"
    kind: str
    detail: str
    engine_rows: int | None = None
    backend_rows: int | None = None
    #: Canonical rows present in one result but not the other (bounded).
    sample: tuple = ()

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class DiffReport:
    """Structured outcome of one domain × backend differential run."""

    domain: str
    backend: str
    splits: tuple[str, ...]
    n_queries: int = 0
    n_agreements: int = 0
    #: Queries both engines rejected (consistent behaviour, not divergence).
    n_both_errors: int = 0
    per_split: dict = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    @property
    def n_divergences(self) -> int:
        return len(self.divergences)

    @property
    def agreed(self) -> bool:
        return self.n_divergences == 0

    def to_dict(self) -> dict:
        return {
            "schema_version": 1,
            "benchmark": "diff-exec",
            "domain": self.domain,
            "backend": self.backend,
            "splits": list(self.splits),
            "n_queries": self.n_queries,
            "n_agreements": self.n_agreements,
            "n_divergences": self.n_divergences,
            "n_both_errors": self.n_both_errors,
            "per_split": self.per_split,
            "divergences": [d.to_dict() for d in self.divergences],
            "metrics": self.metrics,
        }

    def render(self) -> str:
        lines = [
            f"diff-exec[{self.domain}] engine vs {self.backend}: "
            f"{self.n_agreements}/{self.n_queries} queries agree, "
            f"{self.n_divergences} divergences"
        ]
        for split, counts in sorted(self.per_split.items()):
            lines.append(
                f"  {split:6s} {counts['agreements']:4d}/{counts['queries']:<4d} agree"
                + (f", {counts['divergences']} diverge" if counts["divergences"] else "")
            )
        for divergence in self.divergences[:10]:
            lines.append(
                f"  DIVERGE [{divergence.split}] {divergence.kind}: "
                f"{divergence.sql}  ({divergence.detail})"
            )
        if self.n_divergences > 10:
            lines.append(f"  ... and {self.n_divergences - 10} more")
        return "\n".join(lines)


def _value_close(a, b) -> bool:
    """Canonical equality, with one-ULP slack for cross-engine floats."""
    if _canonical(a) == _canonical(b):
        return True
    if (
        isinstance(a, (int, float)) and not isinstance(a, bool)
        and isinstance(b, (int, float)) and not isinstance(b, bool)
    ):
        return math.isclose(float(a), float(b), rel_tol=1e-6, abs_tol=1e-9)
    return False


def _canonical_sort_key(row: tuple) -> str:
    return repr(tuple(_canonical(value) for value in row))


def _rows_close(rows_a: list[tuple], rows_b: list[tuple]) -> bool:
    """Pairwise :func:`_value_close` over two equal-length row lists."""
    for row_a, row_b in zip(rows_a, rows_b):
        if len(row_a) != len(row_b):
            return False
        for value_a, value_b in zip(row_a, row_b):
            if not _value_close(value_a, value_b):
                return False
    return True


def _multiset_close(engine_result: Result, backend_result: Result) -> bool:
    """Order-insensitive row-set equality with float tolerance."""
    if engine_result.to_multiset() == backend_result.to_multiset():
        return True
    return _rows_close(
        sorted(engine_result.rows, key=_canonical_sort_key),
        sorted(backend_result.rows, key=_canonical_sort_key),
    )


def _order_key_indices(sql: str) -> tuple[list[int] | None, bool]:
    """``(indices, keys_hidden)`` for the query's ORDER BY keys.

    ``indices`` holds the projection index of every key when all keys are
    themselves projected expressions; otherwise None.  ``keys_hidden`` is
    True when the query *is* ordered but at least one key is absent from
    the projection — then tie order is unverifiable from the result rows
    (e.g. ``SELECT name ... ORDER BY COUNT(*)``) and only row content can
    be compared across engines."""
    try:
        query = parse(sql)
    except ReproError:
        return None, False
    if query.set_op is not None or not query.select.order_by:
        return None, False
    projected = []
    for item in query.select.items:
        expr = getattr(item, "expr", None)
        projected.append(to_sql(expr).lower() if expr is not None else "")
    indices = []
    for order_item in query.select.order_by:
        key_sql = to_sql(order_item.expr).lower()
        if key_sql not in projected:
            return None, True
        indices.append(projected.index(key_sql))
    return indices, False


def _ordered_agree(sql: str, engine_result: Result, backend_result: Result) -> bool:
    """Ordered agreement that tolerates tie permutations between engines.

    Requires the same row multiset *and* identical ORDER BY key sequences —
    rows with equal sort keys may appear in either order.  When the keys
    aren't projected at all, order is unverifiable: both engines sort
    correctly by construction, so content (multiset) equality is the
    strongest cross-engine check available.
    """
    indices, keys_hidden = _order_key_indices(sql)
    if indices is None:
        if keys_hidden:
            return _multiset_close(engine_result, backend_result)
        return False
    if not _multiset_close(engine_result, backend_result):
        return False
    keys_engine = [tuple(row[i] for i in indices) for row in engine_result.rows]
    keys_backend = [tuple(row[i] for i in indices) for row in backend_result.rows]
    return _rows_close(keys_engine, keys_backend)


def _results_agree(sql: str, engine_result: Result, backend_result: Result) -> bool:
    ordered = _is_ordered(sql)
    if results_match(engine_result, backend_result, ordered):
        return True
    if len(engine_result.rows) != len(backend_result.rows):
        return False
    if engine_result.rows and len(engine_result.rows[0]) != len(
        backend_result.rows[0]
    ):
        return False
    if ordered:
        return _ordered_agree(sql, engine_result, backend_result)
    return _multiset_close(engine_result, backend_result)


def _row_sample(engine_result: Result, backend_result: Result) -> tuple:
    """Up to :data:`MAX_SAMPLE_ROWS` canonical rows unique to either side."""
    engine_multiset = engine_result.to_multiset()
    backend_multiset = backend_result.to_multiset()
    sample = []
    for label, mine, theirs in (
        ("engine-only", engine_multiset, backend_multiset),
        ("backend-only", backend_multiset, engine_multiset),
    ):
        extra = [key for key, count in mine.items() if count != theirs.get(key, 0)]
        for key in sorted(map(repr, extra))[:MAX_SAMPLE_ROWS]:
            sample.append({"side": label, "row": key})
    return tuple(sample[: 2 * MAX_SAMPLE_ROWS])


def _identical(engine_result: Result, backend_result: Result) -> bool:
    """Byte-identity: the vector backend's agreement contract."""
    return (
        list(engine_result.columns) == list(backend_result.columns)
        and engine_result.rows == backend_result.rows
    )


def _compare_one(
    domain_name: str,
    split_name: str,
    pair,
    native: NativeBackend,
    backend: ExecutionBackend,
    strict: bool = False,
) -> Divergence | str:
    """Run one pair on both backends; a :class:`Divergence` or a verdict
    string (``"agree"`` / ``"both-error"``).

    ``strict`` switches agreement from the tolerant cross-engine comparison
    to byte-identity (columns, rows, order) — used for the vector backend,
    whose contract is exact equality with the row engine."""

    def attempt(executor):
        try:
            return executor.execute(pair.sql), None
        except ExecutionError as exc:
            return None, str(exc)

    engine_result, engine_error = attempt(native)
    backend_result, backend_error = attempt(backend)
    if engine_result is None and backend_result is None:
        return "both-error"
    if engine_result is None:
        return Divergence(
            domain=domain_name, split=split_name, question=pair.question,
            sql=pair.sql, kind="engine-error",
            detail="the in-repo engine rejected a query the backend accepts: "
            + str(engine_error),
            backend_rows=len(backend_result.rows),
        )
    if backend_result is None:
        return Divergence(
            domain=domain_name, split=split_name, question=pair.question,
            sql=pair.sql, kind="backend-error",
            detail=f"{backend.name} rejected a query the engine accepts: "
            + str(backend_error),
            engine_rows=len(engine_result.rows),
        )
    if strict:
        if _identical(engine_result, backend_result):
            return "agree"
    elif _results_agree(pair.sql, engine_result, backend_result):
        return "agree"
    ordered = _is_ordered(pair.sql)
    if len(engine_result.rows) != len(backend_result.rows):
        detail = (
            f"row count {len(engine_result.rows)} vs {len(backend_result.rows)}"
        )
    elif engine_result.rows and len(engine_result.rows[0]) != len(
        backend_result.rows[0]
    ):
        detail = (
            f"column count {len(engine_result.rows[0])} vs "
            f"{len(backend_result.rows[0])}"
        )
    elif strict:
        detail = "results not byte-identical (strict comparison)"
    else:
        detail = "row contents differ" + (" (ordered comparison)" if ordered else "")
    return Divergence(
        domain=domain_name, split=split_name, question=pair.question,
        sql=pair.sql, kind="result-mismatch", detail=detail,
        engine_rows=len(engine_result.rows),
        backend_rows=len(backend_result.rows),
        sample=_row_sample(engine_result, backend_result),
    )


def run_diff_exec(
    domain: BenchmarkDomain,
    backend: ExecutionBackend | str = "sqlite",
    splits: tuple[str, ...] = GOLD_SPLITS,
    strict: bool | None = None,
) -> DiffReport:
    """Differentially execute ``domain``'s query sets on both backends.

    ``splits`` picks the query sets: ``("seed", "dev")`` is the gold
    standard; add ``"synth"`` for the silver split (skipped with a per-split
    note when the domain has none materialised).  ``strict`` selects
    byte-identical comparison; the default (None) enables it exactly for
    the ``vector`` backend, whose contract is exact equality.
    """
    if isinstance(backend, str):
        backend = get_backend(backend)
    if strict is None:
        strict = backend.name == "vector"
    native = NativeBackend()
    native.load(domain.database)
    backend.load(domain.database)

    registry = MetricsRegistry()
    queries = registry.counter("diffexec.queries")
    agreements = registry.counter("diffexec.agreements")
    diverged = registry.counter("diffexec.divergences")

    report = DiffReport(domain=domain.name, backend=backend.name, splits=splits)
    tracer = get_tracer()
    with tracer.span("diffexec.domain", domain=domain.name, backend=backend.name):
        for split_name in splits:
            split = getattr(domain, split_name, None)
            if split is None:
                report.per_split[split_name] = {
                    "queries": 0, "agreements": 0, "divergences": 0,
                    "skipped": "split not materialised",
                }
                continue
            counts = {"queries": 0, "agreements": 0, "divergences": 0}
            with tracer.span(
                "diffexec.split", split=split_name, n_queries=len(split.pairs)
            ):
                for pair in split.pairs:
                    verdict = _compare_one(
                        domain.name, split_name, pair, native, backend,
                        strict=strict,
                    )
                    counts["queries"] += 1
                    queries.inc()
                    if verdict == "agree":
                        counts["agreements"] += 1
                        agreements.inc()
                        report.n_agreements += 1
                    elif verdict == "both-error":
                        counts["agreements"] += 1
                        agreements.inc()
                        report.n_agreements += 1
                        report.n_both_errors += 1
                    else:
                        counts["divergences"] += 1
                        diverged.inc()
                        report.divergences.append(verdict)
                    report.n_queries += 1
            report.per_split[split_name] = counts
    backend.close()
    report.metrics = registry.snapshot()
    return report


def run_three_way(
    domain: BenchmarkDomain,
    splits: tuple[str, ...] = GOLD_SPLITS,
) -> list[DiffReport]:
    """The full cross-engine gate: native vs vector *and* native vs sqlite.

    One :class:`DiffReport` per comparison arm (:data:`THREE_WAY_BACKENDS`
    order).  The vector arm is strict (byte-identity), the sqlite arm uses
    the tolerant cross-engine comparison; three engines agreeing on every
    gold and silver query is the engine-correctness bar of this repo.
    """
    return [
        run_diff_exec(domain, backend=name, splits=splits)
        for name in THREE_WAY_BACKENDS
    ]


def write_reports(reports: list[DiffReport], path: str | Path) -> Path:
    """Write the JSON divergence report (one document, one entry per domain)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema_version": 1,
        "benchmark": "diff-exec",
        "agreed": all(report.agreed for report in reports),
        "reports": [report.to_dict() for report in reports],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
