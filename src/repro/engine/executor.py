"""Query evaluation: SQL ASTs against an in-memory database.

The executor implements the subset of SQL that the benchmark's queries use:
projections with aggregates and arithmetic, inner joins (hash-join for
equi-conditions), WHERE/GROUP BY/HAVING/ORDER BY/LIMIT, DISTINCT, IN/scalar/
EXISTS subqueries (uncorrelated), derived tables and single set operations.

Execution accuracy — the paper's headline metric — compares the
:class:`Result` of a predicted query with the gold query's result, so the
engine's semantics (NULL handling, aggregate-over-empty-group behaviour, set
semantics of UNION/INTERSECT/EXCEPT) follow SQLite, the engine Spider uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExecutionError
from repro.obs import get_tracer
from repro.sql import ast
from repro.sql.printer import to_sql
from repro.engine.aggregates import AGGREGATES, _order_key
from repro.engine.expressions import Compiler, Scope

#: Hard ceiling on intermediate join sizes, protecting benchmark runs from
#: accidental cartesian blow-ups in generated queries.
MAX_INTERMEDIATE_ROWS = 2_000_000


@dataclass
class Result:
    """A query result: ordered column labels and row tuples."""

    columns: list[str]
    rows: list[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def first_column(self) -> list:
        return [row[0] for row in self.rows]

    def to_multiset(self) -> dict:
        """Row multiset (order-insensitive) used for execution accuracy."""
        counts: dict = {}
        for row in self.rows:
            key = tuple(_canonical(v) for v in row)
            counts[key] = counts.get(key, 0) + 1
        return counts


def _canonical(value):
    """Normalise a value for result comparison (ints/floats unify, text
    compares case-insensitively — mirroring the Spider execution matcher)."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        return round(value, 6)
    if isinstance(value, str):
        return value.lower()
    return value


class Executor:
    """Evaluates queries against one database."""

    def __init__(self, database) -> None:
        self.database = database
        #: Monotonic work counters: rows read out of sources, and rows
        #: produced by join steps.  Per-query deltas land on ``engine.query``
        #: spans when tracing is on.
        self.rows_scanned = 0
        self.rows_joined = 0
        self._depth = 0  # recursion depth: only the outermost call gets a span

    # -- entry points -----------------------------------------------------------

    def execute(self, query: ast.Query) -> Result:
        tracer = get_tracer()
        if not tracer.enabled or self._depth:
            return self._execute_query(query)
        scanned_before = self.rows_scanned
        joined_before = self.rows_joined
        with tracer.span("engine.query") as span:
            result = self._execute_query(query)
            span.set_attr("rows", len(result.rows))
            span.set_attr("rows_scanned", self.rows_scanned - scanned_before)
            span.set_attr("rows_joined", self.rows_joined - joined_before)
            return result

    def _execute_query(self, query: ast.Query) -> Result:
        self._depth += 1
        try:
            left = self._execute_select(query.select)
            if query.set_op is None:
                return left
            right = self._execute_query(query.right)
            if len(left.columns) != len(right.columns):
                raise ExecutionError("set operation arms have different arities")
            return _apply_set_op(query.set_op, left, right, query.set_all)
        finally:
            self._depth -= 1

    # -- select core -------------------------------------------------------------

    def _execute_select(self, select: ast.Select) -> Result:
        scope, rows = self._evaluate_from(select)
        compiler = Compiler(scope, self.execute)

        if select.where is not None:
            predicate = compiler.compile_predicate(select.where)
            rows = [row for row in rows if predicate(row, None)]

        if select.group_by or _has_aggregate(select):
            return self._execute_aggregate(select, scope, compiler, rows)
        return self._execute_plain(select, scope, compiler, rows)

    # -- FROM evaluation -----------------------------------------------------------

    def _evaluate_from(self, select: ast.Select) -> tuple[Scope, list[tuple]]:
        scope = Scope()
        sources: list[tuple[str, list[str], list[tuple]]] = []

        if not select.from_tables:
            # SELECT without FROM: one empty pseudo-row.
            return scope, [()]

        for source in select.from_tables:
            binding, columns, source_rows = self._load_source(source)
            scope.add(binding, columns)
            sources.append((binding, columns, source_rows))

        join_specs = []
        for join in select.joins:
            binding, columns, source_rows = self._load_source(join.table)
            scope.add(binding, columns)
            join_specs.append((binding, columns, source_rows, join.condition))

        # Base product over comma-separated FROM sources.
        rows: list[tuple] = [()]
        for _, _, source_rows in sources:
            rows = _cross(rows, source_rows)

        # JOIN ... ON clauses, hash-joined when the condition allows it.
        compiler = Compiler(scope, self.execute)
        width_so_far = sum(len(cols) for _, cols, _ in sources)
        for binding, columns, source_rows, condition in join_specs:
            rows = self._join(
                rows, width_so_far, binding, columns, source_rows, condition, scope
            )
            width_so_far += len(columns)
        return scope, rows

    def _load_source(self, source) -> tuple[str, list[str], list[tuple]]:
        if isinstance(source, ast.SubqueryRef):
            # Scan work inside the derived table is already counted by its
            # own execution; counting its *result* rows again would bill the
            # same work twice (and bill materialisation as scanning).
            result = self.execute(source.query)
            return source.binding, result.columns, result.rows
        table = self.database.table(source.name)
        self.rows_scanned += len(table.rows)
        return source.binding, table.columns, table.rows

    def _join(
        self,
        rows: list[tuple],
        width: int,
        binding: str,
        columns: list[str],
        source_rows: list[tuple],
        condition: ast.Expr | None,
        scope: Scope,
    ) -> list[tuple]:
        equalities, residual = _split_join_condition(condition)
        offset = scope.offset_of(binding)
        hash_keys: list[tuple[int, int]] = []  # (left slot, right local slot)
        for left_ref, right_ref in equalities:
            li = scope.resolve(left_ref.table, left_ref.column)
            ri = scope.resolve(right_ref.table, right_ref.column)
            if li >= offset and ri < offset:
                li, ri = ri, li
            if li < offset <= ri:
                hash_keys.append((li, ri - offset))
            else:
                residual = _conjoin(residual, ast.Comparison("=", left_ref, right_ref))

        if hash_keys:
            index: dict[tuple, list[tuple]] = {}
            for srow in source_rows:
                key = tuple(srow[ri] for _, ri in hash_keys)
                if any(v is None for v in key):
                    continue
                index.setdefault(key, []).append(srow)
            combined = []
            for row in rows:
                key = tuple(row[li] for li, _ in hash_keys)
                for srow in index.get(key, ()):
                    combined.append(row + srow)
                    if len(combined) > MAX_INTERMEDIATE_ROWS:
                        raise ExecutionError("join result too large")
        else:
            combined = _cross(rows, source_rows)
        self.rows_joined += len(combined)

        if residual is not None:
            compiler = Compiler(scope, self.execute)
            # Residual predicates only reference already-joined tables, so the
            # full-width compilation is safe on the combined rows.
            predicate = compiler.compile_predicate(residual)
            combined = [row for row in combined if predicate(row, None)]
        return combined

    # -- plain (non-aggregate) path --------------------------------------------------

    def _execute_plain(
        self, select: ast.Select, scope: Scope, compiler: Compiler, rows: list[tuple]
    ) -> Result:
        labels, getters = self._projection(select, scope, compiler)

        if select.order_by:
            rows = self._sorted(rows, select.order_by, compiler, None)

        projected = [tuple(g(row, None) for g in getters) for row in rows]

        if select.distinct:
            projected = _dedupe(projected)
        if select.limit is not None:
            projected = projected[: select.limit]
        return Result(columns=labels, rows=projected)

    # -- aggregate path ------------------------------------------------------------------

    def _execute_aggregate(
        self, select: ast.Select, scope: Scope, compiler: Compiler, rows: list[tuple]
    ) -> Result:
        group_fns = [compiler.compile(e) for e in select.group_by]

        groups: dict[tuple, list[tuple]] = {}
        if group_fns:
            for row in rows:
                key = tuple(_canonical(fn(row, None)) for fn in group_fns)
                groups.setdefault(key, []).append(row)
        else:
            groups[()] = rows  # single implicit group (possibly empty)

        agg_nodes = _collect_aggregates(select)
        agg_arg_fns: dict[ast.FuncCall, object] = {}
        for node in agg_nodes:
            if node.args and not isinstance(node.args[0], ast.Star):
                agg_arg_fns[node] = compiler.compile(node.args[0])

        group_rows: list[tuple[tuple, dict]] = []
        for _key, members in groups.items():
            aggs: dict[ast.FuncCall, object] = {}
            for node in agg_nodes:
                name = node.name.lower()
                if node.args and isinstance(node.args[0], ast.Star):
                    if name != "count":
                        raise ExecutionError(f"{name.upper()}(*) is not valid")
                    aggs[node] = len(members)
                    continue
                arg_fn = agg_arg_fns[node]
                values = [arg_fn(row, None) for row in members]
                aggs[node] = AGGREGATES[name](values, distinct=node.distinct)
            representative = members[0] if members else tuple([None] * scope.width)
            group_rows.append((representative, aggs))

        if select.having is not None:
            having = compiler.compile_predicate(select.having)
            group_rows = [(rep, aggs) for rep, aggs in group_rows if having(rep, aggs)]

        labels, getters = self._projection(select, scope, compiler)

        if select.order_by:
            order_fns = [(compiler.compile(o.expr), o.desc) for o in select.order_by]
            group_rows = _sort_pairs(group_rows, order_fns)

        projected = [
            tuple(g(rep, aggs) for g in getters) for rep, aggs in group_rows
        ]
        if select.distinct:
            projected = _dedupe(projected)
        if select.limit is not None:
            projected = projected[: select.limit]
        return Result(columns=labels, rows=projected)

    # -- shared helpers ---------------------------------------------------------------

    def _projection(self, select: ast.Select, scope: Scope, compiler: Compiler):
        labels: list[str] = []
        getters = []
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                star = item.expr
                bindings = [star.table.lower()] if star.table else scope.bindings()
                for binding in bindings:
                    offset = scope.offset_of(binding)
                    for i, column in enumerate(scope.columns_of(binding)):
                        labels.append(column)
                        getters.append(_slot_getter(offset + i))
                continue
            labels.append(item.alias or to_sql(item.expr))
            getters.append(compiler.compile(item.expr))
        return labels, getters

    def _sorted(self, rows, order_by, compiler: Compiler, aggs):
        order_fns = [(compiler.compile(o.expr), o.desc) for o in order_by]
        decorated = [(row, aggs) for row in rows]
        decorated = _sort_pairs(decorated, order_fns)
        return [row for row, _ in decorated]


def _slot_getter(index: int):
    return lambda row, aggs: row[index]


def _cross(rows: list[tuple], source_rows: list[tuple]) -> list[tuple]:
    if len(rows) * max(len(source_rows), 1) > MAX_INTERMEDIATE_ROWS:
        raise ExecutionError("cartesian product too large")
    return [row + srow for row in rows for srow in source_rows]


def _split_join_condition(condition: ast.Expr | None):
    """Split an ON condition into hashable equality pairs and a residual."""
    if condition is None:
        return [], None
    conjuncts: list[ast.Expr]
    if isinstance(condition, ast.BoolOp) and condition.op == "and":
        conjuncts = list(condition.operands)
    else:
        conjuncts = [condition]
    equalities = []
    residual: ast.Expr | None = None
    for conjunct in conjuncts:
        if (
            isinstance(conjunct, ast.Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, ast.ColumnRef)
            and isinstance(conjunct.right, ast.ColumnRef)
        ):
            equalities.append((conjunct.left, conjunct.right))
        else:
            residual = _conjoin(residual, conjunct)
    return equalities, residual


def _conjoin(left: ast.Expr | None, right: ast.Expr) -> ast.Expr:
    if left is None:
        return right
    return ast.BoolOp(op="and", operands=(left, right))


def _has_aggregate(select: ast.Select) -> bool:
    roots: list[ast.Node] = [item.expr for item in select.items]
    if select.having is not None:
        roots.append(select.having)
    roots.extend(o.expr for o in select.order_by)
    for root in roots:
        for node in root.walk():
            if isinstance(node, ast.FuncCall) and node.name.lower() in ast.AGGREGATE_FUNCTIONS:
                return True
    return False


def _collect_aggregates(select: ast.Select) -> list[ast.FuncCall]:
    roots: list[ast.Node] = [item.expr for item in select.items]
    if select.having is not None:
        roots.append(select.having)
    roots.extend(o.expr for o in select.order_by)
    seen: dict[ast.FuncCall, None] = {}
    for root in roots:
        for node in root.walk():
            if isinstance(node, ast.FuncCall) and node.name.lower() in ast.AGGREGATE_FUNCTIONS:
                seen[node] = None
    return list(seen)


def _sort_pairs(pairs, order_fns):
    def key(pair):
        row, aggs = pair
        parts = []
        for fn, desc in order_fns:
            value = fn(row, aggs)
            parts.append(_sort_component(value, desc))
        return tuple(parts)

    return sorted(pairs, key=key)


class _Reversed:
    """Wrapper inverting comparison order for DESC sort keys."""

    __slots__ = ("key",)

    def __init__(self, key) -> None:
        self.key = key

    def __lt__(self, other: "_Reversed") -> bool:
        return other.key < self.key

    def __eq__(self, other) -> bool:
        return isinstance(other, _Reversed) and other.key == self.key


def _sort_component(value, desc: bool):
    # NULLs sort first ascending (SQLite behaviour), last descending.
    null_rank = 0 if value is None else 1
    key = (null_rank, _order_key(value) if value is not None else (0, 0))
    return _Reversed(key) if desc else key


def _dedupe(rows: list[tuple]) -> list[tuple]:
    seen = set()
    result = []
    for row in rows:
        key = tuple(_canonical(v) for v in row)
        if key in seen:
            continue
        seen.add(key)
        result.append(row)
    return result


def _apply_set_op(op: str, left: Result, right: Result, set_all: bool) -> Result:
    left_keys = [tuple(_canonical(v) for v in row) for row in left.rows]
    right_keys = {tuple(_canonical(v) for v in row) for row in right.rows}
    if op == "union":
        if set_all:
            return Result(columns=left.columns, rows=left.rows + right.rows)
        rows = _dedupe(left.rows + right.rows)
        return Result(columns=left.columns, rows=rows)
    if op == "intersect":
        rows = [row for row, key in zip(left.rows, left_keys) if key in right_keys]
        return Result(columns=left.columns, rows=_dedupe(rows))
    if op == "except":
        rows = [row for row, key in zip(left.rows, left_keys) if key not in right_keys]
        return Result(columns=left.columns, rows=_dedupe(rows))
    raise ExecutionError(f"unknown set operation {op!r}")
