"""Expression compilation: SQL AST expressions → Python closures.

The executor flattens the FROM clause into wide row tuples; a
:class:`Scope` records which slot each ``binding.column`` occupies.  The
:class:`Compiler` then turns an AST expression into a closure
``fn(row, aggs) -> value`` where ``aggs`` is a per-group mapping of aggregate
call nodes to their pre-computed values (``None`` outside GROUP BY context).

SQL three-valued logic is represented with Python ``None`` as UNKNOWN;
``WHERE``/``HAVING`` keep a row only when the predicate evaluates to ``True``.
"""

from __future__ import annotations

import re
from collections.abc import Callable

from repro.errors import ExecutionError
from repro.sql import ast

#: Type signature of a compiled expression.
Compiled = Callable[[tuple, dict | None], object]


class Scope:
    """Slot layout of the flattened FROM row plus column resolution."""

    def __init__(self) -> None:
        self._bindings: list[tuple[str, list[str]]] = []
        self._offsets: dict[str, int] = {}
        self.width = 0

    def add(self, binding: str, columns: list[str]) -> None:
        key = binding.lower()
        if key in self._offsets:
            raise ExecutionError(f"duplicate table binding {binding!r}")
        self._offsets[key] = self.width
        self._bindings.append((key, [c.lower() for c in columns]))
        self.width += len(columns)

    def bindings(self) -> list[str]:
        return [name for name, _ in self._bindings]

    def resolve(self, table: str | None, column: str) -> int:
        """Slot index of ``table.column`` (or the first match if unqualified)."""
        column = column.lower()
        if table is not None:
            key = table.lower()
            if key not in self._offsets:
                raise ExecutionError(f"unknown table or alias {table!r}")
            offset = self._offsets[key]
            columns = dict(self._bindings)[key]
            if column not in columns:
                raise ExecutionError(f"no column {column!r} in {table!r}")
            return offset + columns.index(column)
        matches = []
        for key, columns in self._bindings:
            if column in columns:
                matches.append(self._offsets[key] + columns.index(column))
        if not matches:
            raise ExecutionError(f"unknown column {column!r}")
        # Spider queries occasionally leave shared join columns unqualified;
        # the first binding wins, matching SQLite's resolution order.
        return matches[0]

    def columns_of(self, binding: str) -> list[str]:
        return dict(self._bindings)[binding.lower()]

    def offset_of(self, binding: str) -> int:
        return self._offsets[binding.lower()]


class Compiler:
    """Compiles expressions within one scope.

    ``subquery`` is a callback executing a nested :class:`~repro.sql.ast.Query`
    and returning a result object with ``columns``/``rows`` — supplied by the
    executor so uncorrelated subqueries are evaluated exactly once at compile
    time.
    """

    def __init__(self, scope: Scope, subquery: Callable[[ast.Query], object]) -> None:
        self.scope = scope
        self.subquery = subquery

    # -- public API ------------------------------------------------------------

    def compile(self, expr: ast.Expr) -> Compiled:
        method = getattr(self, f"_compile_{type(expr).__name__.lower()}", None)
        if method is None:
            raise ExecutionError(f"cannot compile {type(expr).__name__}")
        return method(expr)

    def compile_predicate(self, expr: ast.Expr) -> Callable[[tuple, dict | None], bool]:
        """Compile ``expr`` and wrap it so UNKNOWN (None) is treated as False."""
        fn = self.compile(expr)

        def predicate(row: tuple, aggs: dict | None) -> bool:
            return fn(row, aggs) is True

        return predicate

    # -- leaves ------------------------------------------------------------------

    def _compile_columnref(self, expr: ast.ColumnRef) -> Compiled:
        index = self.scope.resolve(expr.table, expr.column)
        return lambda row, aggs: row[index]

    def _compile_literal(self, expr: ast.Literal) -> Compiled:
        value = expr.value
        return lambda row, aggs: value

    def _compile_star(self, expr: ast.Star) -> Compiled:
        raise ExecutionError("* is only valid in a select list or COUNT(*)")

    # -- arithmetic ----------------------------------------------------------------

    def _compile_binaryop(self, expr: ast.BinaryOp) -> Compiled:
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        op = expr.op

        def run(row: tuple, aggs: dict | None):
            a = left(row, aggs)
            b = right(row, aggs)
            if a is None or b is None:
                return None
            return _arith(op, a, b)

        return run

    def _compile_unaryminus(self, expr: ast.UnaryMinus) -> Compiled:
        operand = self.compile(expr.operand)

        def run(row: tuple, aggs: dict | None):
            value = operand(row, aggs)
            if value is None:
                return None
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ExecutionError(f"cannot negate {value!r}")
            return -value

        return run

    def _compile_funccall(self, expr: ast.FuncCall) -> Compiled:
        name = expr.name.lower()
        if name in ast.AGGREGATE_FUNCTIONS:
            # In group context the executor pre-computes aggregate values and
            # passes them through ``aggs`` keyed by the call node itself.
            def run(row: tuple, aggs: dict | None):
                if aggs is None or expr not in aggs:
                    raise ExecutionError(
                        f"aggregate {name.upper()} used outside GROUP BY context"
                    )
                return aggs[expr]

            return run
        if name == "abs":
            if len(expr.args) != 1:
                raise ExecutionError("ABS takes exactly one argument")
            arg = self.compile(expr.args[0])

            def run_abs(row: tuple, aggs: dict | None):
                value = arg(row, aggs)
                if value is None:
                    return None
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ExecutionError(f"ABS of non-numeric {value!r}")
                return abs(value)

            return run_abs
        raise ExecutionError(f"unknown function {expr.name!r}")

    # -- predicates -------------------------------------------------------------------

    def _compile_comparison(self, expr: ast.Comparison) -> Compiled:
        left = self.compile(expr.left)
        op = expr.op
        if op in ("like", "not like"):
            right = self.compile(expr.right)
            negated = op == "not like"

            def run_like(row: tuple, aggs: dict | None):
                a = left(row, aggs)
                b = right(row, aggs)
                if a is None or b is None:
                    return None
                matched = _like_match(str(a), str(b))
                return (not matched) if negated else matched

            return run_like

        if isinstance(expr.right, ast.ScalarSubquery):
            value = self._scalar_subquery_value(expr.right.query)
            right = lambda row, aggs: value
        else:
            right = self.compile(expr.right)

        def run(row: tuple, aggs: dict | None):
            a = left(row, aggs)
            b = right(row, aggs)
            if a is None or b is None:
                return None
            return _compare(op, a, b)

        return run

    def _compile_between(self, expr: ast.Between) -> Compiled:
        value = self.compile(expr.expr)
        low = self.compile(expr.low)
        high = self.compile(expr.high)
        negated = expr.negated

        def run(row: tuple, aggs: dict | None):
            v = value(row, aggs)
            lo = low(row, aggs)
            hi = high(row, aggs)
            if v is None or lo is None or hi is None:
                return None
            inside = _compare(">=", v, lo) and _compare("<=", v, hi)
            return (not inside) if negated else inside

        return run

    def _compile_inlist(self, expr: ast.InList) -> Compiled:
        value = self.compile(expr.expr)
        items = [self.compile(v) for v in expr.values]
        negated = expr.negated

        def run(row: tuple, aggs: dict | None):
            v = value(row, aggs)
            if v is None:
                return None
            member = any(_eq(v, item(row, aggs)) for item in items)
            return (not member) if negated else member

        return run

    def _compile_insubquery(self, expr: ast.InSubquery) -> Compiled:
        value = self.compile(expr.expr)
        result = self.subquery(expr.query)
        if len(result.columns) != 1:
            raise ExecutionError("IN subquery must return exactly one column")
        members = {row[0] for row in result.rows if row[0] is not None}
        negated = expr.negated

        def run(row: tuple, aggs: dict | None):
            v = value(row, aggs)
            if v is None:
                return None
            member = any(_eq(v, m) for m in members)
            return (not member) if negated else member

        return run

    def _compile_scalarsubquery(self, expr: ast.ScalarSubquery) -> Compiled:
        value = self._scalar_subquery_value(expr.query)
        return lambda row, aggs: value

    def _compile_exists(self, expr: ast.Exists) -> Compiled:
        result = self.subquery(expr.query)
        found = bool(result.rows)
        value = (not found) if expr.negated else found
        return lambda row, aggs: value

    def _compile_isnull(self, expr: ast.IsNull) -> Compiled:
        operand = self.compile(expr.expr)
        negated = expr.negated

        def run(row: tuple, aggs: dict | None):
            is_null = operand(row, aggs) is None
            return (not is_null) if negated else is_null

        return run

    def _compile_not(self, expr: ast.Not) -> Compiled:
        operand = self.compile(expr.operand)

        def run(row: tuple, aggs: dict | None):
            value = operand(row, aggs)
            if value is None:
                return None
            return not value

        return run

    def _compile_boolop(self, expr: ast.BoolOp) -> Compiled:
        operands = [self.compile(o) for o in expr.operands]
        if expr.op == "and":

            def run_and(row: tuple, aggs: dict | None):
                unknown = False
                for operand in operands:
                    value = operand(row, aggs)
                    if value is None:
                        unknown = True
                    elif not value:
                        return False
                return None if unknown else True

            return run_and

        def run_or(row: tuple, aggs: dict | None):
            unknown = False
            for operand in operands:
                value = operand(row, aggs)
                if value is None:
                    unknown = True
                elif value:
                    return True
            return None if unknown else False

        return run_or

    # -- helpers ---------------------------------------------------------------

    def _scalar_subquery_value(self, query: ast.Query):
        result = self.subquery(query)
        if len(result.columns) != 1:
            raise ExecutionError("scalar subquery must return exactly one column")
        if len(result.rows) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        if not result.rows:
            return None
        return result.rows[0][0]


# ---------------------------------------------------------------------------
# Value semantics
# ---------------------------------------------------------------------------


def _arith(op: str, a, b):
    if isinstance(a, bool) or isinstance(b, bool):
        raise ExecutionError("arithmetic on boolean values")
    if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
        raise ExecutionError(f"arithmetic on non-numeric values {a!r}, {b!r}")
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            return None  # SQLite convention: division by zero yields NULL
        result = a / b
        return result
    if op == "%":
        if b == 0:
            return None
        return a % b
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


def _eq(a, b) -> bool:
    if b is None:
        return False
    return _compare("=", a, b)


def _compare(op: str, a, b) -> bool:
    """Compare two non-NULL values.

    Numbers compare numerically; strings compare lexicographically
    (case-insensitively for equality, matching how Spider's execution
    comparison treats text); cross-type comparisons order numbers before
    text, like SQLite's type ranking, instead of raising.
    """
    a_num = _as_number(a)
    b_num = _as_number(b)
    if a_num is not None and b_num is not None:
        a, b = a_num, b_num
    elif isinstance(a, str) and isinstance(b, str):
        if op in ("=", "!="):
            result = a.lower() == b.lower()
            return result if op == "=" else not result
    else:
        # mixed number/text: rank numbers first
        rank_a = 0 if a_num is not None else 1
        rank_b = 0 if b_num is not None else 1
        if op == "=":
            return False
        if op == "!=":
            return True
        if op in ("<", "<="):
            return rank_a < rank_b
        return rank_a > rank_b
    if op == "=":
        return a == b
    if op == "!=":
        return a != b
    if op == "<":
        return a < b
    if op == ">":
        return a > b
    if op == "<=":
        return a <= b
    if op == ">=":
        return a >= b
    raise ExecutionError(f"unknown comparison operator {op!r}")


def _as_number(value):
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    return None


_LIKE_CACHE: dict[str, re.Pattern] = {}


def _like_match(text: str, pattern: str) -> bool:
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        regex = re.escape(pattern).replace(r"%", ".*").replace(r"_", ".")
        compiled = re.compile(f"^{regex}$", re.IGNORECASE | re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled.match(text) is not None
