"""In-memory relation storage.

A :class:`Table` is the physical counterpart of a
:class:`~repro.schema.model.TableDef`: ordered column names plus a list of
row tuples.  Values are plain Python scalars (int/float/str/bool/None); the
engine's NULL is Python ``None``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import ExecutionError
from repro.schema.model import ColumnType, TableDef

#: Python types accepted for each logical column type on insert.
_ACCEPTED: dict[ColumnType, tuple[type, ...]] = {
    ColumnType.INTEGER: (int,),
    ColumnType.REAL: (int, float),
    ColumnType.TEXT: (str,),
    ColumnType.BOOLEAN: (bool,),
    ColumnType.DATE: (str,),
}


class Table:
    """A named relation with typed columns and tuple rows."""

    def __init__(self, definition: TableDef, rows: Iterable[tuple] | None = None) -> None:
        self.definition = definition
        self.name = definition.name
        self.columns = [c.name for c in definition.columns]
        self._index = {name.lower(): i for i, name in enumerate(self.columns)}
        self.rows: list[tuple] = []
        #: Monotonic mutation counter; columnar snapshots
        #: (:mod:`repro.engine.vector.columns`) cache against it.
        self.version = 0
        if rows is not None:
            self.insert_many(rows)

    # -- mutation -------------------------------------------------------------

    def insert(self, row: tuple | list) -> None:
        """Insert one row, validating arity and value types."""
        if len(row) != len(self.columns):
            raise ExecutionError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(row)}"
            )
        coerced = []
        for value, column in zip(row, self.definition.columns):
            if value is None:
                coerced.append(None)
                continue
            accepted = _ACCEPTED[column.type]
            if isinstance(value, bool) and column.type is not ColumnType.BOOLEAN:
                raise ExecutionError(
                    f"boolean value in non-boolean column {self.name}.{column.name}"
                )
            if not isinstance(value, accepted):
                raise ExecutionError(
                    f"value {value!r} is not valid for "
                    f"{column.type.value} column {self.name}.{column.name}"
                )
            if column.type is ColumnType.REAL and isinstance(value, int):
                value = float(value)
            coerced.append(value)
        self.rows.append(tuple(coerced))
        self.version += 1

    def insert_many(self, rows: Iterable[tuple | list]) -> None:
        for row in rows:
            self.insert(row)

    # -- access ---------------------------------------------------------------

    def column_index(self, name: str) -> int:
        try:
            return self._index[name.lower()]
        except KeyError:
            raise ExecutionError(f"no column {name!r} in table {self.name!r}") from None

    def column_values(self, name: str) -> list:
        """All values of one column, in row order (NULLs included)."""
        idx = self.column_index(name)
        return [row[idx] for row in self.rows]

    def distinct_values(self, name: str) -> list:
        """Distinct non-NULL values of one column, in first-seen order."""
        seen: dict = {}
        for value in self.column_values(name):
            if value is not None and value not in seen:
                seen[value] = None
        return list(seen)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, {len(self.rows)} rows)"

    def estimated_bytes(self) -> int:
        """Rough storage footprint, used for the Table-1 size column."""
        if not self.rows:
            return 0
        sample = self.rows[: min(100, len(self.rows))]
        per_row = sum(_value_bytes(v) for row in sample for v in row) / len(sample)
        return int(per_row * len(self.rows))


def _value_bytes(value) -> int:
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    return len(str(value)) + 1
