"""``repro.engine.vector`` — columnar execution with a cost-based planner.

The row executor (:mod:`repro.engine.executor`) interprets one closure tree
per row; this subsystem executes the same SQL dialect over *columns*:

* :mod:`~repro.engine.vector.columns` decomposes each table once into typed
  per-column value lists (invalidated by the table's version counter);
* :mod:`~repro.engine.vector.batch` carries intermediate results as
  selection vectors over those columns (late materialisation);
* :mod:`~repro.engine.vector.vexpr` compiles AST expressions to vector
  evaluators with the row engine's exact value semantics;
* :mod:`~repro.engine.vector.planner` orders joins and places filters with
  the same :class:`~repro.schema.enhanced.ColumnStats` the static analyzer's
  cost pass consumes, producing an explainable
  :class:`~repro.engine.vector.plan.QueryPlan`;
* :mod:`~repro.engine.vector.executor` runs plans (cached per SQL text)
  and, for anything the vector path cannot reproduce bit-for-bit, falls
  back per-query to the row engine — the semantic authority.

The contract is byte identity: for every query both engines accept, the
vector engine returns the same columns, the same rows, in the same order.
"""

from __future__ import annotations

from repro.engine.vector.executor import VectorEngine
from repro.engine.vector.plan import QueryPlan
from repro.engine.vector.planner import VectorUnsupported

__all__ = ["QueryPlan", "VectorEngine", "VectorUnsupported"]
