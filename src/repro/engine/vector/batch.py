"""Columnar batches: selection vectors over per-source base columns.

A :class:`Batch` is the vector engine's intermediate result: one
:class:`SourceView` per FROM/JOIN source, each holding the source's base
column vectors plus a selection-index list.  All views of a batch have the
same length; row ``j`` of the logical joined relation is the combination of
``view.indices[j]`` across views.  Columns materialise lazily (one gather
per referenced column) — filters and joins only ever touch the columns
their predicates and keys name.

Row-order contract: the row engine emits joined rows in lexicographic
order of per-source row ids, sources taken in FROM/JOIN declaration order.
A batch tracks whether its physical order still *is* that order
(``canonical``); when the planner's join reordering breaks it,
:func:`restore_order` sorts the final batch by the declaration-ordered
row-id tuples — giving the planner full reordering freedom while keeping
output rows byte-identical to the row engine.
"""

from __future__ import annotations

from repro.engine.vector.columns import ColumnTable

#: Selection index marking an all-NULL pseudo row (the representative row
#: of a global aggregate over an empty input).
NULL_ROW = -1


class SourceView:
    """One FROM/JOIN source inside a batch: base columns + selection."""

    __slots__ = (
        "binding", "decl", "columns", "_vectors", "indices", "has_null", "full",
    )

    def __init__(
        self,
        binding: str,
        decl: int,
        columns: list[str],
        vectors: list[list],
        indices: list[int],
        has_null: bool = False,
        full: bool = False,
    ) -> None:
        self.binding = binding
        self.decl = decl
        self.columns = columns
        self._vectors = vectors
        self.indices = indices
        self.has_null = has_null
        #: True when ``indices`` is the untouched all-rows selection, so
        #: ``column`` can return the base vector without a gather copy.
        self.full = full

    @classmethod
    def from_table(cls, binding: str, decl: int, table: ColumnTable) -> "SourceView":
        vectors = [table.vector(i) for i in range(len(table.columns))]
        return cls(
            binding, decl, table.columns, vectors, table.identity, full=True
        )

    @classmethod
    def from_rows(
        cls, binding: str, decl: int, columns: list[str], rows: list[tuple]
    ) -> "SourceView":
        """Decompose a derived table's row-shaped result."""
        vectors: list[list] = [
            [row[i] for row in rows] for i in range(len(columns))
        ]
        return cls(
            binding, decl, [c.lower() for c in columns], vectors,
            list(range(len(rows))), full=True,
        )

    def __len__(self) -> int:
        return len(self.indices)

    def column(self, position: int) -> list:
        """Materialise one column under the current selection."""
        base = self._vectors[position]
        if self.full:
            return base
        if self.has_null:
            return [None if i == NULL_ROW else base[i] for i in self.indices]
        return [base[i] for i in self.indices]

    def take(self, positions: list[int]) -> "SourceView":
        """Compose the selection with ``positions`` (indices into this view).
        Views never mutate their index list, so sharing ``positions`` across
        the views of a batch is safe."""
        if self.full:
            return SourceView(
                self.binding, self.decl, self.columns, self._vectors,
                positions, self.has_null,
            )
        indices = self.indices
        return SourceView(
            self.binding, self.decl, self.columns, self._vectors,
            [indices[p] for p in positions], self.has_null,
        )

    def null_view(self) -> "SourceView":
        """A one-row view whose every column reads NULL."""
        return SourceView(
            self.binding, self.decl, self.columns, self._vectors,
            [NULL_ROW], has_null=True,
        )


class Batch:
    """A fixed-length collection of equally-selected source views."""

    __slots__ = ("views", "n", "canonical")

    def __init__(self, views: list[SourceView], n: int, canonical: bool) -> None:
        self.views = views
        self.n = n
        self.canonical = canonical

    @classmethod
    def unit(cls) -> "Batch":
        """The one-pseudo-row batch of a FROM-less select."""
        return cls([], 1, True)

    @classmethod
    def from_view(cls, view: SourceView) -> "Batch":
        return cls([view], len(view), True)

    def view_for(self, binding: str) -> SourceView:
        for view in self.views:
            if view.binding == binding:
                return view
        raise KeyError(binding)

    def column(self, binding: str, position: int) -> list:
        return self.view_for(binding).column(position)

    def take(self, positions: list[int], monotonic: bool = False) -> "Batch":
        """Select ``positions`` from every view.  ``monotonic`` asserts the
        positions are strictly increasing (a filter), which preserves the
        canonical row order; any other selection loses it."""
        views = [view.take(positions) for view in self.views]
        return Batch(views, len(positions), self.canonical and monotonic)

    def null_row(self) -> "Batch":
        """A one-row batch whose every column reads NULL (the representative
        row of an empty global aggregate group)."""
        return Batch([view.null_view() for view in self.views], 1, False)


def restore_order(batch: Batch) -> Batch:
    """Sort a batch back into the row engine's declaration-order row-id
    order (a no-op when the physical order is already canonical)."""
    if batch.canonical or batch.n <= 1 or not batch.views:
        return batch
    ordered_views = sorted(batch.views, key=lambda view: view.decl)
    index_lists = [view.indices for view in ordered_views]
    positions = sorted(
        range(batch.n), key=lambda j: tuple(ids[j] for ids in index_lists)
    )
    taken = batch.take(positions)
    taken.canonical = True
    return taken
