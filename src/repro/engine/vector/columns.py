"""Columnar table storage: one row→column decomposition per table version.

The :class:`ColumnStore` is the vector engine's physical layer.  Each
:class:`~repro.engine.table.Table` is transposed once into per-column value
lists; the table's monotonic ``version`` counter (bumped on every insert)
invalidates the cached decomposition, so databases mutated after loading
stay correct without any explicit cache management by callers.

The store also profiles :class:`~repro.schema.enhanced.ColumnStats` lazily
per column — the same statistics dataclass the static analyzer's cost pass
(:mod:`repro.analysis.cost`) consumes — which the planner uses for join
ordering and filter placement.  Stats are exact (profiled from the stored
values, not sampled) and cached per table version.
"""

from __future__ import annotations

from repro.checks.lockorder import new_lock
from repro.schema.enhanced import ColumnStats

#: Distinct-value sets up to this size are kept on the stats (enabling the
#: cost pass's exact IN/equality exclusion checks); larger sets are dropped.
MAX_STAT_VALUES = 64


class ColumnTable:
    """One table decomposed into per-column value lists (immutable snapshot)."""

    __slots__ = ("name", "version", "n_rows", "columns", "_vectors", "identity")

    def __init__(
        self,
        name: str,
        version: int,
        n_rows: int,
        columns: list[str],
        vectors: list[list],
    ) -> None:
        self.name = name
        self.version = version
        self.n_rows = n_rows
        #: Lower-cased column names, in schema order.
        self.columns = columns
        self._vectors = vectors
        #: Shared all-rows selection (never mutated): scans start from it,
        #: and views recognise it to skip the gather copy entirely.
        self.identity: list[int] = list(range(n_rows))

    def vector(self, position: int) -> list:
        """The full value list of the column at ``position``."""
        return self._vectors[position]


def _profile(vector: list) -> ColumnStats:
    """Exact column statistics over one value vector."""
    n_rows = len(vector)
    present = [v for v in vector if v is not None]
    distinct: dict = dict.fromkeys(present)
    n_distinct = len(distinct)
    min_value = max_value = None
    if present:
        try:
            min_value = min(present)
            max_value = max(present)
        except TypeError:
            # Mixed-type column: leave the range unknown (sound for the
            # cost pass, which treats missing bounds as "cannot exclude").
            min_value = max_value = None
    values = frozenset(distinct) if 0 < n_distinct <= MAX_STAT_VALUES else None
    return ColumnStats(
        n_rows=n_rows,
        n_distinct=n_distinct,
        n_null=n_rows - len(present),
        min_value=min_value,
        max_value=max_value,
        values=values,
    )


class ColumnStore:
    """Version-tracked columnar snapshots of one database's tables."""

    def __init__(self, database) -> None:
        self._database = database
        self._tables: dict[str, ColumnTable] = {}
        self._stats: dict[tuple[str, str], tuple[int, ColumnStats]] = {}
        self._indexes: dict[tuple[str, int, bool], tuple[int, dict]] = {}
        self._lock = new_lock("engine.vector.store")

    def table(self, name: str) -> ColumnTable:
        """The columnar snapshot of ``name``, rebuilt when the row-store
        version moved (raises the row engine's error for unknown tables)."""
        source = self._database.table(name)
        key = source.name.lower()
        with self._lock:
            cached = self._tables.get(key)
            if cached is not None and cached.version == source.version:
                return cached
            return self._load_locked(key, source)

    def _load_locked(self, key: str, source) -> ColumnTable:
        rows = source.rows
        vectors: list[list] = [
            [row[i] for row in rows] for i in range(len(source.columns))
        ]
        loaded = ColumnTable(
            name=source.name,
            version=source.version,
            n_rows=len(rows),
            columns=[c.lower() for c in source.columns],
            vectors=vectors,
        )
        self._tables[key] = loaded
        return loaded

    def join_index(self, name: str, position: int, raw: bool, build) -> dict:
        """A shared hash-join build index over a full (unfiltered) column:
        key -> row-id list, built once per table version by ``build`` and
        reused by every execution.  Callers must treat the returned dict and
        its lists as immutable."""
        table = self.table(name)
        key = (table.name.lower(), position, raw)
        with self._lock:
            cached = self._indexes.get(key)
            if cached is not None and cached[0] == table.version:
                return cached[1]
            index = build(table.vector(position))
            self._indexes[key] = (table.version, index)
            return index

    def stats(self, name: str, column: str) -> ColumnStats | None:
        """Lazily-profiled :class:`ColumnStats` for ``name.column`` (None
        when the column does not exist — the planner treats that as
        "no statistics" rather than an error; resolution errors surface
        through the executor with the row engine's exact message)."""
        table = self.table(name)
        key = (table.name.lower(), column.lower())
        try:
            position = table.columns.index(column.lower())
        except ValueError:
            return None
        with self._lock:
            cached = self._stats.get(key)
            if cached is not None and cached[0] == table.version:
                return cached[1]
            stats = _profile(table.vector(position))
            self._stats[key] = (table.version, stats)
            return stats
