"""The vector engine: cached cost-based plans executed over columnar batches.

:class:`VectorEngine` is a drop-in replacement for the row
:class:`~repro.engine.executor.Executor` (same ``execute(query) -> Result``
surface, same results byte for byte).  Differences that buy the speed:

* **One-time columnar load** — each table is transposed once per version
  into the engine's :class:`~repro.engine.vector.columns.ColumnStore`.
* **Plan caching** — parsing aside, the per-query planning work (conjunct
  classification, join ordering, expression compilation) happens once per
  distinct query; repeated executions replay the compiled plan.
* **Selection-vector filters and hash joins** — predicates evaluate
  column-at-a-time and only the referenced columns are ever gathered.

Fallback contract: any construct the planner rejects
(:class:`~repro.engine.vector.planner.VectorUnsupported`) *or any execution
error* re-runs the whole query on a fresh row executor, making the row
engine the semantic authority for both results and error messages.  The
one theoretical divergence this cannot cover — the vector engine
*succeeding* where the row engine would raise a data-dependent type error
on a row that pushdown/reordering eliminated earlier — cannot occur on
well-typed benchmark data (see DESIGN.md).

Observability: ``engine.vector.query`` spans carry ``rows``,
``rows_scanned`` (corrected: derived-table result rows are not scan work),
``rows_joined``, ``batches``, ``plan_hash`` and ``fallback``; plan builds
get an ``engine.plan`` span; counters land in a
:class:`~repro.obs.MetricsRegistry`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.errors import ExecutionError
from repro.obs import MetricsRegistry, get_tracer
from repro.sql import ast
from repro.checks.lockorder import new_lock
from repro.engine.aggregates import AGGREGATES
from repro.engine.executor import (
    MAX_INTERMEDIATE_ROWS,
    Executor,
    Result,
    _apply_set_op,
    _canonical,
    _dedupe,
    _sort_component,
)
from repro.engine.vector.batch import Batch, SourceView, restore_order
from repro.engine.vector.columns import ColumnStore
from repro.engine.vector.plan import (
    RAW,
    CrossJoinNode,
    FilterNode,
    JoinNode,
    QueryPlan,
    ScanNode,
    SelectPlan,
    SubqueryScanNode,
)
from repro.engine.vector.planner import Planner, VectorUnsupported
from repro.engine.vector.vexpr import EvalContext

#: Compiled plans kept per engine (LRU by query AST).
PLAN_CACHE_SIZE = 256


class ExecState:
    """Per-execution mutable state: work counters plus the subquery memo
    (kept off the engine so concurrent executions never share mutables)."""

    __slots__ = ("rows_scanned", "rows_joined", "batches", "subqueries")

    def __init__(self) -> None:
        self.rows_scanned = 0
        self.rows_joined = 0
        self.batches = 0
        self.subqueries: dict = {}


class VectorEngine:
    """Executes queries for one database via cached columnar plans."""

    def __init__(self, database, metrics: MetricsRegistry | None = None) -> None:
        self.database = database
        self.store = ColumnStore(database)
        self.metrics = metrics or MetricsRegistry()
        self._plans: OrderedDict[ast.Query, QueryPlan] = OrderedDict()
        # Identity-keyed front cache: repeated executions of the *same*
        # parsed Query object skip the deep structural hash.  Values hold a
        # strong reference to the query so its id cannot be recycled.
        self._plans_by_id: OrderedDict[int, tuple[ast.Query, QueryPlan]] = (
            OrderedDict()
        )
        self._lock = new_lock("engine.vector")
        self._local = threading.local()
        self._planner = Planner(self.store, self._nested, database)
        self._queries = self.metrics.counter("engine.vector.queries")
        self._fallbacks = self.metrics.counter("engine.vector.fallbacks")
        self._plans_built = self.metrics.counter("engine.vector.plans_built")
        self._plan_hits = self.metrics.counter("engine.vector.plan_cache_hits")

    # -- entry point -------------------------------------------------------------

    def execute(self, query: ast.Query) -> Result:
        self._queries.inc()
        tracer = get_tracer()
        if not tracer.enabled:
            return self._execute(query, None)
        with tracer.span("engine.vector.query") as span:
            return self._execute(query, span)

    def explain(self, query: ast.Query, sql: str | None = None) -> str:
        """The costed plan tree, or the reason the query falls back."""
        try:
            plan = self._plan(query, sql)
        except VectorUnsupported as exc:
            return f"fallback to row engine: {exc}"
        return plan.render()

    def _execute(self, query: ast.Query, span) -> Result:
        state = ExecState()
        try:
            plan, cached = self._plan_traced(query)
            result = self._with_state(state, plan)
        except VectorUnsupported as exc:
            return self._fallback(query, span, str(exc))
        except ExecutionError as exc:
            # The row engine is the semantic authority for errors too: it
            # either raises the identical error or (when pushdown evaluated
            # an expression on rows it would never have seen) succeeds.
            return self._fallback(query, span, str(exc))
        if span is not None:
            span.set_attr("rows", len(result.rows))
            span.set_attr("rows_scanned", state.rows_scanned)
            span.set_attr("rows_joined", state.rows_joined)
            span.set_attr("batches", state.batches)
            span.set_attr("plan_hash", plan.plan_hash)
            span.set_attr("plan_cached", cached)
            span.set_attr("fallback", False)
        return result

    def _with_state(self, state: ExecState, plan: QueryPlan) -> Result:
        previous = getattr(self._local, "state", None)
        self._local.state = state
        try:
            return self._execute_plan(plan, state)
        finally:
            self._local.state = previous

    def _nested(self, query: ast.Query) -> Result:
        """Execute an IN/scalar/EXISTS subquery mid-evaluation (planned and
        cached like any query, counters folded into the active execution)."""
        state = getattr(self._local, "state", None)
        if state is None:  # pragma: no cover - defensive
            state = ExecState()
        plan, _cached = self._plan_traced(query)
        return self._execute_plan(plan, state)

    def _fallback(self, query: ast.Query, span, reason: str) -> Result:
        self._fallbacks.inc()
        if span is not None:
            span.set_attr("fallback", True)
            span.set_attr("fallback_reason", reason)
        return Executor(self.database).execute(query)

    # -- planning ----------------------------------------------------------------

    def _plan_traced(self, query: ast.Query) -> tuple[QueryPlan, bool]:
        key = id(query)
        with self._lock:
            hit = self._plans_by_id.get(key)
            if hit is not None and hit[0] is query:
                plan = hit[1]
            else:
                plan = self._plans.get(query)
                if plan is not None:
                    self._plans.move_to_end(query)
                    self._remember_id_locked(key, query, plan)
        if plan is not None:
            self._plan_hits.inc()
            return plan, True
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span("engine.plan") as span:
                plan = self._planner.plan_query(query)
                span.set_attr("plan_hash", plan.plan_hash)
        else:
            plan = self._planner.plan_query(query)
        self._plans_built.inc()
        with self._lock:
            self._plans[query] = plan
            while len(self._plans) > PLAN_CACHE_SIZE:
                self._plans.popitem(last=False)
            self._remember_id_locked(id(query), query, plan)
        return plan, False

    def _remember_id_locked(
        self, key: int, query: ast.Query, plan: QueryPlan
    ) -> None:
        self._plans_by_id[key] = (query, plan)
        while len(self._plans_by_id) > PLAN_CACHE_SIZE:
            self._plans_by_id.popitem(last=False)

    def _plan(self, query: ast.Query, sql: str | None = None) -> QueryPlan:
        plan, _cached = self._plan_traced(query)
        if sql is not None and plan.sql is None:
            plan.sql = sql
        return plan

    # -- plan execution ----------------------------------------------------------

    def _execute_plan(self, plan: QueryPlan, state: ExecState) -> Result:
        left = self._execute_select_plan(plan.select_plan, state)
        if plan.set_op is None or plan.right is None:
            return left
        right = self._execute_plan(plan.right, state)
        if len(left.columns) != len(right.columns):
            raise ExecutionError("set operation arms have different arities")
        return _apply_set_op(plan.set_op, left, right, plan.set_all)

    def _execute_select_plan(self, splan: SelectPlan, state: ExecState) -> Result:
        if splan.source is None:
            batch = Batch.unit()
            where_fn = splan.stages.get("where_fn")
            if where_fn is not None:
                ctx = EvalContext(batch, None, state.subqueries)
                values = where_fn(ctx)
                positions = [j for j, value in enumerate(values) if value is True]
                batch = batch.take(positions, monotonic=True)
        else:
            batch = self._execute_source(splan.source, state)
        # The row engine's output order is declaration-order row ids; group
        # first-seen order, DISTINCT first-seen order and sort stability all
        # depend on it, so restore before any stage runs.
        batch = restore_order(batch)
        if splan.aggregate:
            return self._aggregate(splan, batch, state)
        return self._plain(splan, batch, state)

    # -- source tree -------------------------------------------------------------

    def _execute_source(self, node, state: ExecState) -> Batch:
        if isinstance(node, ScanNode):
            table = self.store.table(node.table)
            # Logical scan work (counted whether or not the selection below
            # is served from cache, so span attrs are run-stable).
            state.rows_scanned += table.n_rows
            view = SourceView.from_table(node.binding, node.decl, table)
            state.batches += 1
            if not node.filters:
                return Batch.from_view(view)
            # The filters' combined selection is a pure function of the
            # database contents; replay it while nothing changed.
            version = self.database.data_version()
            cached = node.selection_cache
            if cached is not None and cached[0] == version:
                return Batch.from_view(view).take(cached[1], monotonic=True)
            batch = self._apply_filters(
                Batch.from_view(view), node.filters, state
            )
            node.selection_cache = (version, batch.views[0].indices)
            return batch
        if isinstance(node, SubqueryScanNode):
            result = self._execute_plan(node.plan, state)
            batch = Batch.from_view(
                SourceView.from_rows(
                    node.binding, node.decl, result.columns, result.rows
                )
            )
            state.batches += 1
            return self._apply_filters(batch, node.filters, state)
        if isinstance(node, JoinNode):
            left = self._execute_source(node.left, state)
            right = self._execute_source(node.right, state)
            return self._hash_join(left, right, node, state)
        if isinstance(node, CrossJoinNode):
            left = self._execute_source(node.left, state)
            right = self._execute_source(node.right, state)
            return self._cross_join(left, right, state)
        if isinstance(node, FilterNode):
            batch = self._execute_source(node.input, state)
            batch = self._apply_filters(batch, node.filters, state)
            return self._apply_raw_edges(batch, node.raw_edges, state)
        raise ExecutionError(f"unknown plan node {type(node).__name__}")

    def _apply_filters(self, batch: Batch, filters, state: ExecState) -> Batch:
        for pushed in filters:
            if batch.n == 0:
                break
            ctx = EvalContext(batch, None, state.subqueries)
            values = pushed.fn(ctx)
            positions = [j for j, value in enumerate(values) if value is True]
            batch = batch.take(positions, monotonic=True)
            state.batches += 1
        return batch

    def _apply_raw_edges(self, batch: Batch, edges, state: ExecState) -> Batch:
        for edge in edges:
            if batch.n == 0:
                break
            left = batch.column(edge.left_binding, edge.left_position)
            right = batch.column(edge.right_binding, edge.right_position)
            # Raw hash-key equality: Python ``==`` with the same identity
            # shortcut dict probing has, NULLs never match.
            positions = [
                j
                for j in range(batch.n)
                if left[j] is not None
                and right[j] is not None
                and (left[j] is right[j] or left[j] == right[j])
            ]
            batch = batch.take(positions, monotonic=True)
            state.batches += 1
        return batch

    def _hash_join(
        self, left: Batch, right: Batch, node: JoinNode, state: ExecState
    ) -> Batch:
        keys = node.keys
        left_columns = [
            left.column(k.left_binding, k.left_position) for k in keys
        ]
        right_columns = [
            right.column(k.right_binding, k.right_position) for k in keys
        ]
        raw = [k.semantics == RAW for k in keys]

        if len(keys) == 1:
            right_node = node.right
            if (
                isinstance(right_node, ScanNode)
                and not right_node.filters
                and len(right.views) == 1
                and right.views[0].full
            ):
                # Unfiltered scan build side: positions are row ids, so the
                # index is shareable across executions (built per version).
                is_raw = raw[0]
                index = self.store.join_index(
                    right_node.table,
                    keys[0].right_position,
                    is_raw,
                    lambda column: _build_single(column, is_raw),
                )
            else:
                index = _build_single(right_columns[0], raw[0])
            probe = _probe_column(left_columns[0], raw[0])
        else:
            index = {}
            for j in range(right.n):
                key = _join_key(right_columns, raw, j)
                if key is not None:
                    index.setdefault(key, []).append(j)
            probe = [_join_key(left_columns, raw, i) for i in range(left.n)]

        left_positions: list[int] = []
        right_positions: list[int] = []
        append_left = left_positions.append
        append_right = right_positions.append
        get = index.get
        for i, key in enumerate(probe):
            if key is None:
                continue
            matches = get(key)
            if matches is None:
                continue
            for j in matches:
                append_left(i)
                append_right(j)
            if len(left_positions) > MAX_INTERMEDIATE_ROWS:
                raise ExecutionError("join result too large")
        state.rows_joined += len(left_positions)
        return self._combine(left, right, left_positions, right_positions, state)

    def _cross_join(self, left: Batch, right: Batch, state: ExecState) -> Batch:
        if left.n * max(right.n, 1) > MAX_INTERMEDIATE_ROWS:
            raise ExecutionError("cartesian product too large")
        left_positions = [i for i in range(left.n) for _ in range(right.n)]
        right_positions = list(range(right.n)) * left.n
        state.rows_joined += len(left_positions)
        return self._combine(left, right, left_positions, right_positions, state)

    def _combine(
        self,
        left: Batch,
        right: Batch,
        left_positions: list[int],
        right_positions: list[int],
        state: ExecState,
    ) -> Batch:
        views = [view.take(left_positions) for view in left.views]
        views.extend(view.take(right_positions) for view in right.views)
        max_left_decl = max((view.decl for view in left.views), default=-1)
        min_right_decl = min((view.decl for view in right.views), default=-1)
        canonical = (
            left.canonical and right.canonical and min_right_decl > max_left_decl
        )
        state.batches += 1
        return Batch(views, len(left_positions), canonical)

    # -- plain path --------------------------------------------------------------

    def _plain(self, splan: SelectPlan, batch: Batch, state: ExecState) -> Result:
        select = splan.select
        ctx = EvalContext(batch, None, state.subqueries)
        order_fns = splan.stages.get("order_fns")
        if order_fns:
            batch = _sort_batch(batch, ctx, order_fns)
            ctx = EvalContext(batch, None, state.subqueries)
        projected = _project(splan.stages["projection"], ctx)
        if select.distinct:
            projected = _dedupe(projected)
        if select.limit is not None:
            projected = projected[: select.limit]
        return Result(columns=splan.labels, rows=projected)

    # -- aggregate path ----------------------------------------------------------

    def _aggregate(self, splan: SelectPlan, batch: Batch, state: ExecState) -> Result:
        select = splan.select
        stages = splan.stages
        ctx = EvalContext(batch, None, state.subqueries)

        group_fns = stages.get("group_fns") or []
        groups: dict = {}
        if len(group_fns) == 1:
            canon = [_canonical(value) for value in group_fns[0](ctx)]
            for j, key in enumerate(canon):
                groups.setdefault(key, []).append(j)
        elif group_fns:
            key_vectors = [
                [_canonical(value) for value in fn(ctx)] for fn in group_fns
            ]
            for j, key in enumerate(zip(*key_vectors)):
                groups.setdefault(key, []).append(j)
        else:
            groups[()] = list(range(batch.n))  # single implicit group

        agg_nodes = stages.get("agg_nodes", [])
        arg_fns = stages.get("agg_arg_fns", {})
        arg_vectors = {node: fn(ctx) for node, fn in arg_fns.items()}

        member_lists = list(groups.values())
        aggenv: dict[ast.FuncCall, list] = {node: [] for node in agg_nodes}
        for members in member_lists:
            for node in agg_nodes:
                name = node.name.lower()
                if node.args and isinstance(node.args[0], ast.Star):
                    if name != "count":
                        raise ExecutionError(f"{name.upper()}(*) is not valid")
                    aggenv[node].append(len(members))
                    continue
                vector = arg_vectors[node]
                values = [vector[j] for j in members]
                aggenv[node].append(AGGREGATES[name](values, distinct=node.distinct))

        # Representative rows: the first member of each group (first-seen
        # group order == ascending first positions, so the take is monotonic);
        # an empty global group reads as one all-NULL row.
        if member_lists and not member_lists[0] and not group_fns:
            rep_batch = batch.null_row()
        else:
            rep_batch = batch.take(
                [members[0] for members in member_lists], monotonic=True
            )
        state.batches += 1
        ctx = EvalContext(rep_batch, aggenv, state.subqueries)

        having_fn = stages.get("having_fn")
        if having_fn is not None:
            values = having_fn(ctx)
            positions = [j for j, value in enumerate(values) if value is True]
            rep_batch, aggenv = _take_groups(rep_batch, aggenv, positions, True)
            ctx = EvalContext(rep_batch, aggenv, state.subqueries)

        order_fns = stages.get("order_fns")
        if order_fns:
            positions = _sort_positions(ctx, order_fns)
            rep_batch, aggenv = _take_groups(rep_batch, aggenv, positions, False)
            ctx = EvalContext(rep_batch, aggenv, state.subqueries)

        projected = _project(stages["projection"], ctx)
        if select.distinct:
            projected = _dedupe(projected)
        if select.limit is not None:
            projected = projected[: select.limit]
        return Result(columns=splan.labels, rows=projected)


# -- stage helpers ---------------------------------------------------------------


def _build_single(column: list, is_raw: bool) -> dict:
    """Single-key build side: value -> positions (NULLs never match; CI
    keys lower text and drop NaN, mirroring ``_compare`` equality)."""
    index: dict = {}
    if is_raw:
        for j, value in enumerate(column):
            if value is not None:
                index.setdefault(value, []).append(j)
        return index
    for j, value in enumerate(column):
        if value is None:
            continue
        if isinstance(value, str):
            value = value.lower()
        elif isinstance(value, float) and value != value:
            continue
        index.setdefault(value, []).append(j)
    return index


def _probe_column(column: list, is_raw: bool) -> list:
    """Single-key probe side: transformed keys, None where no match is
    possible."""
    if is_raw:
        return column
    out = []
    for value in column:
        if isinstance(value, str):
            out.append(value.lower())
        elif isinstance(value, float) and value != value:
            out.append(None)
        else:
            out.append(value)
    return out


def _join_key(columns: list[list], raw: list[bool], j: int):
    """The hash key of row ``j``, or None when it cannot match anything.

    Raw components keep the value untouched (Python dict equality — exactly
    the row engine's hash-join keying).  CI components mirror ``_compare``
    equality: text lowers, numbers and bools unify under Python ``==``
    already, and NaN (never equal under ``_compare``) drops the row.
    """
    parts = []
    for column, is_raw in zip(columns, raw):
        value = column[j]
        if value is None:
            return None
        if not is_raw:
            if isinstance(value, str):
                value = value.lower()
            elif isinstance(value, float) and value != value:
                return None
        parts.append(value)
    return tuple(parts)


def _project(projection, ctx: EvalContext) -> list[tuple]:
    columns = []
    for item in projection:
        if item[0] == "slot":
            columns.append(ctx.column(item[1], item[2]))
        else:
            columns.append(item[1](ctx))
    if not columns:
        return [()] * ctx.n
    if len(columns) == 1:
        return [(value,) for value in columns[0]]
    return list(zip(*columns))


def _sort_positions(ctx: EvalContext, order_fns) -> list[int]:
    components = [
        [_sort_component(value, desc) for value in fn(ctx)]
        for fn, desc in order_fns
    ]
    if len(components) == 1:
        keys = components[0]
    else:
        keys = list(zip(*components))
    return sorted(range(ctx.n), key=keys.__getitem__)


def _sort_batch(batch: Batch, ctx: EvalContext, order_fns) -> Batch:
    return batch.take(_sort_positions(ctx, order_fns))


def _take_groups(rep_batch: Batch, aggenv: dict, positions: list[int], monotonic: bool):
    batch = rep_batch.take(positions, monotonic=monotonic)
    env = {
        node: [vector[p] for p in positions] for node, vector in aggenv.items()
    }
    return batch, env
