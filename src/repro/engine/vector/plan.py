"""Explainable plan trees for the vector engine.

The planner compiles one :class:`QueryPlan` per SQL query: a left-deep tree
of source nodes (scans, hash joins, cross joins, filters) per SELECT core,
wrapped by the core's aggregate/sort/projection stages.  Every node carries
the planner's cardinality estimate, so ``sciencebenchmark explain`` renders
the full costed tree, and a stable ``plan_hash`` (BLAKE2b over the rendered
shape, estimates excluded) identifies the plan on ``engine.plan`` spans and
in benchmark reports.

The same tree is what the executor walks — there is no second, hidden plan
representation, so what ``explain`` prints is exactly what runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.sql import ast
from repro.sql.printer import to_sql
from repro.engine.vector.vexpr import VCompiled

#: Edge/filter semantics: "raw" mirrors the row engine's hash-join keying
#: (Python equality, NULLs drop); "ci" mirrors ``_compare`` equality
#: (numbers unify, text case-insensitive).
RAW = "raw"
CI = "ci"


@dataclass
class PushedFilter:
    """One conjunct pushed down to a scan (or applied post-join)."""

    expr: ast.Expr | None
    fn: VCompiled
    selectivity: float
    label: str = ""

    def describe(self) -> str:
        if self.expr is None:
            return self.label
        return to_sql(self.expr)


@dataclass
class EdgeKey:
    """One equality key of a hash join: left/right (binding, column position)."""

    left_binding: str
    left_position: int
    right_binding: str
    right_position: int
    semantics: str  # RAW | CI
    label: str = ""

    def describe(self) -> str:
        return self.label or (
            f"{self.left_binding}[{self.left_position}] = "
            f"{self.right_binding}[{self.right_position}]"
        )


@dataclass
class ScanNode:
    """A base-table scan with pushed-down filters."""

    binding: str
    table: str
    decl: int
    filters: list[PushedFilter] = field(default_factory=list)
    base_rows: int = 0
    est_rows: float = 0.0
    #: Runtime memo ``(data_version, row_ids)``: the filters' combined
    #: selection, reusable while the database contents are unchanged.
    selection_cache: tuple[int, list[int]] | None = field(
        default=None, repr=False
    )

    def describe(self) -> str:
        note = f" filters=[{', '.join(f.describe() for f in self.filters)}]" if self.filters else ""
        return (
            f"Scan {self.table}"
            + (f" AS {self.binding}" if self.binding != self.table.lower() else "")
            + note
        )

    def shape(self) -> str:
        return f"Scan {self.table} {self.binding} [{';'.join(f.describe() for f in self.filters)}]"

    def children(self):
        return ()


@dataclass
class SubqueryScanNode:
    """A derived table in FROM, planned as a nested :class:`QueryPlan`."""

    binding: str
    decl: int
    plan: "QueryPlan"
    filters: list[PushedFilter] = field(default_factory=list)
    est_rows: float = 0.0

    def describe(self) -> str:
        note = f" filters=[{', '.join(f.describe() for f in self.filters)}]" if self.filters else ""
        return f"SubqueryScan {self.binding}{note}"

    def shape(self) -> str:
        return f"SubqueryScan {self.binding} ({self.plan.shape()})"

    def children(self):
        return ()


@dataclass
class JoinNode:
    """A hash join: probe the accumulated left side, build on the right scan."""

    left: "SourceNode"
    right: "ScanNode | SubqueryScanNode"
    keys: list[EdgeKey]
    est_rows: float = 0.0

    def describe(self) -> str:
        keys = ", ".join(k.describe() for k in self.keys)
        return f"HashJoin keys=[{keys}]"

    def shape(self) -> str:
        keys = ";".join(
            f"{k.left_binding}.{k.left_position}={k.right_binding}.{k.right_position}/{k.semantics}"
            for k in self.keys
        )
        return f"HashJoin[{keys}]({self.left.shape()},{self.right.shape()})"

    def children(self):
        return (self.left, self.right)


@dataclass
class CrossJoinNode:
    """A cross product (no usable equality edge)."""

    left: "SourceNode"
    right: "SourceNode"
    est_rows: float = 0.0

    def describe(self) -> str:
        return "CrossJoin"

    def shape(self) -> str:
        return f"CrossJoin({self.left.shape()},{self.right.shape()})"

    def children(self):
        return (self.left, self.right)


@dataclass
class FilterNode:
    """Residual predicates applied at the earliest point their bindings exist."""

    input: "SourceNode"
    filters: list[PushedFilter] = field(default_factory=list)
    raw_edges: list[EdgeKey] = field(default_factory=list)
    est_rows: float = 0.0

    def describe(self) -> str:
        parts = [f.describe() for f in self.filters]
        parts.extend(f"{k.describe()} (raw)" for k in self.raw_edges)
        return f"Filter ({' AND '.join(parts)})"

    def shape(self) -> str:
        parts = [f.describe() for f in self.filters]
        parts.extend(k.describe() + "/raw" for k in self.raw_edges)
        return f"Filter[{';'.join(parts)}]({self.input.shape()})"

    def children(self):
        return (self.input,)


#: Every node shape a SELECT core's source tree is built from.
SourceNode = ScanNode | SubqueryScanNode | JoinNode | CrossJoinNode | FilterNode


@dataclass
class SelectPlan:
    """One planned SELECT core: the source tree plus its select stages."""

    select: ast.Select
    source: "SourceNode | None"  # None for a FROM-less select
    aggregate: bool
    labels: list[str]
    est_rows: float = 0.0
    #: Set when the planner reordered joins and the final batch must be
    #: sorted back into declaration-order row ids before projection.
    needs_restore: bool = False
    # Compiled stage payloads, attached by the planner (opaque to render).
    stages: dict = field(default_factory=dict)

    def describe_stages(self) -> list[str]:
        select = self.select
        lines = []
        if select.limit is not None:
            lines.append(f"Limit {select.limit}")
        if select.distinct:
            lines.append("Distinct")
        lines.append(f"Project [{', '.join(self.labels)}]")
        if select.order_by:
            keys = ", ".join(
                to_sql(o.expr) + (" DESC" if o.desc else "") for o in select.order_by
            )
            lines.append(f"Sort [{keys}]")
        if self.aggregate:
            groups = ", ".join(to_sql(e) for e in select.group_by)
            aggs = ", ".join(
                to_sql(node) for node in self.stages.get("agg_nodes", ())
            )
            having = f" having=({to_sql(select.having)})" if select.having is not None else ""
            lines.append(
                f"Aggregate groups=[{groups}] aggs=[{aggs}]{having}"
            )
        if self.needs_restore:
            lines.append("RestoreOrder [declaration-order row ids]")
        return lines

    def shape(self) -> str:
        source = self.source.shape() if self.source is not None else "Unit"
        return "|".join(self.describe_stages()) + "<-" + source


@dataclass
class QueryPlan:
    """A full planned query: one SELECT core plus at most one set operation."""

    select_plan: SelectPlan
    set_op: str | None = None
    right: "QueryPlan | None" = None
    set_all: bool = False
    sql: str | None = None

    def shape(self) -> str:
        text = self.select_plan.shape()
        if self.set_op is not None and self.right is not None:
            text += f"|{self.set_op}{'-all' if self.set_all else ''}|{self.right.shape()}"
        return text

    @property
    def plan_hash(self) -> str:
        return hashlib.blake2b(self.shape().encode(), digest_size=6).hexdigest()

    def render(self) -> str:
        lines: list[str] = [f"plan {self.plan_hash}"]
        self._render_into(lines, 0)
        return "\n".join(lines)

    def _render_into(self, lines: list[str], depth: int) -> None:
        indent = "  " * depth
        stage_depth = depth
        for stage in self.select_plan.describe_stages():
            lines.append("  " * stage_depth + stage)
            stage_depth += 1
        source = self.select_plan.source
        if source is None:
            lines.append("  " * stage_depth + "Unit [no FROM]")
        else:
            _render_source(source, lines, stage_depth)
        if self.set_op is not None and self.right is not None:
            lines.append(f"{indent}{self.set_op.upper()}{' ALL' if self.set_all else ''}")
            self.right._render_into(lines, depth + 1)


def _render_source(node, lines: list[str], depth: int) -> None:
    est = getattr(node, "est_rows", None)
    note = f"  (est {est:.0f} rows)" if est is not None else ""
    base = getattr(node, "base_rows", None)
    if base is not None:
        note = f"  (est {est:.0f}/{base} rows)"
    lines.append("  " * depth + node.describe() + note)
    for child in node.children():
        if isinstance(child, SubqueryScanNode):
            _render_source(child, lines, depth + 1)
        elif hasattr(child, "children"):
            _render_source(child, lines, depth + 1)
    if isinstance(node, SubqueryScanNode):
        node.plan._render_into(lines, depth + 1)
