"""Cost-based planning: conjunct classification, join ordering, pushdown.

The planner turns one parsed query into a :class:`~repro.engine.vector.plan.
QueryPlan`:

1. **Classify** WHERE/ON conjuncts: single-source predicates push down to
   their scan, two-source column equalities become hash-join edges, and
   everything else is a residual filter applied at the earliest join step
   where all its sources exist (filter placement).
2. **Estimate** with the same :class:`~repro.schema.enhanced.ColumnStats`
   the static analyzer's cost pass consumes — including its sound
   :func:`~repro.analysis.cost._comparison_excluded` exclusion check for
   provably-empty scans — profiled lazily by the
   :class:`~repro.engine.vector.columns.ColumnStore`.
3. **Order joins** greedily: start from the smallest estimated (filtered)
   source, repeatedly attach the edge-connected source minimising the
   estimated join output ``|L| x |R| / max(ndv(keys))``; sources with no
   usable edge cross-join last, smallest first.

Join-key semantics track the row engine exactly: edges lifted from ON
clauses key on raw Python equality (how the row engine hash-joins), edges
lifted from WHERE equalities key on ``_compare`` equality (how the row
engine filters) — see :data:`~repro.engine.vector.plan.RAW`/``CI``.

Anything the vector engine cannot reproduce bit-for-bit raises
:class:`VectorUnsupported`, which the executor converts into a per-query
fallback onto the row engine.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ExecutionError
from repro.sql import ast
from repro.sql.printer import to_sql
from repro.analysis.cost import _comparison_excluded
from repro.engine.executor import _collect_aggregates, _has_aggregate
from repro.engine.expressions import Scope, _compare
from repro.engine.vector.columns import ColumnStore
from repro.engine.vector.plan import (
    CI,
    RAW,
    CrossJoinNode,
    EdgeKey,
    FilterNode,
    JoinNode,
    PushedFilter,
    QueryPlan,
    ScanNode,
    SelectPlan,
    SubqueryScanNode,
)
from repro.engine.vector.vexpr import VectorCompiler

#: Default cardinality guess for derived tables (no statistics available).
DEFAULT_SUBQUERY_ROWS = 100.0


class VectorUnsupported(Exception):
    """A construct the vector engine cannot reproduce bit-for-bit; the
    executor falls back to the row engine for the whole query."""


def _split_and(expr: ast.Expr | None) -> list[ast.Expr]:
    """Top-level AND conjuncts (3VL-safe: ``a AND b`` is True iff both are)."""
    if expr is None:
        return []
    if isinstance(expr, ast.BoolOp) and expr.op == "and":
        return list(expr.operands)
    return [expr]


def _local_refs(node: ast.Node) -> list[ast.ColumnRef]:
    """Column references of this expression, *excluding* nested queries
    (their columns resolve against their own scopes)."""
    refs: list[ast.ColumnRef] = []

    def visit(current: ast.Node) -> None:
        if isinstance(current, ast.ColumnRef):
            refs.append(current)
        for child in current.children():
            if isinstance(child, ast.Query):
                continue
            visit(child)

    visit(node)
    return refs


def _literal_value(expr: ast.Expr):
    """A comparable literal (negative numbers included), else None."""
    if isinstance(expr, ast.Literal) and not isinstance(expr.value, bool):
        return expr.value
    if isinstance(expr, ast.UnaryMinus) and isinstance(expr.operand, ast.Literal):
        value = expr.operand.value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return -value
    return None


_MIRROR = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


class Planner:
    """Plans queries for one engine (scope resolution + store statistics)."""

    def __init__(
        self,
        store: ColumnStore,
        subquery: Callable[[ast.Query], object],
        database,
    ) -> None:
        self.store = store
        self.subquery = subquery
        self.database = database

    # -- entry points --------------------------------------------------------

    def plan_query(self, query: ast.Query, sql: str | None = None) -> QueryPlan:
        select_plan = self.plan_select(query.select)
        right = None
        if query.set_op is not None and query.right is not None:
            right = self.plan_query(query.right)
        return QueryPlan(
            select_plan=select_plan,
            set_op=query.set_op,
            right=right,
            set_all=query.set_all,
            sql=sql,
        )

    # -- select-core planning ------------------------------------------------

    def plan_select(self, select: ast.Select) -> SelectPlan:
        scope = Scope()
        scans: dict[str, ScanNode | SubqueryScanNode] = {}
        decls: dict[str, int] = {}
        join_conditions: list[tuple[int, str, ast.Expr | None]] = []

        decl = 0
        for source in select.from_tables:
            binding = self._add_source(scope, scans, decls, source, decl)
            decl += 1
        for join in select.joins:
            binding = self._add_source(scope, scans, decls, join.table, decl)
            join_conditions.append((decl, binding, join.condition))
            decl += 1

        compiler = VectorCompiler(scope, self.subquery)

        if not scans:
            plan = self._finish(select, scope, compiler, None, est_rows=1.0)
            if select.where is not None:
                plan.stages["where_fn"] = compiler.compile(select.where)
            return plan

        # -- conjunct classification ---------------------------------------
        pushed: dict[str, list[tuple[ast.Expr, float, int]]] = {b: [] for b in scans}
        edges: dict[frozenset, list[EdgeKey]] = {}
        residuals: list[tuple[frozenset, ast.Expr | None, EdgeKey | None, int]] = []
        seq = 0

        def classify(conjunct: ast.Expr, on_binding: str | None, on_decl: int) -> None:
            nonlocal seq
            seq += 1
            refs = _local_refs(conjunct)
            bindings = []
            slots = []
            for ref in refs:
                index = scope.resolve(ref.table, ref.column)
                slots.append(index)
                b, _ = _slot_of(scope, index)
                if b not in bindings:
                    bindings.append(b)
            if on_binding is not None:
                for b in bindings:
                    if decls[b] > on_decl:
                        raise VectorUnsupported(
                            "ON condition references a later table"
                        )
            if on_binding is not None and self._on_hash_edge(
                conjunct, scope, on_binding, decls, edges, seq
            ):
                return
            if len(bindings) == 1:
                binding = bindings[0]
                pushed[binding].append(
                    (conjunct, self._selectivity(conjunct, scans[binding]), seq)
                )
                return
            if (
                len(bindings) == 2
                and isinstance(conjunct, ast.Comparison)
                and conjunct.op == "="
                and isinstance(conjunct.left, ast.ColumnRef)
                and isinstance(conjunct.right, ast.ColumnRef)
            ):
                li = scope.resolve(conjunct.left.table, conjunct.left.column)
                ri = scope.resolve(conjunct.right.table, conjunct.right.column)
                lb, lp = _slot_of(scope, li)
                rb, rp = _slot_of(scope, ri)
                edge = EdgeKey(lb, lp, rb, rp, CI, label=to_sql(conjunct))
                edges.setdefault(frozenset((lb, rb)), []).append(edge)
                return
            residuals.append((frozenset(bindings), conjunct, None, seq))

        for conjunct in _split_and(select.where):
            classify(conjunct, None, -1)
        for on_decl, on_binding, condition in join_conditions:
            for conjunct in _split_and(condition):
                classify(conjunct, on_binding, on_decl)

        # -- scan estimates + filter compilation ---------------------------
        for binding, node in scans.items():
            filters = sorted(pushed[binding], key=lambda item: (item[1], item[2]))
            node.filters = [
                PushedFilter(expr, compiler.compile(expr), sel)
                for expr, sel, _ in filters
            ]
            base = (
                float(node.base_rows)
                if isinstance(node, ScanNode)
                else DEFAULT_SUBQUERY_ROWS
            )
            for pf in node.filters:
                base *= pf.selectivity
            node.est_rows = base

        # -- greedy join ordering ------------------------------------------
        root, order = self._order_joins(scans, decls, edges, residuals, compiler)
        order_decls = [decls[b] for b in order]
        needs_restore = order_decls != sorted(order_decls)
        plan = self._finish(
            select, scope, compiler, root, est_rows=getattr(root, "est_rows", 0.0)
        )
        plan.needs_restore = needs_restore
        return plan

    # -- sources -------------------------------------------------------------

    def _add_source(self, scope, scans, decls, source, decl) -> str:
        if isinstance(source, ast.SubqueryRef):
            subplan = self.plan_query(source.query)
            columns = subplan.select_plan.labels
            scope.add(source.binding, columns)
            binding = source.binding.lower()
            scans[binding] = SubqueryScanNode(
                binding=binding, decl=decl, plan=subplan,
                est_rows=DEFAULT_SUBQUERY_ROWS,
            )
        else:
            table = self.store.table(source.name)
            scope.add(source.binding, table.columns)
            binding = source.binding.lower()
            scans[binding] = ScanNode(
                binding=binding, table=table.name, decl=decl,
                base_rows=table.n_rows, est_rows=float(table.n_rows),
            )
        decls[binding] = decl
        return binding

    def _on_hash_edge(
        self, conjunct, scope, on_binding, decls, edges, seq
    ) -> bool:
        """Mirror the row engine's hash-key detection for one ON conjunct:
        a raw-keyed edge when exactly one side lives in the joined table."""
        if not (
            isinstance(conjunct, ast.Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, ast.ColumnRef)
            and isinstance(conjunct.right, ast.ColumnRef)
        ):
            return False
        li = scope.resolve(conjunct.left.table, conjunct.left.column)
        ri = scope.resolve(conjunct.right.table, conjunct.right.column)
        offset = scope.offset_of(on_binding)
        width = len(scope.columns_of(on_binding))
        if li >= offset and ri < offset:
            li, ri = ri, li
        if not (li < offset <= ri):
            return False
        if ri >= offset + width:
            raise VectorUnsupported("ON condition references a later table")
        lb, lp = _slot_of(scope, li)
        edge = EdgeKey(lb, lp, on_binding, ri - offset, RAW, label=to_sql(conjunct))
        edges.setdefault(frozenset((lb, on_binding)), []).append(edge)
        return True

    # -- join ordering --------------------------------------------------------

    def _order_joins(self, scans, decls, edges, residuals, compiler):
        bindings = sorted(scans, key=lambda b: decls[b])
        start = min(bindings, key=lambda b: (scans[b].est_rows, decls[b]))
        joined = [start]
        node: object = scans[start]
        current_est = max(scans[start].est_rows, 0.0)
        pending = list(residuals)
        node, current_est = self._attach_residuals(
            node, current_est, joined, pending, edges, compiler, scans
        )
        remaining = [b for b in bindings if b != start]
        while remaining:
            best = None
            for candidate in remaining:
                keys = self._edges_between(edges, joined, candidate)
                if not keys:
                    continue
                ndv = self._edge_ndv(scans, keys, candidate)
                out = current_est * max(scans[candidate].est_rows, 0.0) / max(ndv, 1.0)
                if best is None or (out, decls[candidate]) < (best[0], decls[best[1]]):
                    best = (out, candidate, keys)
            if best is None:
                candidate = min(remaining, key=lambda b: (scans[b].est_rows, decls[b]))
                out = current_est * max(scans[candidate].est_rows, 1.0)
                node = CrossJoinNode(node, scans[candidate], est_rows=out)
            else:
                out, candidate, keys = best
                self._consume_edges(edges, joined, candidate)
                oriented = [self._orient(key, candidate) for key in keys]
                node = JoinNode(node, scans[candidate], oriented, est_rows=out)
            remaining.remove(candidate)
            joined.append(candidate)
            current_est = node.est_rows
            node, current_est = self._attach_residuals(
                node, current_est, joined, pending, edges, compiler, scans
            )
        # Zero-source residuals (e.g. uncorrelated EXISTS) and anything left.
        leftovers = [item for item in pending if item is not None]
        if leftovers:
            node = self._filter_node(node, leftovers, compiler, current_est)
        return node, joined

    def _attach_residuals(
        self, node, current_est, joined, pending, edges, compiler, scans
    ):
        """Apply pending residual conjuncts (and leftover edges between
        already-joined sources) as soon as their bindings all exist."""
        joined_set = set(joined)
        ready = []
        for i, item in enumerate(pending):
            if item is None:
                continue
            bindings, _expr, _edge, _seq = item
            if bindings and bindings <= joined_set:
                ready.append(item)
                pending[i] = None
        # Edges whose endpoints are both joined but were never used as a
        # hash key become filters with their recorded semantics.
        for pair in sorted(edges, key=lambda p: sorted(p)):
            if not pair or not pair <= joined_set:
                continue
            for edge in edges[pair]:
                ready.append((pair, None, edge, 10_000))
            edges[pair] = []
        if not ready:
            return node, current_est
        ready.sort(key=lambda item: item[3])
        est = current_est * (0.5 ** len(ready))
        return self._filter_node(node, ready, compiler, est), est

    def _filter_node(self, node, items, compiler, est) -> FilterNode:
        filters = []
        raw_edges = []
        for _bindings, expr, edge, _seq in sorted(items, key=lambda item: item[3]):
            if expr is not None:
                filters.append(PushedFilter(expr, compiler.compile(expr), 0.5))
            elif edge is not None:
                if edge.semantics == RAW:
                    raw_edges.append(edge)
                else:
                    filters.append(
                        PushedFilter(None, _edge_filter(edge), 0.5, edge.describe())
                    )
        return FilterNode(node, filters=filters, raw_edges=raw_edges, est_rows=est)

    @staticmethod
    def _edges_between(edges, joined, candidate) -> list[EdgeKey]:
        """Peek (never consume) the usable edges between the joined set and
        a candidate — scoring must not destroy a losing candidate's edges."""
        keys = []
        for binding in joined:
            pair = frozenset((binding, candidate))
            if pair in edges and edges[pair]:
                keys.extend(edges[pair])
        return keys

    @staticmethod
    def _consume_edges(edges, joined, candidate) -> None:
        for binding in joined:
            pair = frozenset((binding, candidate))
            if pair in edges:
                edges[pair] = []

    def _edge_ndv(self, scans, keys: list[EdgeKey], candidate: str) -> float:
        ndv = 1.0
        for key in keys:
            for binding, position in (
                (key.left_binding, key.left_position),
                (key.right_binding, key.right_position),
            ):
                node = scans[binding]
                if not isinstance(node, ScanNode):
                    continue
                stats = self.store.stats(node.table, self._column_name(node, position))
                if stats is not None:
                    ndv = max(ndv, float(stats.n_distinct))
        return ndv

    def _column_name(self, node: ScanNode, position: int) -> str:
        return self.store.table(node.table).columns[position]

    @staticmethod
    def _orient(key: EdgeKey, build_binding: str) -> EdgeKey:
        """Orient an edge so its right side is the build (new) source."""
        if key.right_binding == build_binding:
            return key
        return EdgeKey(
            key.right_binding, key.right_position,
            key.left_binding, key.left_position,
            key.semantics, key.label,
        )

    # -- selectivity ----------------------------------------------------------

    def _selectivity(self, conjunct: ast.Expr, node) -> float:
        stats = None
        column = self._single_column(conjunct, node)
        if column is not None and isinstance(node, ScanNode):
            stats = self.store.stats(node.table, column)
        if isinstance(conjunct, ast.Comparison):
            op, value = self._comparison_literal(conjunct)
            if op in ("like", "not like"):
                return 0.25 if op == "like" else 0.75
            if op is not None and value is not None and stats is not None:
                if _comparison_excluded(op, value, stats):
                    return 0.0
                if op == "=":
                    return 1.0 / max(stats.n_distinct, 1)
                if op == "!=":
                    return 1.0 - 1.0 / max(stats.n_distinct, 1)
                return 1.0 / 3.0
            if op == "=":
                return 0.1
            return 0.5 if op in ("!=", None) else 1.0 / 3.0
        if isinstance(conjunct, ast.Between):
            if stats is not None and not conjunct.negated:
                low = _literal_value(conjunct.low)
                high = _literal_value(conjunct.high)
                if low is not None and high is not None:
                    try:
                        if stats.n_distinct == 0 or (
                            stats.max_value is not None and low > stats.max_value
                        ) or (stats.min_value is not None and high < stats.min_value):
                            return 0.0
                    except TypeError:
                        pass
            return 0.75 if conjunct.negated else 0.25
        if isinstance(conjunct, ast.InList):
            width = len(conjunct.values)
            if stats is not None:
                inside = min(1.0, width / max(stats.n_distinct, 1))
                return 1.0 - inside if conjunct.negated else inside
            return 0.5 if conjunct.negated else min(0.5, 0.1 * width)
        if isinstance(conjunct, ast.IsNull):
            if stats is not None and stats.n_rows > 0:
                fraction = stats.n_null / stats.n_rows
                return 1.0 - fraction if conjunct.negated else fraction
            return 0.1 if not conjunct.negated else 0.9
        return 0.5

    @staticmethod
    def _single_column(conjunct: ast.Expr, node) -> str | None:
        refs = _local_refs(conjunct)
        if len(refs) == 1:
            return refs[0].column.lower()
        return None

    @staticmethod
    def _comparison_literal(conjunct: ast.Comparison):
        """(normalised op, literal) with the column on the left, else Nones."""
        if conjunct.op in ("like", "not like"):
            return conjunct.op, None
        if isinstance(conjunct.left, ast.ColumnRef):
            value = _literal_value(conjunct.right)
            if value is not None:
                return conjunct.op, value
            return conjunct.op, None
        if isinstance(conjunct.right, ast.ColumnRef):
            value = _literal_value(conjunct.left)
            if value is not None:
                return _MIRROR.get(conjunct.op, conjunct.op), value
        return None, None

    # -- projection / stage compilation ---------------------------------------

    def _finish(
        self, select: ast.Select, scope: Scope, compiler: VectorCompiler,
        source, est_rows: float,
    ) -> SelectPlan:
        labels, projection = self._projection(select, scope, compiler)
        aggregate = bool(select.group_by) or _has_aggregate(select)
        stages: dict = {"projection": projection, "scope": scope}
        if aggregate:
            stages["group_fns"] = [compiler.compile(e) for e in select.group_by]
            agg_nodes = _collect_aggregates(select)
            stages["agg_nodes"] = agg_nodes
            arg_fns: dict = {}
            for node in agg_nodes:
                if node.args and not isinstance(node.args[0], ast.Star):
                    arg_fns[node] = compiler.compile(node.args[0])
            stages["agg_arg_fns"] = arg_fns
        if select.having is not None:
            stages["having_fn"] = compiler.compile(select.having)
        if select.order_by:
            stages["order_fns"] = [
                (compiler.compile(o.expr), o.desc) for o in select.order_by
            ]
        plan = SelectPlan(
            select=select, source=source, aggregate=aggregate,
            labels=labels, est_rows=est_rows, stages=stages,
        )
        return plan

    def _projection(self, select: ast.Select, scope: Scope, compiler):
        labels: list[str] = []
        items: list[tuple] = []
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                star = item.expr
                bindings = [star.table.lower()] if star.table else scope.bindings()
                for binding in bindings:
                    for i, column in enumerate(scope.columns_of(binding)):
                        labels.append(column)
                        items.append(("slot", binding, i))
                continue
            labels.append(item.alias or to_sql(item.expr))
            items.append(("expr", compiler.compile(item.expr), None))
        return labels, items


def _slot_of(scope: Scope, index: int) -> tuple[str, int]:
    """(binding, column position) of a resolved slot index."""
    for binding in scope.bindings():
        offset = scope.offset_of(binding)
        width = len(scope.columns_of(binding))
        if offset <= index < offset + width:
            return binding, index - offset
    raise ExecutionError(f"slot {index} outside scope")


def _edge_filter(edge: EdgeKey) -> Callable:
    """A positional equality filter for a leftover CI edge (both endpoints
    already joined before the edge could key a hash join)."""

    def fn(ctx):
        left = ctx.column(edge.left_binding, edge.left_position)
        right = ctx.column(edge.right_binding, edge.right_position)
        return [_compare("=", a, b) for a, b in zip(left, right)]

    return fn
