"""Vectorized expression evaluation: AST expressions → column evaluators.

The row engine compiles an expression to a per-row closure; this module
compiles the same expression to a function ``fn(ctx) -> list`` producing the
expression's value for every row of a :class:`~repro.engine.vector.batch.Batch`
in one pass.  Value semantics delegate to the row engine's own helpers
(:func:`~repro.engine.expressions._compare`, ``_arith``, ``_eq``,
``_like_match``) so NULL propagation, case-insensitive text equality,
mixed-type ranking and error messages are *identical* — byte identity with
the row engine is the vector engine's contract, and any construct this
compiler rejects raises the row engine's exact error so the per-query
fallback reproduces the same behaviour.

Fast paths (direct list comprehensions for column-vs-literal comparisons)
are exact specialisations: each is valid only where Python's operators agree
with ``_compare`` for every value the engine's typed tables can hold, and
each falls back to the general element loop otherwise.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ExecutionError
from repro.sql import ast
from repro.engine.expressions import (
    Scope,
    _arith,
    _compare,
    _eq,
    _like_match,
)

#: Type signature of a compiled vector expression.
VCompiled = Callable[["EvalContext"], list]


class EvalContext:
    """One evaluation site: a fixed batch plus the per-group aggregate
    environment (None outside GROUP BY context), with a per-site gather
    cache so an expression tree referencing a column twice pays one gather."""

    __slots__ = ("batch", "aggenv", "n", "subqueries", "_columns")

    def __init__(self, batch, aggenv: dict | None = None, subqueries: dict | None = None) -> None:
        self.batch = batch
        self.aggenv = aggenv
        self.n = batch.n
        #: Per-execution cache of subquery results keyed by query node id —
        #: shared across eval sites of one execution, mirroring the row
        #: engine's execute-once-per-compile behaviour.
        self.subqueries = subqueries if subqueries is not None else {}
        self._columns: dict[tuple[str, int], list] = {}

    def column(self, binding: str, position: int) -> list:
        key = (binding, position)
        cached = self._columns.get(key)
        if cached is None:
            cached = self.batch.column(binding, position)
            self._columns[key] = cached
        return cached

    def with_batch(self, batch, aggenv: dict | None = None) -> "EvalContext":
        """A sibling context over another batch, sharing the subquery cache."""
        return EvalContext(batch, aggenv, self.subqueries)


class VectorCompiler:
    """Compiles expressions within one scope, mirroring
    :class:`repro.engine.expressions.Compiler` node for node.

    ``subquery`` executes a nested :class:`~repro.sql.ast.Query` and returns
    a result with ``columns``/``rows``; unlike the row engine it is invoked
    at *evaluation* time (plans are cached across executions, so subquery
    results must not be baked into the compiled form) — once per execution,
    memoised through :attr:`EvalContext.subqueries`.
    """

    def __init__(self, scope: Scope, subquery: Callable[[ast.Query], object]) -> None:
        self.scope = scope
        self.subquery = subquery
        # Slot index -> (binding, column position) for column gathers.
        self._slots: list[tuple[str, int]] = []
        for binding in scope.bindings():
            for position in range(len(scope.columns_of(binding))):
                self._slots.append((binding, position))

    # -- public API ----------------------------------------------------------

    def compile(self, expr: ast.Expr) -> VCompiled:
        method = getattr(self, f"_compile_{type(expr).__name__.lower()}", None)
        if method is None:
            raise ExecutionError(f"cannot compile {type(expr).__name__}")
        return method(expr)

    def selection(self, fn: VCompiled, ctx: EvalContext) -> list[int]:
        """Positions where the predicate is strictly True (3VL: UNKNOWN
        drops the row, exactly like ``compile_predicate``)."""
        return [j for j, value in enumerate(fn(ctx)) if value is True]

    def _subquery_result(self, query: ast.Query, ctx: EvalContext):
        cached = ctx.subqueries.get(id(query))
        if cached is None:
            cached = self.subquery(query)
            ctx.subqueries[id(query)] = cached
        return cached

    # -- leaves --------------------------------------------------------------

    def _compile_columnref(self, expr: ast.ColumnRef) -> VCompiled:
        index = self.scope.resolve(expr.table, expr.column)
        binding, position = self._slots[index]
        return lambda ctx: ctx.column(binding, position)

    def _compile_literal(self, expr: ast.Literal) -> VCompiled:
        value = expr.value
        return lambda ctx: [value] * ctx.n

    def _compile_star(self, expr: ast.Star) -> VCompiled:
        raise ExecutionError("* is only valid in a select list or COUNT(*)")

    # -- arithmetic ----------------------------------------------------------

    def _compile_binaryop(self, expr: ast.BinaryOp) -> VCompiled:
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        op = expr.op

        def run(ctx: EvalContext) -> list:
            return [
                None if a is None or b is None else _arith(op, a, b)
                for a, b in zip(left(ctx), right(ctx))
            ]

        return run

    def _compile_unaryminus(self, expr: ast.UnaryMinus) -> VCompiled:
        operand = self.compile(expr.operand)

        def run(ctx: EvalContext) -> list:
            out = []
            for value in operand(ctx):
                if value is None:
                    out.append(None)
                    continue
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ExecutionError(f"cannot negate {value!r}")
                out.append(-value)
            return out

        return run

    def _compile_funccall(self, expr: ast.FuncCall) -> VCompiled:
        name = expr.name.lower()
        if name in ast.AGGREGATE_FUNCTIONS:

            def run(ctx: EvalContext) -> list:
                if ctx.aggenv is not None and expr in ctx.aggenv:
                    return ctx.aggenv[expr]
                if ctx.n == 0:
                    # The row engine's error is raised per row; zero rows
                    # never evaluate it, so an empty input stays silent.
                    return []
                raise ExecutionError(
                    f"aggregate {name.upper()} used outside GROUP BY context"
                )

            return run
        if name == "abs":
            if len(expr.args) != 1:
                raise ExecutionError("ABS takes exactly one argument")
            arg = self.compile(expr.args[0])

            def run_abs(ctx: EvalContext) -> list:
                out = []
                for value in arg(ctx):
                    if value is None:
                        out.append(None)
                        continue
                    if isinstance(value, bool) or not isinstance(value, (int, float)):
                        raise ExecutionError(f"ABS of non-numeric {value!r}")
                    out.append(abs(value))
                return out

            return run_abs
        raise ExecutionError(f"unknown function {expr.name!r}")

    # -- predicates ----------------------------------------------------------

    def _compile_comparison(self, expr: ast.Comparison) -> VCompiled:
        left = self.compile(expr.left)
        op = expr.op
        if op in ("like", "not like"):
            right = self.compile(expr.right)
            negated = op == "not like"

            def run_like(ctx: EvalContext) -> list:
                out = []
                for a, b in zip(left(ctx), right(ctx)):
                    if a is None or b is None:
                        out.append(None)
                        continue
                    matched = _like_match(str(a), str(b))
                    out.append((not matched) if negated else matched)
                return out

            return run_like

        if isinstance(expr.right, ast.ScalarSubquery):
            query = expr.right.query

            def run_scalar(ctx: EvalContext) -> list:
                value = self._scalar_value(query, ctx)
                return _compare_const(op, left(ctx), value)

            return run_scalar

        if isinstance(expr.right, ast.Literal):
            const = expr.right.value
            return lambda ctx: _compare_const(op, left(ctx), const)

        right = self.compile(expr.right)

        def run(ctx: EvalContext) -> list:
            return [
                None if a is None or b is None else _compare(op, a, b)
                for a, b in zip(left(ctx), right(ctx))
            ]

        return run

    def _compile_between(self, expr: ast.Between) -> VCompiled:
        value = self.compile(expr.expr)
        low = self.compile(expr.low)
        high = self.compile(expr.high)
        negated = expr.negated

        def run(ctx: EvalContext) -> list:
            out = []
            for v, lo, hi in zip(value(ctx), low(ctx), high(ctx)):
                if v is None or lo is None or hi is None:
                    out.append(None)
                    continue
                inside = _compare(">=", v, lo) and _compare("<=", v, hi)
                out.append((not inside) if negated else inside)
            return out

        return run

    def _compile_inlist(self, expr: ast.InList) -> VCompiled:
        value = self.compile(expr.expr)
        negated = expr.negated
        if all(isinstance(v, ast.Literal) for v in expr.values):
            members = _MemberSet(v.value for v in expr.values)  # type: ignore[union-attr]
            return lambda ctx: _membership(value(ctx), members, negated)
        items = [self.compile(v) for v in expr.values]

        def run(ctx: EvalContext) -> list:
            item_vectors = [item(ctx) for item in items]
            out = []
            for j, v in enumerate(value(ctx)):
                if v is None:
                    out.append(None)
                    continue
                member = any(_eq(v, vec[j]) for vec in item_vectors)
                out.append((not member) if negated else member)
            return out

        return run

    def _compile_insubquery(self, expr: ast.InSubquery) -> VCompiled:
        value = self.compile(expr.expr)
        negated = expr.negated
        query = expr.query

        def run(ctx: EvalContext) -> list:
            result = self._subquery_result(query, ctx)
            if len(result.columns) != 1:
                raise ExecutionError("IN subquery must return exactly one column")
            members = _MemberSet(row[0] for row in result.rows)
            return _membership(value(ctx), members, negated)

        return run

    def _compile_scalarsubquery(self, expr: ast.ScalarSubquery) -> VCompiled:
        query = expr.query

        def run(ctx: EvalContext) -> list:
            value = self._scalar_value(query, ctx)
            return [value] * ctx.n

        return run

    def _compile_exists(self, expr: ast.Exists) -> VCompiled:
        negated = expr.negated
        query = expr.query

        def run(ctx: EvalContext) -> list:
            result = self._subquery_result(query, ctx)
            found = bool(result.rows)
            value = (not found) if negated else found
            return [value] * ctx.n

        return run

    def _compile_isnull(self, expr: ast.IsNull) -> VCompiled:
        operand = self.compile(expr.expr)
        negated = expr.negated

        def run(ctx: EvalContext) -> list:
            if negated:
                return [value is not None for value in operand(ctx)]
            return [value is None for value in operand(ctx)]

        return run

    def _compile_not(self, expr: ast.Not) -> VCompiled:
        operand = self.compile(expr.operand)

        def run(ctx: EvalContext) -> list:
            return [None if value is None else not value for value in operand(ctx)]

        return run

    def _compile_boolop(self, expr: ast.BoolOp) -> VCompiled:
        operands = [self.compile(o) for o in expr.operands]
        conjunction = expr.op == "and"

        def run(ctx: EvalContext) -> list:
            vectors = [operand(ctx) for operand in operands]
            out = []
            for j in range(ctx.n):
                unknown = False
                verdict = None
                for vector in vectors:
                    value = vector[j]
                    if value is None:
                        unknown = True
                    elif conjunction and not value:
                        verdict = False
                        break
                    elif not conjunction and value:
                        verdict = True
                        break
                if verdict is None:
                    verdict = None if unknown else conjunction
                out.append(verdict)
            return out

        return run

    # -- helpers --------------------------------------------------------------

    def _scalar_value(self, query: ast.Query, ctx: EvalContext):
        result = self._subquery_result(query, ctx)
        if len(result.columns) != 1:
            raise ExecutionError("scalar subquery must return exactly one column")
        if len(result.rows) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        if not result.rows:
            return None
        return result.rows[0][0]


# ---------------------------------------------------------------------------
# Comparison fast paths — exact specialisations of ``_compare``
# ---------------------------------------------------------------------------


def _compare_const(op: str, vector: list, const) -> list:
    """``value <op> const`` for every element, matching ``_compare``."""
    if const is None:
        return [None] * len(vector)
    if isinstance(const, (int, float)) and not isinstance(const, bool):
        if op == "=":
            # Python ``==`` agrees with _compare for every engine value:
            # numbers (and bools) compare numerically, text never equals a
            # number (mixed ranking yields False), no TypeError possible.
            return [None if a is None else a == const for a in vector]
        if op == "!=":
            return [None if a is None else a != const for a in vector]
        try:
            if op == "<":
                return [None if a is None else a < const for a in vector]
            if op == "<=":
                return [None if a is None else a <= const for a in vector]
            if op == ">":
                return [None if a is None else a > const for a in vector]
            if op == ">=":
                return [None if a is None else a >= const for a in vector]
        except TypeError:
            # A text value met a numeric bound: _compare ranks numbers
            # before text instead of raising — take the general loop.
            pass
    elif isinstance(const, str):
        lowered = const.lower()
        if op == "=":
            return [
                None if a is None
                else (a.lower() == lowered if isinstance(a, str) else False)
                for a in vector
            ]
        if op == "!=":
            return [
                None if a is None
                else (a.lower() != lowered if isinstance(a, str) else True)
                for a in vector
            ]
        if op in ("<", "<="):
            # Strings compare lexicographically (raw, like _compare);
            # numbers rank before text, so every non-string is "less".
            if op == "<":
                return [
                    None if a is None
                    else (a < const if isinstance(a, str) else True)
                    for a in vector
                ]
            return [
                None if a is None
                else (a <= const if isinstance(a, str) else True)
                for a in vector
            ]
        if op in (">", ">="):
            if op == ">":
                return [
                    None if a is None
                    else (a > const if isinstance(a, str) else False)
                    for a in vector
                ]
            return [
                None if a is None
                else (a >= const if isinstance(a, str) else False)
                for a in vector
            ]
    return [None if a is None else _compare(op, a, const) for a in vector]


class _MemberSet:
    """Set-backed membership with ``_eq`` semantics: numbers (and bools)
    unify numerically, text matches case-insensitively, NULL and NaN never
    match, and cross-type probes are always False."""

    __slots__ = ("numbers", "texts")

    def __init__(self, values) -> None:
        self.numbers: set = set()
        self.texts: set[str] = set()
        for value in values:
            if value is None:
                continue
            if isinstance(value, str):
                self.texts.add(value.lower())
            elif isinstance(value, float) and value != value:
                continue  # NaN equals nothing under _compare
            elif isinstance(value, (int, float)):
                self.numbers.add(value)

    def __contains__(self, value) -> bool:
        if isinstance(value, str):
            return value.lower() in self.texts
        if isinstance(value, float) and value != value:
            return False
        if isinstance(value, (int, float)):
            return value in self.numbers
        return False


def _membership(vector: list, members: _MemberSet, negated: bool) -> list:
    if negated:
        return [None if v is None else v not in members for v in vector]
    return [None if v is None else v in members for v in vector]
