"""Exception hierarchy for the ScienceBenchmark reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors such as
``TypeError`` or ``KeyError`` raised by genuine bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SqlSyntaxError(ReproError):
    """Raised when a SQL string cannot be tokenized or parsed.

    Carries the character ``position`` of the offending token when known so
    that callers (for example the NL-to-SQL systems, which must reject their
    own malformed beam candidates) can report precise diagnostics.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class SchemaError(ReproError):
    """Raised for schema violations: unknown tables/columns, bad foreign keys,
    duplicate definitions, or enhanced-schema annotations that reference
    elements missing from the base schema."""


class ExecutionError(ReproError):
    """Raised when a syntactically valid query cannot be executed, e.g. a
    type mismatch in an expression, an aggregate in an illegal position, or a
    scalar subquery returning more than one row."""


class SemQLError(ReproError):
    """Raised when SQL cannot be represented in the supported SemQL subset or
    when a SemQL tree cannot be lowered back to SQL."""


class AdapterError(ReproError):
    """Raised by the domain-adapter registry: unknown adapter names,
    duplicate registrations, or manifests whose module/attribute cannot be
    imported or does not satisfy the adapter protocol."""


class PerturbationError(ReproError):
    """Raised by the perturbation engine: unknown families or severities, or
    a perturbed domain whose gold queries no longer execute (a perturbation
    must keep every gold query runnable on its own rewritten schema)."""


class GenerationError(ReproError):
    """Raised by the synthesis pipeline when a template cannot be instantiated
    under the enhanced-schema constraints (e.g. no compatible column exists)."""


class TrainingError(ReproError):
    """Raised by NL-to-SQL systems when asked to predict before training or
    when trained on unusable data."""
