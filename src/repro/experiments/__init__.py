"""Experiment harness: one module per paper table/figure plus the runner."""

from repro.experiments.config import ExperimentConfig, full, quick
from repro.experiments.runner import BenchmarkSuite, Suite

__all__ = [
    "ExperimentConfig",
    "quick",
    "full",
    "BenchmarkSuite",
    "Suite",
]
