"""Experiment harness: one module per paper table/figure plus the runner."""

from repro.experiments.config import ExperimentConfig, full, quick
from repro.experiments.runner import BenchmarkSuite, Suite, get_suite

__all__ = [
    "ExperimentConfig",
    "quick",
    "full",
    "BenchmarkSuite",
    "Suite",
    "get_suite",
]
