"""Experiment configuration: one object controls every knob of a run.

Two presets ship: ``quick()`` (used by the test-suite and the default
benchmark run — minutes, not hours) and ``full()`` (larger data and synth
targets, closer to the paper's set sizes).  All experiments are fully
deterministic given a config.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of a benchmark build + evaluation run."""

    name: str = "quick"
    seed: int = 2023

    # Domain databases.  ``domains`` names the adapters the suite builds —
    # resolved against the adapter registry (:mod:`repro.adapters`) when the
    # task graph is assembled, so any registered adapter (including one
    # loaded from a single file) slots in without code changes.
    domains: tuple[str, ...] = ("cordis", "sdss", "oncomx")
    domain_scale: float = 0.3

    # MiniSpider corpus
    spider_train_per_db: int = 60
    spider_dev_per_db: int = 10

    # Augmentation pipeline
    synth_targets: dict = field(
        default_factory=lambda: {"cordis": 300, "sdss": 420, "oncomx": 260}
    )
    synth_spider_per_db: int = 25

    # Evaluation sizes
    table3_sample: int = 60
    table4_sample: int = 100
    dev_limit: int | None = None  # cap dev pairs per domain (None = all)

    # SQL execution engine for evaluation (Table 5 / accuracy scoring):
    # "native" (row-at-a-time) or "vector" (columnar; byte-identical
    # results, order-of-magnitude faster execute stage).
    engine: str = "native"


def quick() -> ExperimentConfig:
    """Fast preset for tests and default benchmark runs."""
    return ExperimentConfig()


def full() -> ExperimentConfig:
    """Larger preset approaching the paper's set sizes.

    Synth targets follow Table 2's proportions (CORDIS 1306 / SDSS 2061 /
    OncoMX 1065 generated queries).
    """
    return ExperimentConfig(
        name="full",
        domain_scale=1.0,
        spider_train_per_db=120,
        spider_dev_per_db=25,
        synth_targets={"cordis": 1306, "sdss": 2061, "oncomx": 1065},
        synth_spider_per_db=60,
        table3_sample=175,
        table4_sample=100,
    )
