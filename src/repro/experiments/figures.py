"""Figures 1 & 2 — pipeline walk-through and template extraction demo.

The paper's two figures are architectural rather than quantitative:
Figure 1 traces one query through the four pipeline phases (on the SDSS
``neighbors`` example), Figure 2 shows how a query's AST is anonymized into
a positional template and re-applied.  These functions regenerate both as
textual artifacts, which the corresponding benchmarks print and check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import BenchmarkSuite
from repro.llm.models import GPT3_PROFILE, make_model
from repro.semql.from_sql import sql_to_semql
from repro.semql.templates import extract_template
from repro.sql import parse
from repro.synthesis.discriminator import Discriminator, DiscriminatorConfig
from repro.synthesis.generation import GenerationConfig, SqlGenerator
from repro.synthesis.seeding import extract_templates


@dataclass
class Figure1Trace:
    """Artifacts of one end-to-end pipeline pass (Figure 1)."""

    seed_sql: str
    template_signature: str
    generated_sql: list[str] = field(default_factory=list)
    candidates: dict[str, list[str]] = field(default_factory=dict)
    selected: dict[str, list[str]] = field(default_factory=dict)


#: The paper's running example: neighbour objects with neighbour mode 2.
FIGURE1_SEED_SQL = "SELECT objid FROM neighbors WHERE neighbormode = 2"


def run_figure1(suite: BenchmarkSuite, n_queries: int = 3) -> Figure1Trace:
    """Trace the Figure-1 walk-through on the SDSS domain."""
    from repro.datasets.records import NLSQLPair

    domain = suite.domain("sdss")
    seed_pair = NLSQLPair(question="", sql=FIGURE1_SEED_SQL, db_id="sdss")
    seeding = extract_templates([seed_pair], domain.database.schema)
    template = seeding.templates[0]
    trace = Figure1Trace(
        seed_sql=FIGURE1_SEED_SQL, template_signature=template.signature
    )

    generator = SqlGenerator(
        domain.database,
        domain.enhanced,
        suite.rng("figure1"),
        config=GenerationConfig(queries_per_template=n_queries * 4),
    )
    seen = set()
    while len(trace.generated_sql) < n_queries:
        sql = generator.instantiate(template)
        if sql is None:
            break
        if sql in seen:
            continue
        seen.add(sql)
        trace.generated_sql.append(sql)

    model = make_model(GPT3_PROFILE, seed=suite.config.seed)
    model.fine_tune(domain.seed.pairs, domain=domain.name, lexicon=domain.lexicon)
    discriminator = Discriminator(DiscriminatorConfig(top_k=2))
    for sql in trace.generated_sql:
        candidates = model.translate(sql, domain.enhanced, n_candidates=8, domain=domain.name)
        trace.candidates[sql] = candidates
        trace.selected[sql] = discriminator.select(candidates)
    return trace


def render_figure1(trace: Figure1Trace) -> str:
    parts = [
        "Figure 1 — end-to-end pipeline walk-through (SDSS neighbors example)",
        "=" * 68,
        f"Phase 1 (Seeding)      seed SQL : {trace.seed_sql}",
        f"                       template : {trace.template_signature}",
    ]
    for i, sql in enumerate(trace.generated_sql, 1):
        parts.append(f"Phase 2 (Generation)   SQL ({i})  : {sql}")
        for candidate in trace.candidates[sql][:3]:
            parts.append(f"Phase 3 (SQL-to-NL)      cand   : {candidate}")
        for question in trace.selected[sql]:
            parts.append(f"Phase 4 (Discriminate)   chosen : {question}")
    return "\n".join(parts)


@dataclass
class Figure2Demo:
    """Template extraction & application artifacts (Figure 2)."""

    source_sql: str
    signature: str
    n_tables: int
    n_columns: int
    n_values: int
    applications: list[str] = field(default_factory=list)


def run_figure2(suite: BenchmarkSuite, n_applications: int = 4) -> Figure2Demo:
    domain = suite.domain("sdss")
    z = sql_to_semql(parse(FIGURE1_SEED_SQL), domain.database.schema)
    template = extract_template(z, source_sql=FIGURE1_SEED_SQL)
    demo = Figure2Demo(
        source_sql=FIGURE1_SEED_SQL,
        signature=template.signature,
        n_tables=template.n_tables,
        n_columns=template.n_columns,
        n_values=template.n_values,
    )
    generator = SqlGenerator(
        domain.database,
        domain.enhanced,
        suite.rng("figure2"),
        config=GenerationConfig(queries_per_template=n_applications * 4),
    )
    seen = set()
    while len(demo.applications) < n_applications:
        sql = generator.instantiate(template)
        if sql is None:
            break
        if sql in seen:
            continue
        seen.add(sql)
        demo.applications.append(sql)
    return demo


def render_figure2(demo: Figure2Demo) -> str:
    parts = [
        "Figure 2 — template extraction and application",
        "=" * 46,
        f"source SQL : {demo.source_sql}",
        f"template   : {demo.signature}",
        f"leaf slots : {demo.n_tables} table(s), {demo.n_columns} column(s), {demo.n_values} value(s)",
        "applications:",
    ]
    parts.extend(f"  - {sql}" for sql in demo.applications)
    return "\n".join(parts)


def render_figure1_from_suite(suite: BenchmarkSuite) -> str:
    """Registry entry point: run and render the Figure-1 walk-through."""
    return render_figure1(run_figure1(suite))


def render_figure2_from_suite(suite: BenchmarkSuite) -> str:
    """Registry entry point: run and render the Figure-2 demo."""
    return render_figure2(run_figure2(suite))
