"""Renderer registry: table/figure names → entry points + graph tasks.

Replaces the ad-hoc ``__import__`` lambdas the CLI used to dispatch tables.
Each entry names the module/attribute of a ``render(suite) -> str`` function
(imported lazily, so ``tables 2`` never pays for Table 5's imports) and the
graph tasks the renderer consumes — the CLI prefetches those through
``Suite.ensure`` so independent artifacts build in parallel before any
rendering starts.  Task names come from :mod:`repro.experiments.tasks`, the
same naming authority the task graph itself uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import import_module
from typing import Callable

from repro.experiments import tasks
from repro.experiments.config import ExperimentConfig


@dataclass(frozen=True)
class RendererSpec:
    """One renderable artifact of the paper."""

    name: str
    kind: str  # "table" | "figure"
    module: str
    attr: str
    description: str
    #: config -> graph task names to prefetch before rendering
    tasks: Callable[[ExperimentConfig], list[str]]


def _domains(config: ExperimentConfig) -> list[str]:
    return [tasks.domain_task(name) for name in tasks.active_domains(config)]


def _corpus_and_domains(config: ExperimentConfig) -> list[str]:
    return [tasks.CORPUS_TASK, *_domains(config)]


def _sdss_only(config: ExperimentConfig) -> list[str]:
    return [tasks.domain_task("sdss")]


def _table5_grid(config: ExperimentConfig) -> list[str]:
    return tasks.eval_grid(domains=tasks.active_domains(config))


RENDERERS: dict[str, RendererSpec] = {
    spec.name: spec
    for spec in (
        RendererSpec(
            "1", "table", "repro.experiments.table1", "render_table1",
            "Table 1 — database complexity", _corpus_and_domains,
        ),
        RendererSpec(
            "2", "table", "repro.experiments.table2", "render_table2",
            "Table 2 — hardness distribution", _corpus_and_domains,
        ),
        RendererSpec(
            "3", "table", "repro.experiments.table3", "render_table3",
            "Table 3 — SQL-to-NL quality", _corpus_and_domains,
        ),
        RendererSpec(
            "4", "table", "repro.experiments.table4", "render_table4",
            "Table 4 — silver-standard quality", _domains,
        ),
        RendererSpec(
            "5", "table", "repro.experiments.table5", "render_table5_from_suite",
            "Table 5 — NL-to-SQL execution accuracy", _table5_grid,
        ),
        RendererSpec(
            "figure1", "figure", "repro.experiments.figures", "render_figure1_from_suite",
            "Figure 1 — pipeline walk-through", _sdss_only,
        ),
        RendererSpec(
            "figure2", "figure", "repro.experiments.figures", "render_figure2_from_suite",
            "Figure 2 — template extraction", _sdss_only,
        ),
    )
}


def available(kind: str | None = None) -> tuple[str, ...]:
    return tuple(
        name for name, spec in RENDERERS.items() if kind is None or spec.kind == kind
    )


def get_renderer(name: str) -> Callable:
    """The renderer entry point, imported lazily."""
    try:
        spec = RENDERERS[name]
    except KeyError:
        raise KeyError(f"unknown renderer {name!r}") from None
    return getattr(import_module(spec.module), spec.attr)


def required_tasks(name: str, config: ExperimentConfig) -> list[str]:
    """Graph task names the renderer consumes (for parallel prefetching)."""
    return list(RENDERERS[name].tasks(config))


def render(name: str, suite) -> str:
    return get_renderer(name)(suite)


def serving_tasks(
    system: str,
    domains: tuple[str, ...],
    regime: str = "both",
) -> list[str]:
    """Graph task names the serving layer warm-starts from.

    Per served domain: the domain artifact (database + dev split) and the
    trained system under ``regime``.  With a cache-backed runtime these all
    resolve without retraining.
    """
    names = [tasks.domain_task(name) for name in domains]
    names += [tasks.train_task(system, name, regime) for name in domains]
    return names
