"""Plain-text rendering of experiment results, in the paper's table shapes."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    note: str | None = None,
) -> str:
    """A fixed-width text table with a title line."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            columns[i].append(_format(cell))
    widths = [max(len(v) for v in col) for col in columns]

    def line(values):
        return "  ".join(v.ljust(w) for v, w in zip(values, widths)).rstrip()

    parts = [title, "=" * len(title), line(headers), line("-" * w for w in widths)]
    for row_index in range(len(rows)):
        parts.append(line(col[row_index + 1] for col in columns))
    if note:
        parts.append("")
        parts.append(note)
    return "\n".join(parts)


def _format(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 10 else f"{cell:,.1f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def percentage(count: int, total: int) -> str:
    if total == 0:
        return "0 (0%)"
    return f"{count} ({100.0 * count / total:.1f}%)"
