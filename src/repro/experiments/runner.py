"""The benchmark suite: a handle over the task-graph runtime.

Tables 1–5 all consume the same underlying artifacts — the three domain
databases, the MiniSpider corpus, the synthetic splits, trained systems.
:class:`Suite` maps each onto a node of the deterministic task graph
(:mod:`repro.experiments.tasks`) and delegates materialization to a
:class:`~repro.runtime.Runtime`, which adds process-level parallelism and a
content-addressed disk cache without changing any output byte.

Public API::

    suite = Suite.from_config(quick(), runtime=Runtime(workers=4,
                                                       cache_dir=".repro-cache"))
    suite.domain("sdss")        # task "domain:sdss"
    suite.corpus                # task "corpus"
    suite.ensure([...])         # fan a batch of tasks across the workers

The suite's domain set is ``config.domains``, resolved through the adapter
registry (:mod:`repro.adapters`) when the graph is assembled — any
registered adapter slots in without code changes.
"""

from __future__ import annotations

import random
from typing import Any

from repro.datasets.records import BenchmarkDomain, Split
from repro.experiments.config import ExperimentConfig, quick
from repro.experiments.tasks import (
    CORPUS_TASK,
    DOMAIN_REGIMES,
    SPIDER_REGIMES,
    SYNTH_SPIDER_TASK,
    SYSTEM_CLASSES,
    Table5Cell,
    active_domains,
    build_suite_graph,
    domain_task,
    eval_task,
    train_task,
)
from repro.runtime import Runtime
from repro.spider.corpus import SpiderCorpus

__all__ = [
    "BenchmarkSuite",
    "Suite",
    "SYSTEM_CLASSES",
]


class BenchmarkSuite:
    """Lazy, cached access to every experiment input, backed by the graph."""

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        runtime: Runtime | None = None,
    ) -> None:
        self.config = config or quick()
        self.runtime = runtime or Runtime()
        self.graph = build_suite_graph(self.config)
        self._artifacts: dict[str, Any] = {}

    @classmethod
    def from_config(
        cls, config: ExperimentConfig, runtime: Runtime | None = None
    ) -> "BenchmarkSuite":
        """The public constructor: explicit config, explicit runtime."""
        return cls(config=config, runtime=runtime)

    # -- graph access ---------------------------------------------------------

    def ensure(self, names: list[str] | tuple[str, ...]) -> dict[str, Any]:
        """Materialize a batch of tasks (fanned across the runtime's workers)."""
        missing = [n for n in dict.fromkeys(names) if n not in self._artifacts]
        if missing:
            self._artifacts.update(self.runtime.run(self.graph, missing))
        return {name: self._artifacts[name] for name in names}

    def artifact(self, name: str) -> Any:
        """One task's artifact (computed, cache-loaded or memoized)."""
        if name not in self._artifacts:
            self.ensure([name])
        return self._artifacts[name]

    # -- shared artifacts -----------------------------------------------------

    def domain_names(self) -> tuple[str, ...]:
        """The domain names this suite builds (from ``config.domains``)."""
        return active_domains(self.config)

    def domain(self, name: str) -> BenchmarkDomain:
        """One ScienceBenchmark domain, with its Synth split materialised."""
        if name not in self.domain_names():
            from repro.adapters import list_adapters
            from repro.errors import AdapterError

            raise AdapterError(
                f"unknown domain {name!r}: this suite builds "
                f"{', '.join(self.domain_names())}; registered adapters: "
                f"{', '.join(list_adapters())}"
            )
        return self.artifact(domain_task(name))

    def domains(self) -> dict[str, BenchmarkDomain]:
        self.ensure([domain_task(name) for name in self.domain_names()])
        return {name: self.domain(name) for name in self.domain_names()}

    @property
    def corpus(self) -> SpiderCorpus:
        return self.artifact(CORPUS_TASK)

    @property
    def synth_spider(self) -> Split:
        """Synthetic Spider data (the 'Synth Spider' control of Table 5)."""
        return self.artifact(SYNTH_SPIDER_TASK)

    # -- trained systems --------------------------------------------------------

    def make_system(self, system_name: str, include_domains=True):
        """A fresh system with all databases registered (untrained)."""
        system = SYSTEM_CLASSES[system_name]()
        for db_id, database in self.corpus.databases.items():
            system.register_database(db_id, database, self.corpus.enhanced[db_id])
        if include_domains:
            for name in self.domain_names():
                domain = self.domain(name)
                system.register_database(name, domain.database, domain.enhanced)
        return system

    def _check_regime(self, domain_name: str | None, regime: str) -> str:
        if domain_name is None:
            if regime not in SPIDER_REGIMES:
                raise ValueError(f"unknown Spider regime {regime!r}")
            return "spider"
        if regime not in DOMAIN_REGIMES:
            raise ValueError(f"unknown regime {regime!r}")
        if domain_name not in self.domain_names():
            from repro.adapters import list_adapters
            from repro.errors import AdapterError

            raise AdapterError(
                f"unknown domain {domain_name!r}: this suite builds "
                f"{', '.join(self.domain_names())}; registered adapters: "
                f"{', '.join(list_adapters())}"
            )
        return domain_name

    def train_regime(self, system_name: str, domain_name: str | None, regime: str):
        """A system trained under one Table-5 regime.

        Regimes: ``zero`` (Spider train only), ``seed``, ``synth``, ``both``
        (Spider + the respective domain splits); for the Spider control rows,
        ``domain_name`` is None and regimes are ``zero`` / ``plus-synth`` /
        ``synth-only``.
        """
        if system_name not in SYSTEM_CLASSES:
            raise KeyError(system_name)
        target = self._check_regime(domain_name, regime)
        return self.artifact(train_task(system_name, target, regime))

    def eval_cell(
        self, system_name: str, domain_name: str | None, regime: str
    ) -> Table5Cell:
        """One evaluated Table-5 cell (training included, via the graph)."""
        if system_name not in SYSTEM_CLASSES:
            raise KeyError(system_name)
        target = self._check_regime(domain_name, regime)
        return self.artifact(eval_task(system_name, target, regime))

    def dev_pairs(self, domain_name: str | None):
        """The evaluation split for one domain (or the Spider control)."""
        if domain_name is None:
            pairs = self.corpus.dev.pairs
        else:
            pairs = self.domain(domain_name).dev.pairs
        limit = self.config.dev_limit
        return pairs[:limit] if limit else list(pairs)

    def rng(self, salt: str) -> random.Random:
        return random.Random(f"{self.config.seed}:{salt}")


#: The name the redesigned API is documented under.
Suite = BenchmarkSuite
