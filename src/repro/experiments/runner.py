"""The benchmark suite: lazy, cached construction of every shared artifact.

Tables 1–5 all consume the same underlying objects — the three domain
databases, the MiniSpider corpus, the synthetic splits, trained systems.
:class:`BenchmarkSuite` builds each exactly once per configuration;
``get_suite()`` returns a process-wide instance so the individual benchmark
modules do not re-build the world.
"""

from __future__ import annotations

import random
from functools import lru_cache

from repro.datasets import cordis, oncomx, sdss
from repro.datasets.records import BenchmarkDomain, NLSQLPair, Split
from repro.experiments.config import ExperimentConfig, quick
from repro.llm.models import GPT3_PROFILE, make_model
from repro.nl2sql import SmBoP, T5Seq2Seq, ValueNet
from repro.spider.corpus import SpiderCorpus, build_corpus
from repro.synthesis import AugmentationPipeline, PipelineConfig

DOMAIN_BUILDERS = {"cordis": cordis.build, "sdss": sdss.build, "oncomx": oncomx.build}

SYSTEM_CLASSES = {
    "valuenet": ValueNet,
    "t5-large": T5Seq2Seq,
    "smbop": SmBoP,
}


class BenchmarkSuite:
    """Cached builder of all experiment inputs."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or quick()
        self._domains: dict[str, BenchmarkDomain] = {}
        self._corpus: SpiderCorpus | None = None
        self._synth_spider: Split | None = None

    # -- shared artifacts -----------------------------------------------------

    def domain(self, name: str) -> BenchmarkDomain:
        """One ScienceBenchmark domain, with its Synth split materialised."""
        if name not in self._domains:
            builder = DOMAIN_BUILDERS[name]
            domain = builder(scale=self.config.domain_scale)
            pipeline = AugmentationPipeline(
                domain,
                model=make_model(GPT3_PROFILE, seed=self.config.seed),
                config=PipelineConfig(
                    target_queries=self.config.synth_targets.get(name, 300),
                    seed=self.config.seed,
                ),
            )
            pipeline.run()
            self._domains[name] = domain
        return self._domains[name]

    def domains(self) -> dict[str, BenchmarkDomain]:
        return {name: self.domain(name) for name in DOMAIN_BUILDERS}

    @property
    def corpus(self) -> SpiderCorpus:
        if self._corpus is None:
            self._corpus = build_corpus(
                train_per_db=self.config.spider_train_per_db,
                dev_per_db=self.config.spider_dev_per_db,
                seed=self.config.seed,
            )
        return self._corpus

    @property
    def synth_spider(self) -> Split:
        """Synthetic Spider data (the 'Synth Spider' control of Table 5):
        the pipeline applied to each MiniSpider database, seeded with that
        database's own training pairs."""
        if self._synth_spider is None:
            corpus = self.corpus
            pairs: list[NLSQLPair] = []
            for db_id, database in corpus.databases.items():
                db_train = [p for p in corpus.train.pairs if p.db_id == db_id]
                pseudo_domain = BenchmarkDomain(
                    name=db_id,
                    database=database,
                    enhanced=corpus.enhanced[db_id],
                    lexicon=None,
                    seed=Split(name=f"{db_id}-seed", pairs=db_train),
                    dev=Split(name=f"{db_id}-dev", pairs=[]),
                )
                pipeline = AugmentationPipeline(
                    pseudo_domain,
                    model=make_model(GPT3_PROFILE, seed=self.config.seed),
                    config=PipelineConfig(
                        target_queries=self.config.synth_spider_per_db,
                        seed=self.config.seed,
                    ),
                )
                report = pipeline.run()
                pairs.extend(report.split.pairs)
            self._synth_spider = Split(name="spider-synth", pairs=pairs)
        return self._synth_spider

    # -- trained systems --------------------------------------------------------

    def make_system(self, system_name: str, include_domains=True):
        """A fresh system with all databases registered (untrained)."""
        system = SYSTEM_CLASSES[system_name]()
        for db_id, database in self.corpus.databases.items():
            system.register_database(db_id, database, self.corpus.enhanced[db_id])
        if include_domains:
            for name in DOMAIN_BUILDERS:
                domain = self.domain(name)
                system.register_database(name, domain.database, domain.enhanced)
        return system

    def train_regime(self, system_name: str, domain_name: str | None, regime: str):
        """Train a system under one Table-5 regime.

        Regimes: ``zero`` (Spider train only), ``seed``, ``synth``, ``both``
        (Spider + the respective domain splits); for the Spider control rows,
        ``domain_name`` is None and regimes are ``zero`` / ``plus-synth`` /
        ``synth-only``.
        """
        system = self.make_system(system_name, include_domains=domain_name is not None)
        pairs = list(self.corpus.train.pairs)
        if domain_name is None:
            if regime == "plus-synth":
                pairs = pairs + list(self.synth_spider.pairs)
            elif regime == "synth-only":
                pairs = list(self.synth_spider.pairs)
            elif regime != "zero":
                raise ValueError(f"unknown Spider regime {regime!r}")
        else:
            domain = self.domain(domain_name)
            if regime in ("seed", "both"):
                pairs += list(domain.seed.pairs)
            if regime in ("synth", "both"):
                pairs += list(domain.synth.pairs)
            if regime not in ("zero", "seed", "synth", "both"):
                raise ValueError(f"unknown regime {regime!r}")
        system.train(pairs)
        return system

    def dev_pairs(self, domain_name: str | None):
        """The evaluation split for one domain (or the Spider control)."""
        if domain_name is None:
            pairs = self.corpus.dev.pairs
        else:
            pairs = self.domain(domain_name).dev.pairs
        limit = self.config.dev_limit
        return pairs[:limit] if limit else list(pairs)

    def rng(self, salt: str) -> random.Random:
        return random.Random(f"{self.config.seed}:{salt}")


@lru_cache(maxsize=2)
def _suite_for(name: str) -> BenchmarkSuite:
    from repro.experiments import config as config_module

    factory = getattr(config_module, name)
    return BenchmarkSuite(factory())


def get_suite(preset: str = "quick") -> BenchmarkSuite:
    """Process-wide shared suite (presets: ``quick`` or ``full``)."""
    return _suite_for(preset)
