"""Table 1 — database complexity: ScienceBenchmark domains vs Spider.

Reports, per database: table count, column count, rows, average rows per
table and estimated size.  Two scales are shown for the scientific domains:
the *nominal* numbers the paper reports for the live databases (carried as
metadata by each dataset module) and the *instantiated* numbers of our
synthetic instance, so the structural claims (tables/columns — which match
the paper exactly) are separated from the scale substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import render_table
from repro.experiments.runner import BenchmarkSuite


@dataclass
class Table1Row:
    dataset: str
    tables: int
    columns: int
    rows: int
    avg_rows_per_table: float
    size_mb: float


def compute_table1(suite: BenchmarkSuite) -> dict:
    """All Table-1 rows: MiniSpider aggregate + per-domain nominal/measured."""
    corpus = suite.corpus

    spider_tables = sum(len(db.schema.tables) for db in corpus.databases.values())
    spider_columns = sum(db.schema.total_columns() for db in corpus.databases.values())
    spider_rows = sum(db.row_count() for db in corpus.databases.values())
    spider_bytes = sum(db.estimated_bytes() for db in corpus.databases.values())
    n_dbs = len(corpus.databases)

    spider_row = Table1Row(
        dataset=f"MiniSpider ({n_dbs} DBs)",
        tables=spider_tables,
        columns=spider_columns,
        rows=spider_rows,
        avg_rows_per_table=spider_rows / max(spider_tables, 1),
        size_mb=spider_bytes / 1e6,
    )
    spider_avg = Table1Row(
        dataset="(Avg / DB)",
        tables=round(spider_tables / n_dbs),
        columns=round(spider_columns / n_dbs),
        rows=round(spider_rows / n_dbs),
        avg_rows_per_table=spider_rows / max(spider_tables, 1),
        size_mb=spider_bytes / 1e6 / n_dbs,
    )

    nominal_rows = []
    measured_rows = []
    for name, domain in suite.domains().items():
        db = domain.database
        stats = domain.nominal_stats or {}
        nominal_rows.append(
            Table1Row(
                dataset=f"{name.upper()} (paper nominal)",
                tables=stats.get("tables", len(db.schema.tables)),
                columns=stats.get("columns", db.schema.total_columns()),
                rows=stats.get("rows", db.row_count()),
                avg_rows_per_table=stats.get(
                    "avg_rows_per_table", db.average_rows_per_table()
                ),
                size_mb=stats.get("size_gb", 0.0) * 1000,
            )
        )
        measured_rows.append(
            Table1Row(
                dataset=f"{name.upper()} (this instance)",
                tables=len(db.schema.tables),
                columns=db.schema.total_columns(),
                rows=db.row_count(),
                avg_rows_per_table=db.average_rows_per_table(),
                size_mb=db.estimated_bytes() / 1e6,
            )
        )

    return {
        "spider": spider_row,
        "spider_avg": spider_avg,
        "nominal": nominal_rows,
        "measured": measured_rows,
    }


def render_table1(suite: BenchmarkSuite) -> str:
    data = compute_table1(suite)
    rows = [data["spider"], data["spider_avg"]] + [
        row for pair in zip(data["nominal"], data["measured"]) for row in pair
    ]
    return render_table(
        "Table 1 — Complexity of Spider vs ScienceBenchmark databases",
        ["Dataset", "Tables", "Columns", "Rows", "Avg rows/table", "Size (MB)"],
        [
            (
                r.dataset,
                r.tables,
                r.columns,
                r.rows,
                round(r.avg_rows_per_table, 1),
                round(r.size_mb, 2),
            )
            for r in rows
        ],
        note=(
            "Nominal rows repeat the paper's live-database statistics; "
            "'this instance' rows describe the synthetic build (structure —\n"
            "tables and columns — matches the paper exactly; row counts are "
            "scaled for laptop-size experiments)."
        ),
    )
