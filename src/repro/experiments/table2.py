"""Table 2 — hardness distribution of every ScienceBenchmark split.

For each domain, the Seed and Dev splits (expert-written) and the Synth
split (pipeline-generated) are classified with Spider's hardness scheme,
plus MiniSpider train/dev for comparison — exactly the layout of the
paper's Table 2.  The key shapes asserted by the benchmark: Dev skews harder
than Synth (complex templates yield fewer valid instantiations), and OncoMX
is the easiest domain.
"""

from __future__ import annotations

from repro.experiments.reporting import percentage, render_table
from repro.experiments.runner import BenchmarkSuite
from repro.spider.hardness import HARDNESS_LEVELS


def compute_table2(suite: BenchmarkSuite) -> list[dict]:
    """One dict per split with counts per hardness level."""
    rows = []
    for name in suite.domain_names():
        domain = suite.domain(name)
        for split in (domain.seed, domain.dev, domain.synth):
            if split is None:
                continue
            counts = split.hardness_counts()
            rows.append(
                {
                    "dataset": split.name,
                    "total": len(split),
                    **counts,
                }
            )
    for split in (suite.corpus.train, suite.corpus.dev):
        counts = split.hardness_counts()
        rows.append({"dataset": split.name, "total": len(split), **counts})
    return rows


def render_table2(suite: BenchmarkSuite) -> str:
    data = compute_table2(suite)
    rows = [
        (
            entry["dataset"],
            *(percentage(entry[level], entry["total"]) for level in HARDNESS_LEVELS),
            entry["total"],
        )
        for entry in data
    ]
    return render_table(
        "Table 2 — Spider-hardness distribution of ScienceBenchmark splits",
        ["Dataset", "Easy", "Medium", "Hard", "Extra Hard", "Total"],
        rows,
    )


def synth_easier_than_dev(suite: BenchmarkSuite, domain_name: str) -> bool:
    """The paper's observation: Synth skews easier than Dev (hard+extra share)."""
    domain = suite.domain(domain_name)
    def hard_share(split):
        counts = split.hardness_counts()
        total = max(len(split), 1)
        return (counts["hard"] + counts["extra"]) / total
    return hard_share(domain.synth) <= hard_share(domain.dev) + 1e-9
