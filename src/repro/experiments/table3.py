"""Table 3 — SQL-to-NL translation quality of the four (simulated) LLMs.

Each model translates a sample of MiniSpider dev queries to natural
language; outputs are scored with SacreBLEU and embedding similarity
("SentenceBERT") against the gold questions, and with the equivalence judge
standing in for the paper's seven human experts.  §4.1.2's per-domain expert
rates (CORDIS 82% / OncoMX 73% / SDSS 53% in the paper) use the same judge
on the domain dev queries translated by the domain-fine-tuned GPT-3 model.

Expected shape (as in the paper): fine-tuned GPT-3 wins both automatic
metrics; the two GPT-3 variants beat GPT-2 and T5 on the expert rate;
SDSS is the hardest domain to verbalise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.experiments.runner import BenchmarkSuite
from repro.experiments.reporting import render_table
from repro.llm.models import (
    ALL_PROFILES,
    GPT3_PROFILE,
    GPT3_ZERO_PROFILE,
    make_model,
)
from repro.metrics.bleu import corpus_bleu
from repro.metrics.embedding_score import embedding_score
from repro.metrics.equivalence import EquivalenceJudge


@dataclass
class Table3Row:
    model: str
    sacrebleu: float
    sentence_score: float
    expert_rate: float


def compute_table3(suite: BenchmarkSuite) -> list[Table3Row]:
    """The Spider-dev section of Table 3 (four models, three metrics)."""
    corpus = suite.corpus
    rng = suite.rng("table3-sample")
    sample = corpus.dev.pairs[:]
    rng.shuffle(sample)
    sample = sample[: suite.config.table3_sample]

    rows = []
    for profile in ALL_PROFILES:
        model = make_model(profile, seed=suite.config.seed)
        if profile is not GPT3_ZERO_PROFILE:
            # The paper fine-tunes GPT-2/GPT-3/T5 on Spider training pairs.
            for db_id in corpus.databases:
                db_train = [p for p in corpus.train.pairs if p.db_id == db_id]
                model.fine_tune(db_train, domain=db_id, lexicon=None)

        hypotheses = []
        references = []
        judged = 0
        for pair in sample:
            enhanced = corpus.enhanced[pair.db_id]
            hypothesis = model.translate_best(pair.sql, enhanced, domain=pair.db_id)
            hypotheses.append(hypothesis)
            refs = [pair.question]
            # Extra canonical paraphrases emulate Spider's multi-reference NL.
            realizer = corpus.realizer_for(pair.db_id)
            ref_rng = suite.rng(f"table3-ref:{pair.sql}")
            try:
                refs.extend(realizer.candidates(pair.sql, 2, ref_rng))
            except ReproError:
                pass
            references.append(refs)
            judge = EquivalenceJudge(enhanced)
            if judge.judge(hypothesis, pair.sql).equivalent:
                judged += 1

        rows.append(
            Table3Row(
                model=profile.name,
                sacrebleu=corpus_bleu(hypotheses, references).score,
                sentence_score=embedding_score(hypotheses, references),
                expert_rate=judged / max(len(sample), 1),
            )
        )
    return rows


def compute_domain_expert_rates(suite: BenchmarkSuite) -> dict[str, float]:
    """§4.1.2: expert rates of domain-fine-tuned GPT-3 on each domain's dev."""
    rates = {}
    for name in suite.domain_names():
        domain = suite.domain(name)
        model = make_model(GPT3_PROFILE, seed=suite.config.seed)
        model.fine_tune(domain.seed.pairs, domain=name, lexicon=domain.lexicon)
        judge = EquivalenceJudge(domain.enhanced, lexicon=domain.lexicon)
        correct = 0
        pairs = suite.dev_pairs(name)
        for pair in pairs:
            hypothesis = model.translate_best(pair.sql, domain.enhanced, domain=name)
            if judge.judge(hypothesis, pair.sql).equivalent:
                correct += 1
        rates[name] = correct / max(len(pairs), 1)
    return rates


def render_table3(suite: BenchmarkSuite) -> str:
    rows = compute_table3(suite)
    spider_part = render_table(
        "Table 3 — SQL-to-NL quality of the simulated LLMs (MiniSpider dev)",
        ["Model", "SacreBLEU", "SentenceScore", "Expert rate"],
        [
            (r.model, round(r.sacrebleu, 2), round(r.sentence_score, 3), round(r.expert_rate, 3))
            for r in rows
        ],
    )
    domain_rates = compute_domain_expert_rates(suite)
    domain_part = render_table(
        "Section 4.1.2 — domain expert rates of fine-tuned GPT-3",
        ["Domain", "Expert rate"],
        [(name, round(rate, 3)) for name, rate in domain_rates.items()],
        note="Paper: CORDIS 0.82, OncoMX 0.73, SDSS 0.53 (SDSS hardest).",
    )
    return spider_part + "\n\n" + domain_part
