"""Table 4 — silver-standard quality of the synthetic datasets.

The paper samples 100 pairs per domain from the Synth splits (stratified by
hardness) and has experts check whether each NL question matches its SQL
query.  We replay the protocol with the equivalence judge.  The paper's
rates: CORDIS 83%, SDSS 76%, OncoMX 75% — i.e. high-but-imperfect silver
data, which is the property the training experiments rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import render_table
from repro.experiments.runner import BenchmarkSuite
from repro.metrics.equivalence import EquivalenceJudge


@dataclass
class Table4Row:
    domain: str
    total_synth: int
    sample_size: int
    semantic_equivalence: float


def compute_table4(suite: BenchmarkSuite) -> list[Table4Row]:
    rows = []
    for name in suite.domain_names():
        domain = suite.domain(name)
        synth = domain.synth
        rng = suite.rng(f"table4:{name}")
        sample = synth.sample_stratified(suite.config.table4_sample, rng)
        judge = EquivalenceJudge(domain.enhanced, lexicon=domain.lexicon)
        rate = judge.judge_rate([(p.question, p.sql) for p in sample])
        rows.append(
            Table4Row(
                domain=name.upper(),
                total_synth=len(synth),
                sample_size=len(sample),
                semantic_equivalence=rate,
            )
        )
    return rows


def render_table4(suite: BenchmarkSuite) -> str:
    rows = compute_table4(suite)
    return render_table(
        "Table 4 — silver-standard semantic equivalence of Synth splits",
        ["Domain", "Total synth pairs", "Sample", "Semantic equivalence"],
        [
            (r.domain, r.total_synth, r.sample_size, round(r.semantic_equivalence, 3))
            for r in rows
        ],
        note="Paper rates: CORDIS 83%, SDSS 76%, OncoMX 75%.",
    )
