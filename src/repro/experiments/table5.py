"""Table 5 — execution accuracy of the NL-to-SQL systems under every
training regime: the paper's headline experiment.

Grid: {ValueNet, T5-Large w/o Picard, SmBoP} × {Spider-only (zero-shot),
+Seed, +Synth, +Seed+Synth} × {CORDIS, SDSS, OncoMX}, plus the three Spider
control rows (Spider train; Spider train + Synth Spider; Synth Spider only).

Expected shapes (the paper's findings):
* zero-shot accuracy on scientific domains is far below Spider accuracy;
* domain augmentation (seed and/or synth) improves every system on every
  domain, with the full mix usually best;
* SDSS is the hardest domain, OncoMX the most recoverable;
* training on synthetic Spider data alone costs a large fraction of the
  real-data accuracy (the paper's −0.30 to −0.39 deltas).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.reporting import render_table
from repro.experiments.runner import SYSTEM_CLASSES, BenchmarkSuite
from repro.experiments.tasks import (
    DOMAIN_REGIMES,
    SPIDER_REGIMES,
    Table5Cell,
    eval_grid,
)
from repro.metrics.triage import format_triage, merge_triage

__all__ = [
    "DOMAIN_REGIMES",
    "SPIDER_REGIMES",
    "Table5Cell",
    "Table5Result",
    "evaluate_cell",
    "compute_table5",
    "render_table5",
    "render_table5_from_suite",
]


@dataclass
class Table5Result:
    cells: list[Table5Cell] = field(default_factory=list)

    def cell(self, system: str, domain: str, regime: str) -> Table5Cell:
        for cell in self.cells:
            if (
                cell.system == system
                and cell.domain == domain
                and cell.regime == regime
            ):
                return cell
        raise KeyError((system, domain, regime))

    def accuracy(self, system: str, domain: str, regime: str) -> float:
        return self.cell(system, domain, regime).accuracy


def evaluate_cell(
    suite: BenchmarkSuite, system_name: str, domain_name: str | None, regime: str
) -> Table5Cell:
    """Train one system under one regime and measure execution accuracy.

    Delegates to the ``eval:<system>:<target>:<regime>`` graph task, so the
    cell is cached and its training reused across calls.
    """
    return suite.eval_cell(system_name, domain_name, regime)


def compute_table5(
    suite: BenchmarkSuite,
    systems: tuple[str, ...] = tuple(SYSTEM_CLASSES),
    domains: tuple[str, ...] | None = None,
    include_spider_control: bool = True,
) -> Table5Result:
    """Evaluate the requested grid (default: the suite's own domain set);
    independent cells fan across the runtime's workers because the whole
    batch is requested at once."""
    if domains is None:
        domains = suite.domain_names()
    names = eval_grid(systems, domains, include_spider_control)
    artifacts = suite.ensure(names)
    return Table5Result(cells=[artifacts[name] for name in names])


_REGIME_LABELS = {
    "zero": "Spider Train (Zero-Shot)",
    "seed": "Spider Train + Seed",
    "synth": "Spider Train + Synth",
    "both": "Spider Train + Seed + Synth",
    "plus-synth": "Spider Train + Synth Spider",
    "synth-only": "Synth Spider (only)",
}


def render_table5(result: Table5Result, systems=tuple(SYSTEM_CLASSES)) -> str:
    rows = []
    domains = []
    for cell in result.cells:
        if cell.domain not in domains:
            domains.append(cell.domain)
    for domain in domains:
        regimes = SPIDER_REGIMES if domain == "spider" else DOMAIN_REGIMES
        zero = {
            system: result.accuracy(system, domain, regimes[0]) for system in systems
        }
        for regime in regimes:
            row = [f"{_REGIME_LABELS[regime]}", domain.upper()]
            pooled: dict = {}
            for system in systems:
                cell = result.cell(system, domain, regime)
                delta = cell.accuracy - zero[system]
                if regime == regimes[0]:
                    row.append(f"{cell.accuracy:.2f}")
                else:
                    row.append(f"{cell.accuracy:.2f} ({delta:+.2f})")
                merge_triage(pooled, cell.triage)
            row.append(format_triage(pooled))
            rows.append(row)
    return render_table(
        "Table 5 — execution accuracy by system and training regime",
        ["Train set", "Dev set", *(s for s in systems), "Failure triage"],
        rows,
        note=(
            "Numbers in brackets: change vs the zero-shot baseline (paper's "
            "convention). Failure triage pools the static analyzer's "
            "classification of wrong predictions across systems."
        ),
    )


def render_table5_from_suite(suite: BenchmarkSuite) -> str:
    """Registry entry point: the full Table-5 grid for one suite."""
    return render_table5(compute_table5(suite))
