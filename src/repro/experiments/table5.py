"""Table 5 — execution accuracy of the NL-to-SQL systems under every
training regime: the paper's headline experiment.

Grid: {ValueNet, T5-Large w/o Picard, SmBoP} × {Spider-only (zero-shot),
+Seed, +Synth, +Seed+Synth} × {CORDIS, SDSS, OncoMX}, plus the three Spider
control rows (Spider train; Spider train + Synth Spider; Synth Spider only).

Expected shapes (the paper's findings):
* zero-shot accuracy on scientific domains is far below Spider accuracy;
* domain augmentation (seed and/or synth) improves every system on every
  domain, with the full mix usually best;
* SDSS is the hardest domain, OncoMX the most recoverable;
* training on synthetic Spider data alone costs a large fraction of the
  real-data accuracy (the paper's −0.30 to −0.39 deltas).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.reporting import render_table
from repro.experiments.runner import SYSTEM_CLASSES, BenchmarkSuite
from repro.metrics.execution import ExecutionAccuracy
from repro.metrics.triage import format_triage, merge_triage

DOMAIN_REGIMES = ("zero", "seed", "synth", "both")
SPIDER_REGIMES = ("zero", "plus-synth", "synth-only")
DOMAINS = ("cordis", "sdss", "oncomx")


@dataclass
class Table5Cell:
    system: str
    domain: str  # "spider" for the control rows
    regime: str
    accuracy: float
    n_eval: int
    #: Static-analyzer failure triage of the wrong predictions
    #: (category → count, see :data:`repro.metrics.triage.TRIAGE_CATEGORIES`).
    triage: dict = field(default_factory=dict)


@dataclass
class Table5Result:
    cells: list[Table5Cell] = field(default_factory=list)

    def cell(self, system: str, domain: str, regime: str) -> Table5Cell:
        for cell in self.cells:
            if (
                cell.system == system
                and cell.domain == domain
                and cell.regime == regime
            ):
                return cell
        raise KeyError((system, domain, regime))

    def accuracy(self, system: str, domain: str, regime: str) -> float:
        return self.cell(system, domain, regime).accuracy


def evaluate_cell(
    suite: BenchmarkSuite, system_name: str, domain_name: str | None, regime: str
) -> Table5Cell:
    """Train one system under one regime and measure execution accuracy."""
    system = suite.train_regime(system_name, domain_name, regime)
    pairs = suite.dev_pairs(domain_name)
    accuracy = ExecutionAccuracy()
    for pair in pairs:
        if domain_name is None:
            database = suite.corpus.databases[pair.db_id]
            enhanced = None
        else:
            domain = suite.domain(domain_name)
            database = domain.database
            enhanced = domain.enhanced
        accuracy.add(
            database,
            pair.sql,
            system.predict(pair.question, pair.db_id),
            enhanced=enhanced,
        )
    return Table5Cell(
        system=system_name,
        domain=domain_name or "spider",
        regime=regime,
        accuracy=accuracy.accuracy,
        n_eval=accuracy.total,
        triage=accuracy.triage,
    )


def compute_table5(
    suite: BenchmarkSuite,
    systems: tuple[str, ...] = tuple(SYSTEM_CLASSES),
    domains: tuple[str, ...] = DOMAINS,
    include_spider_control: bool = True,
) -> Table5Result:
    result = Table5Result()
    for domain in domains:
        for regime in DOMAIN_REGIMES:
            for system in systems:
                result.cells.append(evaluate_cell(suite, system, domain, regime))
    if include_spider_control:
        for regime in SPIDER_REGIMES:
            for system in systems:
                result.cells.append(evaluate_cell(suite, system, None, regime))
    return result


_REGIME_LABELS = {
    "zero": "Spider Train (Zero-Shot)",
    "seed": "Spider Train + Seed",
    "synth": "Spider Train + Synth",
    "both": "Spider Train + Seed + Synth",
    "plus-synth": "Spider Train + Synth Spider",
    "synth-only": "Synth Spider (only)",
}


def render_table5(result: Table5Result, systems=tuple(SYSTEM_CLASSES)) -> str:
    rows = []
    domains = []
    for cell in result.cells:
        if cell.domain not in domains:
            domains.append(cell.domain)
    for domain in domains:
        regimes = SPIDER_REGIMES if domain == "spider" else DOMAIN_REGIMES
        zero = {
            system: result.accuracy(system, domain, regimes[0]) for system in systems
        }
        for regime in regimes:
            row = [f"{_REGIME_LABELS[regime]}", domain.upper()]
            pooled: dict = {}
            for system in systems:
                cell = result.cell(system, domain, regime)
                delta = cell.accuracy - zero[system]
                if regime == regimes[0]:
                    row.append(f"{cell.accuracy:.2f}")
                else:
                    row.append(f"{cell.accuracy:.2f} ({delta:+.2f})")
                merge_triage(pooled, cell.triage)
            row.append(format_triage(pooled))
            rows.append(row)
    return render_table(
        "Table 5 — execution accuracy by system and training regime",
        ["Train set", "Dev set", *(s for s in systems), "Failure triage"],
        rows,
        note=(
            "Numbers in brackets: change vs the zero-shot baseline (paper's "
            "convention). Failure triage pools the static analyzer's "
            "classification of wrong predictions across systems."
        ),
    )
