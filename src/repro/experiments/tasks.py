"""The concrete benchmark task graph: every suite artifact as a task.

This module is the single naming authority for suite artifacts — the
renderer registry, the CLI and :class:`~repro.experiments.runner.Suite` all
refer to tasks through the helpers here (``domain_task("sdss")``,
``eval_task("smbop", "cordis", "both")``, …).

Task bodies are module-level ``fn(params, inputs)`` functions so the
scheduler can ship them to worker processes by name.  Each body is pure in
its params and dependency artifacts; stochastic bodies receive a derived
per-task seed in ``params["seed"]``.

Graph shape (``build_suite_graph``)::

    corpus ──────────────┬─> synth-spider:<db> (×11) ─> synth-spider
                         ├─> train:<sys>:spider:<regime> ─> eval:…
    domain:<name> (×3) ──┴─> train:<sys>:<domain>:<regime> ─> eval:…
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field

from repro import adapters
from repro.datasets.records import BenchmarkDomain, Split
from repro.experiments.config import ExperimentConfig
from repro.llm.models import GPT3_PROFILE, make_model
from repro.metrics.execution import ExecutionAccuracy
from repro.nl2sql import SmBoP, T5Seq2Seq, ValueNet
from repro.obs import get_tracer
from repro.resilience.faults import FaultPlan
from repro.resilience.flaky import FlakyModel
from repro.resilience.retry import RetryPolicy
from repro.runtime import Task, TaskGraph, derive_seed
from repro.spider.corpus import SpiderCorpus, build_corpus
from repro.spider.domains import DOMAIN_BUILDERS as SPIDER_DB_BUILDERS
from repro.synthesis import AugmentationPipeline, PipelineConfig, TranslationConfig

SYSTEM_CLASSES = {
    "valuenet": ValueNet,
    "t5-large": T5Seq2Seq,
    "smbop": SmBoP,
}

#: The paper's three domains — the default of ``ExperimentConfig.domains``.
#: Domain *resolution* goes through :mod:`repro.adapters`; this tuple only
#: anchors defaults for configs that don't choose their own set.
DEFAULT_DOMAINS = ("cordis", "sdss", "oncomx")
DOMAIN_REGIMES = ("zero", "seed", "synth", "both")
SPIDER_REGIMES = ("zero", "plus-synth", "synth-only")

_FN = "repro.experiments.tasks:{}".format


def active_domains(config: ExperimentConfig) -> tuple[str, ...]:
    """The domain names one config builds (its ``domains`` field)."""
    names = getattr(config, "domains", None)
    return tuple(names) if names else DEFAULT_DOMAINS


def __getattr__(name: str):
    # Deprecation shims for the pre-registry module constants.  They keep
    # old callers working (with a warning) but are no longer the source of
    # truth — the adapter registry is.
    if name == "DOMAINS":
        warnings.warn(
            "repro.experiments.tasks.DOMAINS is deprecated; use "
            "ExperimentConfig.domains / repro.adapters.list_adapters()",
            DeprecationWarning,
            stacklevel=2,
        )
        return DEFAULT_DOMAINS
    if name == "DOMAIN_BUILDERS":
        warnings.warn(
            "repro.experiments.tasks.DOMAIN_BUILDERS is deprecated; use "
            "repro.adapters.get_adapter(name).build",
            DeprecationWarning,
            stacklevel=2,
        )
        return {
            domain: adapters.get_adapter(domain).build for domain in DEFAULT_DOMAINS
        }
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class Table5Cell:
    """One evaluated (system, eval target, training regime) cell."""

    system: str
    domain: str  # "spider" for the control rows
    regime: str
    accuracy: float
    n_eval: int
    #: Static-analyzer failure triage of the wrong predictions
    #: (category → count, see :data:`repro.metrics.triage.TRIAGE_CATEGORIES`).
    triage: dict = field(default_factory=dict)


# -- task names ----------------------------------------------------------------

CORPUS_TASK = "corpus"
SYNTH_SPIDER_TASK = "synth-spider"


def domain_task(name: str) -> str:
    return f"domain:{name}"


def synth_spider_db_task(db_id: str) -> str:
    return f"synth-spider:{db_id}"


def train_task(system: str, target: str, regime: str) -> str:
    """``target`` is a domain name or ``"spider"`` for the control rows."""
    return f"train:{system}:{target}:{regime}"


def eval_task(system: str, target: str, regime: str) -> str:
    return f"eval:{system}:{target}:{regime}"


def eval_grid(
    systems: tuple[str, ...] | None = None,
    domains: tuple[str, ...] | None = None,
    include_spider_control: bool = True,
) -> list[str]:
    """Table-5 eval task names in the table's canonical cell order."""
    systems = tuple(systems) if systems is not None else tuple(SYSTEM_CLASSES)
    domains = tuple(domains) if domains is not None else DEFAULT_DOMAINS
    names = [
        eval_task(system, domain, regime)
        for domain in domains
        for regime in DOMAIN_REGIMES
        for system in systems
    ]
    if include_spider_control:
        names += [
            eval_task(system, "spider", regime)
            for regime in SPIDER_REGIMES
            for system in systems
        ]
    return names


# -- task bodies ---------------------------------------------------------------


def _pipeline_resilience(params: dict, seed: int):
    """(model, PipelineConfig kwargs) honouring optional chaos params.

    ``params["fault"]`` wraps the model in a :class:`FlakyModel` under the
    spec'd fault plan; ``params["retry"]`` overrides the translation retry
    policy.  Both are JSON specs (they feed the content hash) and absent
    entirely in fault-free graphs, keeping those cache keys unchanged.
    """
    model = make_model(GPT3_PROFILE, seed=seed)
    if params.get("fault") is not None:
        model = FlakyModel(model, FaultPlan.from_spec(params["fault"]))
    extra = {}
    if params.get("retry") is not None:
        extra["translation"] = TranslationConfig(
            retry=RetryPolicy.from_spec(params["retry"])
        )
    return model, extra


def build_domain_task(params: dict, inputs: dict) -> BenchmarkDomain:
    """Build one domain and materialize its Synth split (Figure-1 pipeline).

    The adapter's import spec rides in ``params["adapter"]`` so this body
    works in pool workers without any registry state crossing the process
    boundary — and so the content hash distinguishes two adapters that share
    a domain name.
    """
    seed = params["seed"]
    builder = adapters.builder_from_spec(params["adapter"])
    domain = builder(scale=params["scale"])
    model, extra = _pipeline_resilience(params, seed)
    pipeline = AugmentationPipeline(
        domain,
        model=model,
        config=PipelineConfig(
            target_queries=params["target_queries"], seed=seed, **extra
        ),
    )
    pipeline.run(rng=random.Random(seed))
    return domain


def corpus_task(params: dict, inputs: dict) -> SpiderCorpus:
    return build_corpus(
        train_per_db=params["train_per_db"],
        dev_per_db=params["dev_per_db"],
        seed=params["seed"],
    )


def synth_spider_db(params: dict, inputs: dict) -> Split:
    """The pipeline applied to one MiniSpider database, seeded with that
    database's own training pairs (the 'Synth Spider' control of Table 5)."""
    corpus: SpiderCorpus = inputs["corpus"]
    db_id = params["db_id"]
    seed = params["seed"]
    db_train = [p for p in corpus.train.pairs if p.db_id == db_id]
    pseudo_domain = BenchmarkDomain(
        name=db_id,
        database=corpus.databases[db_id],
        enhanced=corpus.enhanced[db_id],
        lexicon=None,
        seed=Split(name=f"{db_id}-seed", pairs=db_train),
        dev=Split(name=f"{db_id}-dev", pairs=[]),
    )
    model, extra = _pipeline_resilience(params, seed)
    pipeline = AugmentationPipeline(
        pseudo_domain,
        model=model,
        config=PipelineConfig(target_queries=params["per_db"], seed=seed, **extra),
    )
    return pipeline.run(rng=random.Random(seed)).split


def merge_synth_spider(params: dict, inputs: dict) -> Split:
    pairs = []
    for db_id in params["order"]:
        pairs.extend(inputs[db_id].pairs)
    return Split(name="spider-synth", pairs=pairs)


def train_system_task(params: dict, inputs: dict):
    """Train one system under one Table-5 regime (see ``Suite.train_regime``)."""
    system = SYSTEM_CLASSES[params["system"]]()
    corpus: SpiderCorpus = inputs["corpus"]
    for db_id, database in corpus.databases.items():
        system.register_database(db_id, database, corpus.enhanced[db_id])
    domain_name = params["domain"]
    regime = params["regime"]
    if domain_name is not None:
        for name in params["domains"]:
            domain = inputs[domain_task(name)]
            system.register_database(name, domain.database, domain.enhanced)
    pairs = list(corpus.train.pairs)
    if domain_name is None:
        if regime == "plus-synth":
            pairs = pairs + list(inputs[SYNTH_SPIDER_TASK].pairs)
        elif regime == "synth-only":
            pairs = list(inputs[SYNTH_SPIDER_TASK].pairs)
    else:
        domain = inputs[domain_task(domain_name)]
        if regime in ("seed", "both"):
            pairs += list(domain.seed.pairs)
        if regime in ("synth", "both"):
            pairs += list(domain.synth.pairs)
    system.train(pairs)
    return system


def eval_cell_task(params: dict, inputs: dict) -> Table5Cell:
    """Measure execution accuracy of a trained system on its dev split.

    Predictions go through ``predict_all`` → ``predict_batch`` — the same
    inference path the serving layer uses — so offline evaluation and
    serving cannot drift apart (batched output is byte-identical to
    per-question ``predict``).
    """
    system = inputs["system"]
    domain_name = params["domain"]
    dev_limit = params["dev_limit"]
    # ``params["engine"]`` is present only when the run asked for a
    # non-native engine (PR-4 chaos-spec pattern: params feed the content
    # hash, so native runs keep their existing cache keys).
    engine = params.get("engine", "native")
    accuracy = ExecutionAccuracy()
    tracer = get_tracer()
    if domain_name is None:
        corpus: SpiderCorpus = inputs["corpus"]
        pairs = corpus.dev.pairs[:dev_limit] if dev_limit else list(corpus.dev.pairs)
        databases = list(corpus.databases.values())
    else:
        domain: BenchmarkDomain = inputs["domain"]
        pairs = domain.dev.pairs[:dev_limit] if dev_limit else list(domain.dev.pairs)
        databases = [domain.database]
    with tracer.span("eval.predict", n_pairs=len(pairs)):
        predictions = list(system.predict_all(pairs))
    previous = [db.engine_name for db in databases]
    try:
        for db in databases:
            db.set_engine(engine)
        with tracer.span("eval.score", n_pairs=len(pairs), engine=engine):
            if domain_name is None:
                for pair, predicted in zip(pairs, predictions):
                    accuracy.add(
                        corpus.databases[pair.db_id], pair.sql, predicted,
                        enhanced=None,
                    )
            else:
                for pair, predicted in zip(pairs, predictions):
                    accuracy.add(
                        domain.database, pair.sql, predicted,
                        enhanced=domain.enhanced,
                    )
    finally:
        # Restore: the domain artifact is shared (and cached) across tasks.
        for db, name in zip(databases, previous):
            db.set_engine(name)
    return Table5Cell(
        system=params["system"],
        domain=domain_name or "spider",
        regime=params["regime"],
        accuracy=accuracy.accuracy,
        n_eval=accuracy.total,
        triage=accuracy.triage,
    )


# -- graph assembly ------------------------------------------------------------


def build_suite_graph(
    config: ExperimentConfig,
    llm_fault_spec: dict | None = None,
    retry_spec: dict | None = None,
) -> TaskGraph:
    """The full artifact graph for one experiment configuration.

    ``llm_fault_spec``/``retry_spec`` (JSON specs from
    :meth:`FaultPlan.to_spec` / :meth:`RetryPolicy.to_spec`) thread a chaos
    schedule into the LLM-calling task bodies.  They are added to task
    params only when given — params feed the content hash, so fault-free
    graphs keep their existing cache keys, and chaos runs can never collide
    with them.
    """
    graph = TaskGraph()
    base = config.seed
    domains = active_domains(config)
    chaos: dict = {}
    if llm_fault_spec is not None:
        chaos["fault"] = llm_fault_spec
    if retry_spec is not None:
        chaos["retry"] = retry_spec
    # Like the chaos specs: the engine choice enters eval params (and thus
    # the content hash) only when it differs from the default.
    eval_extra: dict = {}
    if config.engine != "native":
        eval_extra["engine"] = config.engine

    graph.add(
        Task(
            CORPUS_TASK,
            _FN("corpus_task"),
            {
                "train_per_db": config.spider_train_per_db,
                "dev_per_db": config.spider_dev_per_db,
                "seed": derive_seed(base, CORPUS_TASK),
            },
        )
    )

    for name in domains:
        tname = domain_task(name)
        graph.add(
            Task(
                tname,
                _FN("build_domain_task"),
                {
                    "domain": name,
                    "adapter": adapters.get_adapter(name).spec(),
                    "scale": config.domain_scale,
                    "target_queries": config.synth_targets.get(name, 300),
                    "seed": derive_seed(base, tname),
                    **chaos,
                },
            )
        )

    spider_dbs = list(SPIDER_DB_BUILDERS)
    for db_id in spider_dbs:
        tname = synth_spider_db_task(db_id)
        graph.add(
            Task(
                tname,
                _FN("synth_spider_db"),
                {
                    "db_id": db_id,
                    "per_db": config.synth_spider_per_db,
                    "seed": derive_seed(base, tname),
                    **chaos,
                },
                deps=(("corpus", CORPUS_TASK),),
            )
        )
    graph.add(
        Task(
            SYNTH_SPIDER_TASK,
            _FN("merge_synth_spider"),
            {"order": spider_dbs},
            deps=tuple((db_id, synth_spider_db_task(db_id)) for db_id in spider_dbs),
        )
    )

    domain_deps = tuple((domain_task(n), domain_task(n)) for n in domains)
    for system in SYSTEM_CLASSES:
        for name in domains:
            for regime in DOMAIN_REGIMES:
                tname = train_task(system, name, regime)
                graph.add(
                    Task(
                        tname,
                        _FN("train_system_task"),
                        {
                            "system": system,
                            "domain": name,
                            "domains": list(domains),
                            "regime": regime,
                        },
                        deps=(("corpus", CORPUS_TASK),) + domain_deps,
                    )
                )
                graph.add(
                    Task(
                        eval_task(system, name, regime),
                        _FN("eval_cell_task"),
                        {
                            "system": system,
                            "domain": name,
                            "regime": regime,
                            "dev_limit": config.dev_limit,
                            **eval_extra,
                        },
                        deps=(("system", tname), ("domain", domain_task(name))),
                    )
                )
        for regime in SPIDER_REGIMES:
            deps: tuple[tuple[str, str], ...] = (("corpus", CORPUS_TASK),)
            if regime != "zero":
                deps += ((SYNTH_SPIDER_TASK, SYNTH_SPIDER_TASK),)
            tname = train_task(system, "spider", regime)
            graph.add(
                Task(
                    tname,
                    _FN("train_system_task"),
                    {"system": system, "domain": None, "regime": regime},
                    deps=deps,
                )
            )
            graph.add(
                Task(
                    eval_task(system, "spider", regime),
                    _FN("eval_cell_task"),
                    {
                        "system": system,
                        "domain": None,
                        "regime": regime,
                        "dev_limit": config.dev_limit,
                        **eval_extra,
                    },
                    deps=(("system", tname), ("corpus", CORPUS_TASK)),
                )
            )
    return graph
