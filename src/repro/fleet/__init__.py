"""``repro.fleet`` — the sharded multi-replica serving tier.

One :class:`~repro.serving.server.InferenceServer` per process caps
throughput at a single event loop and decode thread.  This package puts a
fleet in front: a :class:`~repro.fleet.router.FleetRouter` consistent-hashes
requests by ``(domain, normalized question)`` onto per-domain shards over N
replica slots (:mod:`repro.fleet.hashring`), a fleet-shared result cache
with single-flight dedup decodes each in-flight question exactly once
across the whole fleet (:mod:`repro.fleet.cache`), per-tenant token-bucket
quotas reject over-limit tenants structurally at admission
(:mod:`repro.fleet.quotas`), and a rolling drain-and-swap protocol reloads
models with zero dropped requests (:mod:`repro.fleet.replica`,
:meth:`~repro.fleet.router.FleetRouter.reload`).

Determinism contract: routing hashes are process-independent, replicas own
private model copies, and ``predict`` is pure — so for a fixed seed, fleet
answers are byte-identical to the single-replica server's.
"""

from repro.fleet.cache import Flight, SharedCache
from repro.fleet.hashring import HashRing, stable_hash
from repro.fleet.procpool import ProcessSystem, fork_available, process_backends
from repro.fleet.quotas import QuotaPolicy, TenantQuotas, TokenBucket
from repro.fleet.replica import (
    DRAINING,
    SERVING,
    STOPPED,
    FleetSpec,
    Replica,
    clone_backends,
    make_replica,
)
from repro.fleet.router import FleetConfig, FleetError, FleetRouter, build_fleet

__all__ = [
    "DRAINING",
    "SERVING",
    "STOPPED",
    "FleetConfig",
    "FleetError",
    "FleetRouter",
    "FleetSpec",
    "Flight",
    "HashRing",
    "ProcessSystem",
    "QuotaPolicy",
    "Replica",
    "SharedCache",
    "TenantQuotas",
    "TokenBucket",
    "build_fleet",
    "clone_backends",
    "fork_available",
    "make_replica",
    "process_backends",
    "stable_hash",
]
