"""Fleet-shared result cache with single-flight dedup.

One :class:`SharedCache` fronts every replica in a fleet, replacing the
per-server result caches (replicas run with ``cache_capacity=0``), so
cache coherence holds by construction: there is exactly one copy of every
cached answer, and a reload invalidates the whole fleet's cache in one
call.

Single-flight closes the window the per-server cache leaves open: a
result is only cached *after* it decodes, so K concurrent identical
questions would decode K times.  Here the first request for a key becomes
the **leader** and decodes; every concurrent duplicate becomes a
**follower** that awaits the leader's future instead of reaching a
replica.  The table lives on the router's event loop — registration is
synchronous (no await between lookup and insert), so exactly one leader
per key is guaranteed, not merely likely.

Leaders must always settle their flight (:meth:`SharedCache.settle` runs
in a ``finally``), otherwise followers would hang; a leader that crashes
without a result settles its followers with a structured failure.
"""

from __future__ import annotations

import asyncio

from repro.serving.cache import CachedResult, ResultCache


class Flight:
    """One in-flight decode: the leader resolves, followers await."""

    __slots__ = ("key", "leader", "future")

    def __init__(self, key: tuple[str, str], leader: bool, future: asyncio.Future) -> None:
        self.key = key
        self.leader = leader
        self.future = future


class SharedCache:
    """Fleet-wide result cache + single-flight table.

    The result store is a :class:`~repro.serving.cache.ResultCache`
    (bounded LRU over ``(domain, normalized question)``); this class adds
    the in-flight future table and its accounting.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.results = ResultCache(capacity)
        self._inflight: dict[tuple[str, str], asyncio.Future] = {}
        #: Followers that awaited a leader instead of decoding.
        self.coalesced = 0
        #: Leaders that settled without a result (crash/cancellation).
        self.aborted = 0

    @staticmethod
    def key(domain: str, question: str) -> tuple[str, str]:
        return ResultCache.key(domain, question)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    # -- result store --------------------------------------------------------------

    def get(self, domain: str, question: str) -> tuple[bool, CachedResult | None]:
        return self.results.get(domain, question)

    def put(self, domain: str, question: str, entry: CachedResult) -> None:
        self.results.put(domain, question, entry)

    def invalidate(self) -> int:
        """Drop every cached result (model reload); returns the count."""
        dropped = len(self.results)
        self.results.clear()
        return dropped

    # -- single-flight -------------------------------------------------------------

    def flight(self, domain: str, question: str) -> Flight:
        """Join the in-flight decode for this key, or lead a new one.

        Must be called (and the returned leader settled) on one event
        loop; there is deliberately no lock here — atomicity comes from
        the absence of any await point.
        """
        key = self.key(domain, question)
        future = self._inflight.get(key)
        if future is not None:
            self.coalesced += 1
            return Flight(key, leader=False, future=future)
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        return Flight(key, leader=True, future=future)

    def settle(self, flight: Flight, result) -> None:
        """Resolve a leader's flight for every follower and retire it.

        ``result is None`` means the leader crashed before producing a
        :class:`~repro.serving.request.ServeResult`; followers are settled
        with ``None`` and must synthesize their own failure.
        """
        if not flight.leader:
            raise ValueError("only the flight leader settles it")
        if self._inflight.get(flight.key) is flight.future:
            del self._inflight[flight.key]
        if result is None:
            self.aborted += 1
        if not flight.future.done():
            flight.future.set_result(result)

    def stats(self) -> dict:
        return {
            **self.results.stats(),
            "inflight": len(self._inflight),
            "singleflight_coalesced": self.coalesced,
            "singleflight_aborted": self.aborted,
        }
