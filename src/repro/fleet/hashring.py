"""Consistent hashing: stable assignment of questions to replica slots.

The ring hashes every replica slot onto ``vnodes`` points of a 64-bit
circle and routes a key to the first slot point at or after the key's own
hash.  Hashes come from :func:`hashlib.blake2b`, not the builtin ``hash``
— Python salts the latter per process, which would scatter a fleet's
shard ownership across restarts and break the determinism contract.

Properties the router depends on:

* **Stability** — the slot a key maps to depends only on the ring's
  member names, never on insertion order or process identity.
* **Minimal movement** — removing one slot re-routes only the keys that
  slot owned; every other key keeps its assignment (tested).
* **Sibling order** — :meth:`HashRing.nodes_for` walks the ring past the
  owner and yields distinct successor slots, giving each key a stable
  retry order for failover.
"""

from __future__ import annotations

import bisect
import hashlib


def stable_hash(key: str) -> int:
    """A process-independent 64-bit hash of ``key``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring over named slots."""

    def __init__(self, nodes: tuple[str, ...] = (), vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        #: Sorted virtual-node points: parallel lists of (point, slot name).
        self._points: list[int] = []
        self._owners: list[str] = []
        self._nodes: dict[str, None] = {}  # insertion-ordered set of slots
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def nodes(self) -> tuple[str, ...]:
        """The member slots, in insertion order."""
        return tuple(self._nodes)

    def _vpoints(self, node: str) -> list[int]:
        return [stable_hash(f"{node}#{i}") for i in range(self.vnodes)]

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes[node] = None
        for point in self._vpoints(node):
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        del self._nodes[node]
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    def node_for(self, key: str) -> str:
        """The slot owning ``key`` (raises when the ring is empty)."""
        if not self._points:
            raise KeyError("hash ring is empty")
        index = bisect.bisect_right(self._points, stable_hash(key))
        return self._owners[index % len(self._owners)]

    def nodes_for(self, key: str, n: int) -> list[str]:
        """Up to ``n`` distinct slots for ``key``: the owner first, then the
        ring-order successors (the key's stable failover siblings)."""
        if not self._points or n < 1:
            return []
        start = bisect.bisect_right(self._points, stable_hash(key))
        picked: list[str] = []
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._owners)]
            if owner not in picked:
                picked.append(owner)
                if len(picked) == n or len(picked) == len(self._nodes):
                    break
        return picked
