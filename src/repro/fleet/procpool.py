"""Process-backed replica decode: sidestep the GIL for CPU-bound models.

Thread-backed replicas share one interpreter, so N decode threads contend
on the GIL and fleet throughput stays flat no matter how many replicas the
router shards over (measured ~1.25x for 2 threads on the pure-Python
systems this repo trains).  Process isolation gives each replica slot a
dedicated **worker process** that holds a private clone of the domain
backends and runs ``predict_batch`` there; the parent's decode thread
only ships question strings out and SQL strings back.

The worker is created with the ``fork`` start method, so the clone —
produced by :func:`~repro.fleet.replica.clone_backends` *before* the fork
— reaches the child by memory inheritance, never by pickling: trained
systems stay exactly as built, and per-call IPC carries only strings.
Determinism is unchanged: the child's model copy is private and
``predict`` is pure, so answers remain byte-identical to the in-process
server's.

When ``fork`` is unavailable (non-POSIX platforms), callers fall back to
thread isolation — same answers, no parallel decode.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

from repro.serving.server import DomainBackend

#: The worker process's backends, installed by :func:`_worker_init`.
_WORKER_BACKENDS: dict[str, DomainBackend] = {}


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _worker_init(backends: dict[str, DomainBackend]) -> None:
    global _WORKER_BACKENDS
    _WORKER_BACKENDS = backends


def _worker_decode(domain: str, questions: list[str]) -> list[str]:
    backend = _WORKER_BACKENDS[domain]
    return list(backend.system.predict_batch(list(questions), domain))


class ProcessSystem:
    """A system proxy whose ``predict_batch`` runs in the replica's worker.

    Runs on the server's decode thread, so the blocking ``.result()`` wait
    never touches the event loop.  ``link`` is a no-op here — the real
    system links (and memoizes) inside the worker process as part of its
    own ``predict_batch``.
    """

    _trained = True

    def __init__(self, pool: ProcessPoolExecutor, domain: str) -> None:
        self._pool = pool
        self._domain = domain

    def link(self, question, db_id):
        return None

    def predict(self, question: str, db_id: str) -> str:
        return self.predict_batch([question], db_id)[0]

    def predict_batch(self, questions: list[str], db_id: str) -> list[str]:
        return self._pool.submit(_worker_decode, db_id, list(questions)).result()


def process_backends(
    cloned: dict[str, DomainBackend],
) -> tuple[dict[str, DomainBackend], ProcessPoolExecutor]:
    """Wrap already-cloned backends behind a one-process decode pool.

    ``cloned`` must be replica-private copies: the fork hands the child its
    own view of them, and the parent keeps the fallback (degradation runs
    in the parent when the worker's decode fails) and the database (the
    execute stage stays in the parent).
    """
    pool = ProcessPoolExecutor(
        max_workers=1,
        mp_context=multiprocessing.get_context("fork"),
        initializer=_worker_init,
        initargs=(cloned,),
    )
    wrapped = {
        name: DomainBackend(
            name=backend.name,
            system=ProcessSystem(pool, name),
            database=backend.database,
            fallback=backend.fallback,
        )
        for name, backend in cloned.items()
    }
    return wrapped, pool
