"""Per-tenant admission control: token-bucket quotas.

A :class:`TenantQuotas` table guards the fleet's front door.  Every tenant
draws from its own :class:`TokenBucket` — ``burst`` tokens of headroom,
refilled at ``rate_per_s`` — and a request that finds the bucket empty is
rejected *structurally* (the router turns it into a ``rejected``
:class:`~repro.serving.request.ServeResult` with error kind ``"quota"``),
never queued: quota pressure from one tenant must not grow any replica's
queue and steal latency from the others.

Time is injected (:mod:`repro.resilience.clock`), so refill behaviour is
tested against a :class:`~repro.resilience.clock.FakeClock` with no real
waiting, and the buckets never read the wall clock directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resilience.clock import SYSTEM_CLOCK


@dataclass(frozen=True)
class QuotaPolicy:
    """Steady-state rate plus burst headroom for one tenant."""

    rate_per_s: float
    burst: float

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0 or self.burst < 1:
            raise ValueError("quota needs rate_per_s > 0 and burst >= 1")


class TokenBucket:
    """The classic leaky abstraction: spend now, refill continuously."""

    __slots__ = ("policy", "clock", "_tokens", "_updated", "admitted", "rejected")

    def __init__(self, policy: QuotaPolicy, clock=SYSTEM_CLOCK) -> None:
        self.policy = policy
        self.clock = clock
        self._tokens = float(policy.burst)
        self._updated = clock.now()
        self.admitted = 0
        self.rejected = 0

    def _refill(self) -> None:
        now = self.clock.now()
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        self._tokens = min(
            float(self.policy.burst), self._tokens + elapsed * self.policy.rate_per_s
        )

    def try_acquire(self, cost: float = 1.0) -> bool:
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            self.admitted += 1
            return True
        self.rejected += 1
        return False

    @property
    def available(self) -> float:
        self._refill()
        return self._tokens

    def snapshot(self) -> dict:
        return {
            "rate_per_s": self.policy.rate_per_s,
            "burst": self.policy.burst,
            "available": round(self.available, 3),
            "admitted": self.admitted,
            "rejected": self.rejected,
        }


class TenantQuotas:
    """Lazy per-tenant bucket table with an optional default policy.

    ``default=None`` admits unknown tenants without limit (they still get
    accounting buckets are *not* created for them — unlimited means
    untracked here; the router keeps its own per-tenant counters).
    ``overrides`` pins specific tenants to their own policies.
    """

    def __init__(
        self,
        default: QuotaPolicy | None = None,
        overrides: dict[str, QuotaPolicy] | None = None,
        clock=SYSTEM_CLOCK,
    ) -> None:
        self.default = default
        self.overrides = dict(overrides or {})
        self.clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    def policy_for(self, tenant: str) -> QuotaPolicy | None:
        return self.overrides.get(tenant, self.default)

    def admit(self, tenant: str, cost: float = 1.0) -> bool:
        policy = self.policy_for(tenant)
        if policy is None:
            return True
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(policy, self.clock)
        return bucket.try_acquire(cost)

    def snapshot(self) -> dict:
        return {
            tenant: bucket.snapshot()
            for tenant, bucket in sorted(self._buckets.items())
        }
