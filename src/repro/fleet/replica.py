"""Replica lifecycle: isolated model copies, drain protocol, fleet specs.

A :class:`Replica` wraps one :class:`~repro.serving.server.InferenceServer`
in a named fleet *slot*.  The slot name is the replica's ring identity —
a reload swaps a fresh server into the same slot, so shard ownership never
moves during a reload — while ``generation`` counts how many times the
slot has been re-warmed.

**Isolation.**  Replicas must not share mutable model state: two decode
threads racing on one system's link memo is exactly the class of bug the
single-server design never had.  :func:`clone_backends` deep-copies each
backend's system and fallback per replica but *shares* the database object
(read-only at serve time, and by far the largest part), mirroring how real
replicas share storage but own their model weights.

**Drain.**  The router counts a replica's in-flight requests; ``drain()``
flips the slot to ``draining``, waits until the count hits zero (an
``asyncio.Event``, no polling), then stops the server.  Because the router
stops routing to a draining replica first, every accepted request
completes and none are dropped.

**Specs.**  A :class:`FleetSpec` is the pure-data description of what a
replica serves — system, regime, domains, and the adapter manifests behind
those domains (:func:`repro.adapters.specs_for`).  A replica factory in a
fresh context calls :meth:`FleetSpec.ensure_adapters` before building
backends, so reload never assumes the destination process already
registered the domains.
"""

from __future__ import annotations

import asyncio
import copy
from dataclasses import dataclass

from repro.resilience.clock import SYSTEM_CLOCK
from repro.serving.server import DomainBackend, InferenceServer, ServerConfig

#: Replica slot states.
SERVING = "serving"
DRAINING = "draining"
STOPPED = "stopped"


@dataclass(frozen=True)
class FleetSpec:
    """Pure-data description of the fleet's serving surface."""

    system: str
    regime: str
    domains: tuple[str, ...]
    #: Named adapter manifest specs (:func:`repro.adapters.specs_for`).
    adapter_specs: tuple[dict, ...] = ()

    def ensure_adapters(self) -> None:
        """Re-register the domains' adapters (idempotent) before a build."""
        from repro.adapters import register_specs

        register_specs(self.adapter_specs)

    def as_dict(self) -> dict:
        return {
            "system": self.system,
            "regime": self.regime,
            "domains": list(self.domains),
            "adapter_specs": [dict(spec) for spec in self.adapter_specs],
        }


def clone_backends(
    backends: dict[str, DomainBackend] | list[DomainBackend],
) -> dict[str, DomainBackend]:
    """Replica-private copies of the backends (databases stay shared)."""
    if not isinstance(backends, dict):
        backends = {backend.name: backend for backend in backends}
    out: dict[str, DomainBackend] = {}
    for name, backend in backends.items():
        # Seeding the memo pins the database to the original object, so the
        # deep copy covers the system's mutable state (link memos, lexicon)
        # without duplicating the data it reads.
        memo: dict[int, object] = {}
        if backend.database is not None:
            memo[id(backend.database)] = backend.database
        out[name] = DomainBackend(
            name=backend.name,
            system=copy.deepcopy(backend.system, memo),
            database=backend.database,
            fallback=copy.deepcopy(backend.fallback, memo),
        )
    return out


class Replica:
    """One fleet slot: a server plus routing/drain bookkeeping."""

    def __init__(
        self,
        slot: str,
        server: InferenceServer,
        generation: int = 1,
        pool=None,
    ) -> None:
        self.slot = slot
        self.server = server
        self.generation = generation
        #: Decode worker pool under process isolation (None for threads).
        self.pool = pool
        self.state = SERVING
        self.inflight = 0
        self.served = 0
        self._drained = asyncio.Event()

    @property
    def domains(self) -> tuple[str, ...]:
        return tuple(self.server.backends)

    async def submit(self, question: str, domain: str):
        """Forward one request, tracking in-flight count for the drain."""
        self.inflight += 1
        try:
            return await self.server.submit(question, domain)
        finally:
            self.inflight -= 1
            self.served += 1
            if self.inflight == 0 and self.state == DRAINING:
                self._drained.set()

    async def drain(self) -> int:
        """Finish in-flight work, then stop the server; returns the count
        of requests that completed during the drain."""
        before = self.served
        self.state = DRAINING
        if self.inflight == 0:
            self._drained.set()
        await self._drained.wait()
        await self.server.stop()
        self.close()
        self.state = STOPPED
        return self.served - before

    def close(self) -> None:
        """Release the decode worker pool (no-op under thread isolation).

        Only called once no decode can be in flight (after ``server.stop``),
        so the non-waiting shutdown never abandons work."""
        pool, self.pool = self.pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def snapshot(self) -> dict:
        return {
            "slot": self.slot,
            "generation": self.generation,
            "state": self.state,
            "inflight": self.inflight,
            "served": self.served,
            "domains": list(self.domains),
            "pending": self.server.pending(),
        }


def make_replica(
    slot: str,
    backends: dict[str, DomainBackend],
    config: ServerConfig,
    *,
    generation: int = 1,
    clone: bool = True,
    isolation: str = "thread",
    clock=SYSTEM_CLOCK,
) -> Replica:
    """Build one replica over (by default, private copies of) ``backends``.

    The server is labelled with its slot so every span it emits —
    ``serve.request``, ``serve.batch``, the stage spans beneath them —
    carries ``replica=<slot>`` and one trace shows the whole fleet.

    ``isolation`` picks where the replica decodes: ``"thread"`` (the
    server's own decode thread, GIL-shared with its siblings) or
    ``"process"`` (a forked worker owning the replica's model copy, so N
    replicas decode on N cores — :mod:`repro.fleet.procpool`).  Process
    isolation degrades to threads where ``fork`` is unavailable.
    """
    pool = None
    if isolation not in ("thread", "process"):
        raise ValueError(f"unknown replica isolation {isolation!r}")
    if isolation == "process":
        from repro.fleet.procpool import fork_available, process_backends

        if fork_available():
            backends, pool = process_backends(clone_backends(backends))
        else:
            isolation = "thread"
    if isolation == "thread" and clone:
        backends = clone_backends(backends)
    server = InferenceServer(
        backends, config, clock=clock, labels={"replica": slot}
    )
    return Replica(slot, server, generation=generation, pool=pool)
