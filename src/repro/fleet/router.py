"""The fleet router: shards, single-flight, quotas, failover, reload.

Request lifecycle::

    submit(question, domain, tenant)
        │ tenant token bucket empty ──────────> "rejected" (kind "quota")
        │ fleet-shared result cache hit ──────> answer (cached=True)
        │ identical question in flight ───────> await leader (single_flight)
        ▼
    consistent-hash ring for the domain: owner slot, then siblings
        │ owner breaker open / answer "failed" or "rejected"
        │         └──> retry the shard on the next sibling (fleet.retries)
        ▼
    replica.submit → InferenceServer (queue → batch → decode)
        ▼
    leader settles the flight, primary answers land in the shared cache

Routing is deterministic: the key is ``(domain, normalized question)`` and
the ring hashes with :func:`~repro.fleet.hashring.stable_hash`, so a fixed
request stream always shards the same way.  Combined with replica-private
model copies (:func:`~repro.fleet.replica.clone_backends`) and pure
``predict``, fleet answers are byte-identical to a single replica's.

Zero-downtime reload (:meth:`FleetRouter.reload`) is rolling, one slot at
a time: build a fresh replica from the factory (warm-started from the
artifact cache when the factory loads through the runtime), start it,
atomically swap it into the slot — the ring keys on slot names, so shard
ownership does not move — then drain the old replica (finish its in-flight
requests, stop it).  No accepted request is dropped; the shared cache is
invalidated once after the roll so answers from the previous model
generation cannot outlive it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.errors import ReproError
from repro.fleet.cache import SharedCache
from repro.fleet.hashring import HashRing
from repro.fleet.quotas import TenantQuotas
from repro.fleet.replica import Replica, make_replica
from repro.obs import get_tracer
from repro.obs.metrics import MetricsRegistry, merged_snapshot
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import SYSTEM_CLOCK
from repro.serving.cache import CachedResult
from repro.serving.request import ServeError, ServeResult
from repro.serving.server import ServerConfig


class FleetError(ReproError):
    """Misconfiguration of the fleet tier (not a per-request failure)."""


@dataclass(frozen=True)
class FleetConfig:
    """Routing and robustness knobs of one :class:`FleetRouter`."""

    #: Fleet-shared result-cache entries (0 disables caching).
    cache_capacity: int = 256
    #: Virtual nodes per replica slot on each domain's ring.
    vnodes: int = 64
    #: Sibling replicas tried after the shard owner fails.
    retries: int = 1
    #: Result statuses that fail over to a sibling.  ``rejected`` (a full
    #: replica queue) spills load to the sibling; ``failed`` retries a
    #: replica-local fault.  Timeouts never retry — the latency budget is
    #: already spent.
    retry_statuses: tuple[str, ...] = ("failed", "rejected")
    #: Consecutive replica failures that open its circuit breaker.
    breaker_failures: int = 5
    #: Seconds a replica's breaker stays open before probing it again.
    breaker_reset_s: float = 30.0
    #: Where replicas decode: ``"thread"`` shares the interpreter (cheap,
    #: GIL-bound), ``"process"`` forks one decode worker per replica so the
    #: fleet scales CPU-bound models across cores
    #: (:mod:`repro.fleet.procpool`).
    isolation: str = "thread"


#: Router-level counters (``fleet.*`` in the registry).
COUNTERS = (
    "requests",       # everything submitted to the router
    "routed",         # requests dispatched to a replica
    "cache_hits",     # answered from the fleet-shared cache
    "single_flight",  # followers coalesced onto an in-flight decode
    "retries",        # shard retried on a sibling replica
    "fast_failed",    # replicas skipped because their breaker was open
    "quota_rejected", # admissions rejected by a tenant quota
    "no_replica",     # no live replica could take the request
    "reloads",        # completed reload() rolls
    "swapped",        # replicas swapped during reloads
)


class FleetRouter:
    """Routes requests over a set of replica slots with shared caching."""

    def __init__(
        self,
        config: FleetConfig | None = None,
        quotas: TenantQuotas | None = None,
        factory=None,
        clock=SYSTEM_CLOCK,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or FleetConfig()
        self.quotas = quotas
        #: ``() -> dict[str, DomainBackend]`` used by :meth:`reload`.
        self.factory = factory
        self.clock = clock
        self.registry = registry or MetricsRegistry()
        self.cache = SharedCache(self.config.cache_capacity)
        self._replicas: dict[str, Replica] = {}
        self._rings: dict[str, HashRing] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._counters = {
            name: self.registry.counter(f"fleet.{name}") for name in COUNTERS
        }
        self._replica_gauge = self.registry.gauge("fleet.replicas")
        self._started = False

    # -- membership -----------------------------------------------------------------

    def add_replica(self, replica: Replica) -> None:
        if replica.slot in self._replicas:
            raise FleetError(f"slot {replica.slot!r} is already occupied")
        self._replicas[replica.slot] = replica
        self._breakers[replica.slot] = self._new_breaker(replica.slot)
        for domain in replica.domains:
            ring = self._rings.get(domain)
            if ring is None:
                ring = self._rings[domain] = HashRing(vnodes=self.config.vnodes)
            ring.add(replica.slot)
        self._replica_gauge.set(len(self._replicas))

    def _new_breaker(self, slot: str) -> CircuitBreaker:
        return CircuitBreaker(
            f"replica:{slot}",
            failure_threshold=self.config.breaker_failures,
            reset_timeout_s=self.config.breaker_reset_s,
            clock=self.clock,
        )

    @property
    def replicas(self) -> dict[str, Replica]:
        return dict(self._replicas)

    def domains(self) -> tuple[str, ...]:
        return tuple(sorted(self._rings))

    # -- lifecycle ------------------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            return
        for replica in self._replicas.values():
            await replica.server.start()
        self._started = True

    async def stop(self) -> None:
        if not self._started:
            return
        for replica in self._replicas.values():
            await replica.server.stop()
            replica.close()
        self._started = False

    async def __aenter__(self) -> "FleetRouter":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- the request path -----------------------------------------------------------

    async def submit(
        self, question: str, domain: str, tenant: str = "default"
    ) -> ServeResult:
        """Serve one question through the fleet; never raises per-request."""
        started = self.clock.now()
        tracer = get_tracer()
        with tracer.span("fleet.request", domain=domain, tenant=tenant) as span:
            self._count("requests")
            self._tenant_count(tenant, "requests")

            if self.quotas is not None and not self.quotas.admit(tenant):
                self._count("quota_rejected")
                self._tenant_count(tenant, "rejected")
                span.set_attr("status", "rejected")
                return ServeResult(
                    question=question, domain=domain, status="rejected",
                    tenant=tenant,
                    error=ServeError(
                        "quota",
                        f"tenant {tenant!r} exceeded its request quota",
                    ),
                )

            ring = self._rings.get(domain)
            if ring is None or not len(ring):
                span.set_attr("status", "failed")
                return ServeResult(
                    question=question, domain=domain, status="failed",
                    tenant=tenant,
                    error=ServeError(
                        "unknown-domain", f"no replica serves domain {domain!r}"
                    ),
                )

            hit, entry = self.cache.get(domain, question)
            if hit:
                self._count("cache_hits")
                self._tenant_count(tenant, "served")
                span.set_attr("status", "ok")
                span.set_attr("cache", "hit")
                return ServeResult(
                    question=question, domain=domain, sql=entry.sql,
                    rows=entry.rows, status="ok", cached=True, tenant=tenant,
                    timings_ms={"total": (self.clock.now() - started) * 1000.0},
                )

            flight = self.cache.flight(domain, question)
            if not flight.leader:
                self._count("single_flight")
                span.set_attr("single_flight", True)
                leader_result = await flight.future
                result = self._follower_result(
                    question, domain, leader_result, started
                )
            else:
                result = None
                try:
                    result = await self._dispatch(question, domain, ring, span)
                    if result.status == "ok":
                        self.cache.put(
                            domain, question,
                            CachedResult(sql=result.sql, rows=result.rows),
                        )
                finally:
                    # Followers must never hang: settle even if dispatch
                    # raised (they synthesize a failure from ``None``).
                    self.cache.settle(flight, result)

            result.tenant = tenant
            self._tenant_count(
                tenant, "served" if result.ok else result.status
            )
            span.set_attr("status", result.status)
            return result

    def _follower_result(
        self, question: str, domain: str, leader_result, started: float
    ) -> ServeResult:
        total_ms = (self.clock.now() - started) * 1000.0
        if leader_result is None:
            return ServeResult(
                question=question, domain=domain, status="failed",
                single_flight=True,
                error=ServeError(
                    "leader-crashed",
                    "the in-flight decode this request coalesced onto "
                    "crashed without a result",
                ),
                timings_ms={"total": total_ms},
            )
        # Only ``total`` is this request's own; the leader's stage timings
        # (queue/decode) describe work the follower never performed.
        return dc_replace(
            leader_result,
            question=question,
            single_flight=True,
            timings_ms={"total": total_ms},
        )

    async def _dispatch(
        self, question: str, domain: str, ring: HashRing, span
    ) -> ServeResult:
        """Try the shard owner, then its ring-order siblings."""
        key = self.cache.key(domain, question)[1]
        candidates = ring.nodes_for(key, self.config.retries + 1)
        last: ServeResult | None = None
        attempted = 0
        for slot in candidates:
            replica = self._replicas.get(slot)
            if replica is None or replica.state != "serving":
                continue
            breaker = self._breakers[slot]
            if not breaker.allow():
                self._count("fast_failed")
                continue
            if attempted:
                self._count("retries")
                get_tracer().add_event(span, "fleet.retry", replica=slot)
            attempted += 1
            self._count("routed")
            result = await replica.submit(question, domain)
            result.replica = slot
            if result.status in self.config.retry_statuses:
                breaker.record_failure()
                last = result
                continue
            breaker.record_success()
            span.set_attr("replica", slot)
            return result
        if last is not None:
            return last
        self._count("no_replica")
        return ServeResult(
            question=question, domain=domain, status="failed",
            error=ServeError(
                "no-replica",
                f"no live replica available for domain {domain!r} "
                "(all candidates draining or circuit-open)",
            ),
        )

    # -- zero-downtime reload -------------------------------------------------------

    async def reload(self, factory=None) -> dict:
        """Rolling warm reload of every slot; returns a swap report.

        For each slot: build fresh backends from the factory, start the new
        replica, atomically swap it into the slot (the ring keys on slot
        names, so no shard ownership moves), reset the slot's breaker, then
        drain and stop the old replica.  New requests route to the new
        replica the moment the swap lands; requests the old replica already
        accepted complete on it.  The shared result cache is invalidated
        once at the end of the roll.
        """
        factory = factory or self.factory
        if factory is None:
            raise FleetError(
                "reload needs a replica factory (FleetRouter(factory=...) "
                "or reload(factory=...))"
            )
        tracer = get_tracer()
        swaps = []
        with tracer.span("fleet.reload", slots=len(self._replicas)):
            for slot in list(self._replicas):
                old = self._replicas[slot]
                with tracer.span("fleet.swap", slot=slot) as span:
                    fresh = make_replica(
                        slot,
                        factory(),
                        old.server.config,
                        generation=old.generation + 1,
                        isolation=self.config.isolation,
                        clock=self.clock,
                    )
                    await fresh.server.start()
                    # The swap: one assignment, observed atomically by every
                    # later submit; the ring is untouched.
                    self._replicas[slot] = fresh
                    self._breakers[slot] = self._new_breaker(slot)
                    self._count("swapped")
                    drained = await old.drain()
                    span.set_attr("generation", fresh.generation)
                    span.set_attr("drained", drained)
                swaps.append(
                    {
                        "slot": slot,
                        "generation": fresh.generation,
                        "drained_requests": drained,
                    }
                )
        invalidated = self.cache.invalidate()
        self._count("reloads")
        return {"swaps": swaps, "cache_invalidated": invalidated}

    # -- observability ----------------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        self._counters[name].inc(n)

    def _tenant_count(self, tenant: str, outcome: str) -> None:
        self.registry.counter(f"fleet.tenant.{tenant}.{outcome}").inc()

    @property
    def counters(self) -> dict:
        return {name: counter.value for name, counter in self._counters.items()}

    def pending(self) -> int:
        """Queued requests across every replica (the fleet's queue depth)."""
        return sum(
            replica.server.pending() for replica in self._replicas.values()
        )

    def stats(self) -> dict:
        """A point-in-time fleet snapshot (JSON-serializable)."""
        return {
            "counters": self.counters,
            "cache": self.cache.stats(),
            "pending": self.pending(),
            "replicas": {
                slot: replica.snapshot()
                for slot, replica in sorted(self._replicas.items())
            },
            "breakers": {
                slot: breaker.snapshot()
                for slot, breaker in sorted(self._breakers.items())
            },
            "quotas": self.quotas.snapshot() if self.quotas else {},
            "shards": {
                domain: ring.nodes()
                for domain, ring in sorted(self._rings.items())
            },
        }

    def metrics_view(self) -> dict:
        """One merged registry snapshot covering the router and every
        replica (``fleet.*`` plus ``replica.<slot>.serving.*``)."""
        parts = {"": self.registry}
        for slot, replica in sorted(self._replicas.items()):
            parts[f"replica.{slot}"] = replica.server.metrics.registry
        return merged_snapshot(parts)


def build_fleet(
    backends,
    replicas: int,
    server_config: ServerConfig | None = None,
    config: FleetConfig | None = None,
    quotas: TenantQuotas | None = None,
    factory=None,
    clock=SYSTEM_CLOCK,
) -> FleetRouter:
    """Assemble a router over ``replicas`` cloned slots of ``backends``.

    Per-replica result caches are disabled (``cache_capacity=0``): the
    fleet-shared cache is the only result cache, which is what makes cache
    coherence trivial.  The default reload factory re-serves the same
    backends (fresh clones per replica).
    """
    if replicas < 1:
        raise FleetError("a fleet needs at least one replica")
    server_config = dc_replace(
        server_config or ServerConfig(), cache_capacity=0
    )
    router = FleetRouter(
        config=config,
        quotas=quotas,
        factory=factory or (lambda: backends),
        clock=clock,
    )
    for index in range(replicas):
        router.add_replica(
            make_replica(
                f"r{index}",
                backends,
                server_config,
                isolation=router.config.isolation,
                clock=clock,
            )
        )
    return router
