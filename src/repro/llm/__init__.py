"""Simulated large language models for SQL-to-NL translation."""

from repro.llm.base import FineTuneRecord, LLMProfile, SqlToNlModel
from repro.llm.models import (
    ALL_PROFILES,
    GPT2_PROFILE,
    GPT3_PROFILE,
    GPT3_ZERO_PROFILE,
    T5_PROFILE,
    default_generator,
    make_model,
)

__all__ = [
    "LLMProfile",
    "SqlToNlModel",
    "FineTuneRecord",
    "ALL_PROFILES",
    "GPT2_PROFILE",
    "GPT3_PROFILE",
    "GPT3_ZERO_PROFILE",
    "T5_PROFILE",
    "make_model",
    "default_generator",
]
