"""Simulated large language models for SQL-to-NL translation.

The paper's Phase 3 calls GPT-3 (after comparing GPT-2, zero-shot GPT-3,
fine-tuned GPT-3 and T5 — Table 3).  Offline, we replace the API with
simulated models that preserve the three properties the pipeline depends on:

1. **Generation**: given a SQL query, a model emits *n* fluent candidate
   questions (the paper uses 8) with linguistic diversity.
2. **Model-dependent quality**: each model has a *style* (which surface
   vocabulary it prefers — separating BLEU scores) and an *error rate* (the
   probability a candidate is semantically corrupted — separating the human
   expert scores).  Error grows with query complexity, which is why SDSS
   translations score lower than CORDIS in §4.1.2 here as in the paper.
3. **Fine-tuning**: registering a domain's seed pairs gives the model access
   to that domain's phrase lexicon and the canonical style, and lowers its
   error rate — the offline counterpart of fine-tuning GPT-3 on seed
   NL/SQL pairs.

All generation is deterministic: the RNG is keyed by (model seed, SQL text).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from repro.errors import ReproError
from repro.nlgen.lexicon import DomainLexicon
from repro.nlgen.noise import corrupt
from repro.nlgen.realizer import CANONICAL_STYLE, Realizer, StyleProfile
from repro.schema.enhanced import EnhancedSchema
from repro.semql import nodes as sq_nodes
from repro.semql.from_sql import sql_to_semql
from repro.sql import parse


@dataclass(frozen=True)
class LLMProfile:
    """Static characteristics of one simulated model."""

    name: str
    style: StyleProfile
    base_error_rate: float
    per_condition_error: float = 0.04
    finetune_error_discount: float = 0.75
    adopts_canonical_style_on_finetune: bool = False
    max_error_rate: float = 0.85


@dataclass
class FineTuneRecord:
    """What the model learned from one fine-tuning dataset."""

    domain: str
    lexicon: DomainLexicon | None
    n_pairs: int


class SqlToNlModel:
    """A simulated SQL-to-NL language model."""

    def __init__(self, profile: LLMProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed
        self._tuned: dict[str, FineTuneRecord] = {}

    # -- fine-tuning ---------------------------------------------------------

    def fine_tune(
        self,
        pairs,
        domain: str,
        lexicon: DomainLexicon | None = None,
        epochs: int = 4,
    ) -> None:
        """Register fine-tuning on NL/SQL ``pairs`` from ``domain``.

        ``epochs`` is accepted for interface fidelity with the paper's setup
        (GPT-3 was tuned for 4 epochs); only its positivity matters here.
        """
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        pair_list = list(pairs)
        record = self._tuned.get(domain)
        n_pairs = len(pair_list) + (record.n_pairs if record else 0)
        merged_lexicon = lexicon
        if record is not None and record.lexicon is not None and lexicon is not None:
            merged_lexicon = record.lexicon.merge(lexicon)
        elif record is not None and lexicon is None:
            merged_lexicon = record.lexicon
        self._tuned[domain] = FineTuneRecord(
            domain=domain, lexicon=merged_lexicon, n_pairs=n_pairs
        )

    def is_tuned_for(self, domain: str) -> bool:
        return domain in self._tuned

    # -- generation -------------------------------------------------------------

    def translate(
        self,
        sql: str,
        enhanced: EnhancedSchema,
        n_candidates: int = 8,
        domain: str | None = None,
    ) -> list[str]:
        """Generate ``n_candidates`` NL questions for ``sql``.

        ``domain`` selects which fine-tuning record (lexicon + discount) to
        apply; it defaults to the schema name.
        """
        if n_candidates <= 0:
            raise ValueError("n_candidates must be positive")
        domain = domain or enhanced.schema.name
        record = self._tuned.get(domain)

        style = self.profile.style
        lexicon = None
        error_rate_scale = 1.0
        if record is not None:
            lexicon = record.lexicon
            error_rate_scale = self.profile.finetune_error_discount
            if self.profile.adopts_canonical_style_on_finetune:
                style = CANONICAL_STYLE

        realizer = Realizer(enhanced, lexicon=lexicon, style=style)
        rng = self._rng_for(sql)
        try:
            z = sql_to_semql(parse(sql), enhanced.schema)
        except ReproError:
            # Outside the grammar: emit a degenerate but non-empty question,
            # like a real LM would babble something.
            return [f"show the results of the query over {enhanced.schema.name}"] * n_candidates

        # Complexity drives error: every structural element is a chance to
        # misread the query, and math expressions (the SDSS colour cuts) are
        # especially slippery — this is what makes SDSS the hardest domain to
        # verbalise (§4.1.2: 53% vs CORDIS's 82%).
        n_nodes = len(list(z.walk()))
        n_math = sum(isinstance(n, sq_nodes.MathExpr) for n in z.walk())
        complexity = max(n_nodes // 6, 0) + 2 * n_math
        error_rate = min(
            self.profile.max_error_rate,
            (self.profile.base_error_rate + self.profile.per_condition_error * complexity)
            * error_rate_scale,
        )

        # Two failure modes, as with real models:
        # * a *systematic* misreading of the query corrupts the base tree —
        #   every candidate inherits it, so the Phase-4 discriminator cannot
        #   vote it away (this is why silver-standard quality tops out around
        #   75–85% in Table 4 despite candidate selection);
        # * additional *per-candidate* slips, which the discriminator does
        #   filter because they are outliers among the candidates.
        base_tree = z
        if rng.random() < error_rate * 0.75:
            base_tree, _ = corrupt(base_tree, enhanced.schema, rng)

        candidates: list[str] = []
        for _ in range(n_candidates):
            tree = base_tree
            if rng.random() < error_rate * 0.5:
                tree, _ = corrupt(tree, enhanced.schema, rng)
            candidates.append(realizer.realize(tree, rng))
        return candidates

    def translate_best(
        self, sql: str, enhanced: EnhancedSchema, domain: str | None = None
    ) -> str:
        """Single-candidate convenience used by the Table-3 evaluation."""
        return self.translate(sql, enhanced, n_candidates=1, domain=domain)[0]

    # -- internals ---------------------------------------------------------------

    def _rng_for(self, sql: str) -> random.Random:
        digest = zlib.crc32(f"{self.profile.name}:{self.seed}:{sql}".encode("utf-8"))
        return random.Random(digest)
