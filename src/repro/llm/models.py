"""The four simulated LLM configurations evaluated in Table 3.

Profiles are calibrated so the *ranking* the paper reports reproduces:

* fine-tuned **GPT-3** adopts the canonical reference style → best SacreBLEU
  and embedding scores, low error rate;
* **GPT-3-zero** is semantically the most careful model (best human-expert
  rate in the paper: 0.765) but keeps its own verbose style → lower BLEU;
* **T5** sits in the middle;
* **GPT-2** has both an off-canonical style and the highest error rate →
  worst everywhere.
"""

from __future__ import annotations

from repro.llm.base import LLMProfile, SqlToNlModel
from repro.nlgen.realizer import StyleProfile

GPT2_PROFILE = LLMProfile(
    name="gpt2-large-ft",
    style=StyleProfile(name="gpt2", canonical_bias=0.25, offset=2),
    base_error_rate=0.30,
    per_condition_error=0.05,
    finetune_error_discount=0.95,
)

GPT3_ZERO_PROFILE = LLMProfile(
    name="gpt3-davinci-zero",
    style=StyleProfile(name="gpt3-zero", canonical_bias=0.35, offset=1),
    base_error_rate=0.16,
    per_condition_error=0.035,
    finetune_error_discount=1.0,  # zero-shot: fine-tuning is never applied
)

GPT3_PROFILE = LLMProfile(
    name="gpt3-davinci-ft",
    style=StyleProfile(name="gpt3", canonical_bias=0.45, offset=1),
    base_error_rate=0.19,
    per_condition_error=0.07,
    finetune_error_discount=0.80,
    adopts_canonical_style_on_finetune=True,
)

T5_PROFILE = LLMProfile(
    name="t5-base-ft",
    style=StyleProfile(name="t5", canonical_bias=0.30, offset=3),
    base_error_rate=0.27,
    per_condition_error=0.05,
    finetune_error_discount=0.90,
)

ALL_PROFILES = (GPT2_PROFILE, GPT3_ZERO_PROFILE, GPT3_PROFILE, T5_PROFILE)


def make_model(profile: LLMProfile, seed: int = 0) -> SqlToNlModel:
    """Instantiate one simulated model."""
    return SqlToNlModel(profile=profile, seed=seed)


def default_generator(seed: int = 0) -> SqlToNlModel:
    """The model the pipeline uses in production: fine-tuned GPT-3."""
    return make_model(GPT3_PROFILE, seed=seed)
