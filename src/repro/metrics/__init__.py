"""Evaluation metrics: BLEU, embedding similarity, execution accuracy,
component exact-match and the semantic-equivalence judge."""

from repro.metrics.bleu import BleuScore, corpus_bleu, sentence_bleu
from repro.metrics.embedding_score import embedding_score, pairwise_similarity
from repro.metrics.equivalence import Anchor, EquivalenceJudge, Verdict
from repro.metrics.exact_match import exact_match, query_signature
from repro.metrics.execution import (
    ExecutionAccuracy,
    execution_match,
    results_match,
)
from repro.metrics.triage import (
    TRIAGE_CATEGORIES,
    format_triage,
    merge_triage,
    triage_prediction,
)

__all__ = [
    "BleuScore",
    "corpus_bleu",
    "sentence_bleu",
    "embedding_score",
    "pairwise_similarity",
    "EquivalenceJudge",
    "Verdict",
    "Anchor",
    "exact_match",
    "query_signature",
    "ExecutionAccuracy",
    "execution_match",
    "results_match",
    "TRIAGE_CATEGORIES",
    "format_triage",
    "merge_triage",
    "triage_prediction",
]
