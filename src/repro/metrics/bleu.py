"""Corpus-level BLEU in the SacreBLEU configuration.

The paper reports SacreBLEU for the SQL-to-NL models (Table 3).  We
re-implement the metric's default configuration: 4-gram precisions with
exponential smoothing of zero counts, brevity penalty, and a 13a-style
tokenizer (punctuation split from words).  Scores are on the usual 0–100
scale.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

_MAX_ORDER = 4

_PUNCT_RE = re.compile(r"([^\w\s])")
_SPACE_RE = re.compile(r"\s+")


def tokenize_13a(text: str) -> list[str]:
    """A compact approximation of SacreBLEU's default ``13a`` tokenizer."""
    text = _PUNCT_RE.sub(r" \1 ", text)
    text = _SPACE_RE.sub(" ", text).strip()
    return text.split(" ") if text else []


@dataclass(frozen=True)
class BleuScore:
    """BLEU score with its component statistics."""

    score: float
    precisions: tuple[float, ...]
    brevity_penalty: float
    hypothesis_length: int
    reference_length: int


def corpus_bleu(
    hypotheses: Sequence[str],
    references: Sequence[Sequence[str]],
    max_order: int = _MAX_ORDER,
    smooth: bool = True,
) -> BleuScore:
    """Corpus BLEU over parallel hypothesis/reference-set lists.

    ``references[i]`` is the list of acceptable references for
    ``hypotheses[i]`` (Spider-style data can have several NL questions per
    SQL query).
    """
    if len(hypotheses) != len(references):
        raise ValueError("hypotheses and references must be parallel")
    if not hypotheses:
        return BleuScore(0.0, tuple([0.0] * max_order), 0.0, 0, 0)

    matches = [0] * max_order
    totals = [0] * max_order
    hyp_length = 0
    ref_length = 0

    for hypothesis, refs in zip(hypotheses, references):
        hyp_tokens = tokenize_13a(hypothesis)
        ref_token_lists = [tokenize_13a(r) for r in refs]
        hyp_length += len(hyp_tokens)
        ref_length += _closest_length(len(hyp_tokens), ref_token_lists)
        for order in range(1, max_order + 1):
            hyp_ngrams = _ngrams(hyp_tokens, order)
            totals[order - 1] += max(len(hyp_tokens) - order + 1, 0)
            if not hyp_ngrams:
                continue
            best_match: Counter = Counter()
            for ref_tokens in ref_token_lists:
                ref_ngrams = _ngrams(ref_tokens, order)
                for ngram, count in hyp_ngrams.items():
                    clipped = min(count, ref_ngrams.get(ngram, 0))
                    if clipped > best_match.get(ngram, 0):
                        best_match[ngram] = clipped
            matches[order - 1] += sum(best_match.values())

    precisions = []
    effective: list[float] = []
    smooth_value = 1.0
    for order in range(max_order):
        if totals[order] == 0:
            # The corpus has no n-grams of this order at all (hypotheses
            # shorter than n): exclude the order from the geometric mean,
            # as SacreBLEU's effective-order handling does.
            precisions.append(0.0)
            continue
        if matches[order] == 0:
            if smooth:
                # SacreBLEU's "exp" smoothing: successive zero counts are
                # replaced by exponentially shrinking pseudo-precisions.
                smooth_value *= 2.0
                precision = 100.0 / (smooth_value * totals[order])
            else:
                precision = 0.0
        else:
            precision = 100.0 * matches[order] / totals[order]
        precisions.append(precision)
        effective.append(precision)

    if effective and min(effective) > 0.0:
        log_mean = sum(math.log(p) for p in effective) / len(effective)
        geo_mean = math.exp(log_mean)
    else:
        geo_mean = 0.0

    if hyp_length == 0:
        brevity_penalty = 0.0
    elif hyp_length >= ref_length:
        brevity_penalty = 1.0
    else:
        brevity_penalty = math.exp(1.0 - ref_length / hyp_length)

    return BleuScore(
        score=geo_mean * brevity_penalty,
        precisions=tuple(precisions),
        brevity_penalty=brevity_penalty,
        hypothesis_length=hyp_length,
        reference_length=ref_length,
    )


def sentence_bleu(hypothesis: str, references: Sequence[str]) -> float:
    """Single-sentence BLEU (smoothed), on the 0–100 scale."""
    return corpus_bleu([hypothesis], [list(references)]).score


def _ngrams(tokens: list[str], order: int) -> Counter:
    return Counter(
        tuple(tokens[i : i + order]) for i in range(len(tokens) - order + 1)
    )


def _closest_length(hyp_len: int, ref_token_lists: list[list[str]]) -> int:
    lengths = [len(r) for r in ref_token_lists] or [0]
    return min(lengths, key=lambda l: (abs(l - hyp_len), l))
