"""Embedding-similarity score (the paper's "SentenceBERT" metric).

For each (hypothesis, reference) pair the score is the cosine similarity of
the two sentence embeddings; the corpus score is the mean.  With multiple
references the best-matching reference counts, mirroring how the paper's
multi-reference Spider data is scored.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.embeddings import SentenceEmbedder, cosine_similarity


def embedding_score(
    hypotheses: Sequence[str],
    references: Sequence[Sequence[str]],
    embedder: SentenceEmbedder | None = None,
) -> float:
    """Mean best-reference cosine similarity over the corpus (0..1)."""
    if len(hypotheses) != len(references):
        raise ValueError("hypotheses and references must be parallel")
    if not hypotheses:
        return 0.0
    if embedder is None:
        embedder = SentenceEmbedder()
    total = 0.0
    for hypothesis, refs in zip(hypotheses, references):
        hyp_vec = embedder.embed(hypothesis)
        best = 0.0
        for ref in refs:
            best = max(best, cosine_similarity(hyp_vec, embedder.embed(ref)))
        total += best
    return total / len(hypotheses)


def pairwise_similarity(a: str, b: str, embedder: SentenceEmbedder | None = None) -> float:
    """Cosine similarity of two sentences' embeddings."""
    if embedder is None:
        embedder = SentenceEmbedder()
    return cosine_similarity(embedder.embed(a), embedder.embed(b))
