"""Automatic semantic-equivalence judgement of NL/SQL pairs.

The paper uses human SQL experts to decide whether a generated natural
language question means the same thing as its SQL query (Table 3's "Human
Expert" row, Table 4's silver-standard evaluation, §4.1.2's per-domain
rates).  We replay that judgement mechanically: the judge derives a set of
*content anchors* from the SQL query — which values, columns, aggregation
words and comparison directions a faithful question must mention — using the
same :class:`~repro.nlgen.lexicon.PhraseBook` the realizer draws from, and
verifies the question against them.

The judge is deliberately strict in the same direction as the paper's
experts: questions for more complex queries carry more anchors and therefore
fail more often, which is why SDSS (whose dev queries are the hardest) scores
lowest in §4.1.2 — both in the paper and here.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.nlgen.lexicon import DomainLexicon, PhraseBook, render_value
from repro.schema.enhanced import EnhancedSchema
from repro.semql import nodes as sq
from repro.semql.from_sql import sql_to_semql
from repro.sql import parse

_GT_WORDS = ("greater", "more than", "above", "larger", "higher", "over", "exceed")
_LT_WORDS = ("less", "smaller", "below", "lower", "under", "fewer")
_AGG_WORDS = {
    "max": ("maximum", "highest", "largest", "top", "most"),
    "min": ("minimum", "lowest", "smallest", "least"),
    "avg": ("average", "mean"),
    "sum": ("total", "sum"),
    "count": ("number of", "count", "how many"),
}
_ORDER_DESC = ("descending", "highest", "largest", "top", "decreasing")
_ORDER_ASC = ("ascending", "lowest", "smallest", "increasing")
_GROUP_WORDS = ("for each", "per ", "for every", "grouped by", "by each")


@dataclass(frozen=True)
class Anchor:
    """One piece of content the question must express."""

    kind: str
    description: str
    variants: tuple[str, ...]


@dataclass
class Verdict:
    """The judge's decision for one NL/SQL pair."""

    equivalent: bool
    anchors: list[Anchor] = field(default_factory=list)
    missing: list[Anchor] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        if not self.anchors:
            return 1.0
        return 1.0 - len(self.missing) / len(self.anchors)


class EquivalenceJudge:
    """Judges NL questions against SQL queries over one database schema."""

    def __init__(
        self, enhanced: EnhancedSchema, lexicon: DomainLexicon | None = None
    ) -> None:
        self.enhanced = enhanced
        self.phrases = PhraseBook(enhanced=enhanced, lexicon=lexicon)

    def judge(self, question: str, sql: str) -> Verdict:
        """Return the verdict for one pair; parse errors yield non-equivalent."""
        try:
            z = sql_to_semql(parse(sql), self.enhanced.schema)
        except ReproError:
            return Verdict(equivalent=False)
        anchors = self.anchors(z)
        normalized = _normalize(question)
        missing = [a for a in anchors if not _matches(a, normalized)]
        return Verdict(equivalent=not missing, anchors=anchors, missing=missing)

    def judge_rate(self, pairs: list[tuple[str, str]]) -> float:
        """Fraction of (question, sql) pairs judged semantically equivalent."""
        if not pairs:
            return 0.0
        verdicts = [self.judge(q, s) for q, s in pairs]
        return sum(v.equivalent for v in verdicts) / len(pairs)

    # -- anchor derivation -------------------------------------------------------

    def anchors(self, z: sq.Z) -> list[Anchor]:
        anchors: list[Anchor] = []
        for r in (z.left, z.right):
            if r is None:
                continue
            self._select_anchors(r.select, anchors)
            if r.filter is not None:
                self._filter_anchors(r.filter, anchors)
            if r.order is not None:
                self._order_anchors(r.order, anchors)
        return anchors

    def _select_anchors(self, select: sq.SemSelect, anchors: list[Anchor]) -> None:
        for attribute in select.attributes:
            self._attribute_anchors(attribute, anchors, projected=True)
        group = select.group
        if group is None:
            aggregated = any(a.is_aggregated for a in select.attributes)
            plain = any(not a.is_aggregated for a in select.attributes)
            group = tuple() if not (aggregated and plain) else tuple(
                a.column for a in select.attributes if not a.is_aggregated
            )
        if group:
            anchors.append(
                Anchor(kind="group", description="grouping", variants=_GROUP_WORDS)
            )

    def _attribute_anchors(
        self, attribute: sq.A, anchors: list[Anchor], projected: bool
    ) -> None:
        if attribute.agg != "none":
            anchors.append(
                Anchor(
                    kind="aggregate",
                    description=f"aggregate {attribute.agg}",
                    variants=_AGG_WORDS[attribute.agg],
                )
            )
        if projected and isinstance(attribute.column, sq.ColumnLeaf):
            anchors.append(self._column_anchor(attribute.column))
        if isinstance(attribute.column, sq.MathExpr):
            anchors.append(self._column_anchor(attribute.column.left))
            anchors.append(self._column_anchor(attribute.column.right))

    def _column_anchor(self, column: sq.ColumnLeaf) -> Anchor:
        table = column.table.name if isinstance(column.table, sq.TableLeaf) else ""
        variants = tuple(
            _normalize(p) for p in self.phrases.column_phrases(table, column.name)
        )
        return Anchor(
            kind="column", description=f"column {table}.{column.name}", variants=variants
        )

    def _filter_anchors(self, node, anchors: list[Anchor]) -> None:
        if isinstance(node, sq.FilterNode):
            self._filter_anchors(node.left, anchors)
            self._filter_anchors(node.right, anchors)
            return
        condition: sq.Condition = node
        attribute = condition.attribute
        self._attribute_anchors(attribute, anchors, projected=False)

        if condition.subquery is not None:
            # The subquery's own select/filter anchors apply.
            self._select_anchors(condition.subquery.select, anchors)
            if condition.subquery.filter is not None:
                self._filter_anchors(condition.subquery.filter, anchors)
        elif condition.value is not None:
            anchors.append(self._value_anchor(attribute, condition.value))
            if condition.op == "between" and condition.value2 is not None:
                anchors.append(self._value_anchor(attribute, condition.value2))

        if condition.op in (">", ">="):
            anchors.append(
                Anchor(kind="direction", description="greater-than", variants=_GT_WORDS + ("at least",))
            )
        elif condition.op in ("<", "<="):
            anchors.append(
                Anchor(kind="direction", description="less-than", variants=_LT_WORDS + ("at most", "between"))
            )

    def _value_anchor(self, attribute: sq.A, value) -> Anchor:
        raw = value.value if isinstance(value, sq.ValueLeaf) else value
        variants = [_normalize(render_value(raw))]
        if isinstance(attribute.column, sq.ColumnLeaf):
            column = attribute.column
            table = column.table.name if isinstance(column.table, sq.TableLeaf) else ""
            variants.extend(
                _normalize(p)
                for p in self.phrases.value_phrases(table, column.name, raw)
            )
        if isinstance(raw, str) and "%" in raw:
            variants.append(_normalize(raw.replace("%", " ")))
        return Anchor(
            kind="value", description=f"value {raw!r}", variants=tuple(dict.fromkeys(variants))
        )

    def _order_anchors(self, order: sq.Order, anchors: list[Anchor]) -> None:
        variants = _ORDER_DESC if order.direction == "desc" else _ORDER_ASC
        anchors.append(
            Anchor(kind="order", description=f"order {order.direction}", variants=variants)
        )
        if isinstance(order.attribute.column, sq.ColumnLeaf):
            anchors.append(self._column_anchor(order.attribute.column))
        if order.limit is not None and order.limit > 1:
            anchors.append(
                Anchor(
                    kind="limit",
                    description=f"limit {order.limit}",
                    variants=(str(order.limit),),
                )
            )


_NORM_RE = re.compile(r"[^a-z0-9.]+")


def _normalize(text: str) -> str:
    collapsed = _NORM_RE.sub(" ", text.lower()).strip()
    # Dots are kept only when interior to a token ("2.22"); leading/trailing
    # sentence punctuation must not block exact value matches.
    tokens = [token.strip(".") for token in collapsed.split(" ") if token.strip(".")]
    return f" {' '.join(tokens)} "


def _matches(anchor: Anchor, normalized_question: str) -> bool:
    for variant in anchor.variants:
        needle = variant if variant.startswith(" ") else _normalize(variant)
        if needle.strip() and needle in normalized_question:
            return True
    return False
