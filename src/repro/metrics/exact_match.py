"""Spider-style component exact-match.

A secondary metric (Spider's "Exact Set Match"): the predicted query's
clauses are compared to the gold query's component-by-component as *sets*,
with literal values ignored — so two queries that differ only in constants
or in clause ordering still match.  Used in ablations and tests; the paper's
headline numbers use execution accuracy (:mod:`repro.metrics.execution`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.sql import ast, parse
from repro.sql.printer import to_sql


@dataclass(frozen=True)
class QuerySignature:
    """Canonical, value-free fingerprint of one query."""

    select: frozenset
    tables: frozenset
    where: frozenset
    group_by: frozenset
    having: frozenset
    order_by: tuple
    limit: bool
    distinct: bool
    set_op: str | None


def query_signature(query: ast.Query | str) -> QuerySignature:
    if isinstance(query, str):
        query = parse(query)
    select = query.select
    alias_map = _alias_map(select)

    return QuerySignature(
        select=frozenset(_item_sig(i.expr, alias_map) for i in select.items),
        tables=frozenset(r.name.lower() for r in select.table_refs()),
        where=frozenset(_condition_sigs(select.where, alias_map)),
        group_by=frozenset(_expr_sig(e, alias_map) for e in select.group_by),
        having=frozenset(_condition_sigs(select.having, alias_map)),
        order_by=tuple(
            (_expr_sig(o.expr, alias_map), o.desc) for o in select.order_by
        ),
        limit=select.limit is not None,
        distinct=select.distinct,
        set_op=query.set_op,
    )


def exact_match(
    gold: ast.Query | str,
    predicted: ast.Query | str,
    diagnostics: dict[str, int] | None = None,
) -> bool:
    """True iff the two queries have identical component signatures.

    An unparseable or structurally malformed *predicted* query counts as a
    mismatch rather than an error.  Only parser/signature failure modes are
    swallowed (never ``KeyboardInterrupt``/``SystemExit``); the swallowed
    class is recorded in ``diagnostics`` (name -> count) when given.
    """
    try:
        return query_signature(gold) == query_signature(predicted)
    except (ReproError, AttributeError, TypeError) as exc:
        if diagnostics is not None:
            name = type(exc).__name__
            diagnostics[name] = diagnostics.get(name, 0) + 1
        return False


def _alias_map(select: ast.Select) -> dict[str, str]:
    mapping = {}
    for ref in select.table_refs():
        mapping[ref.binding.lower()] = ref.name.lower()
    return mapping


def _resolve(table: str | None, alias_map: dict[str, str]) -> str:
    if table is None:
        return "?"
    return alias_map.get(table.lower(), table.lower())


def _expr_sig(expr: ast.Expr, alias_map: dict[str, str]) -> str:
    if isinstance(expr, ast.ColumnRef):
        return f"{_resolve(expr.table, alias_map)}.{expr.column.lower()}"
    if isinstance(expr, ast.Star):
        return "*"
    if isinstance(expr, ast.FuncCall):
        inner = ",".join(_expr_sig(a, alias_map) for a in expr.args)
        distinct = "distinct " if expr.distinct else ""
        return f"{expr.name.lower()}({distinct}{inner})"
    if isinstance(expr, ast.BinaryOp):
        return (
            f"({_expr_sig(expr.left, alias_map)}{expr.op}"
            f"{_expr_sig(expr.right, alias_map)})"
        )
    if isinstance(expr, ast.Literal):
        return "<v>"
    if isinstance(expr, ast.UnaryMinus):
        return f"-{_expr_sig(expr.operand, alias_map)}"
    return to_sql(expr)


def _item_sig(expr: ast.Expr, alias_map: dict[str, str]) -> str:
    return _expr_sig(expr, alias_map)


def _condition_sigs(expr: ast.Expr | None, alias_map: dict[str, str]):
    """Leaf predicate signatures (values blanked, subqueries fingerprinted)."""
    if expr is None:
        return
    if isinstance(expr, ast.BoolOp):
        for operand in expr.operands:
            yield from _condition_sigs(operand, alias_map)
        return
    if isinstance(expr, ast.Not):
        for sig in _condition_sigs(expr.operand, alias_map):
            yield f"not({sig})"
        return
    if isinstance(expr, ast.Comparison):
        right = (
            f"sub:{_subquery_sig(expr.right.query)}"
            if isinstance(expr.right, ast.ScalarSubquery)
            else "<v>"
        )
        # Join conditions (column = column) are excluded from the WHERE
        # signature: SemQL-lowered queries put them in ON clauses instead.
        if isinstance(expr.right, ast.ColumnRef) and expr.op == "=":
            return
        yield f"{_expr_sig(expr.left, alias_map)} {expr.op} {right}"
        return
    if isinstance(expr, ast.Between):
        yield f"{_expr_sig(expr.expr, alias_map)} between"
        return
    if isinstance(expr, ast.InList):
        word = "not_in" if expr.negated else "in"
        yield f"{_expr_sig(expr.expr, alias_map)} {word} <list>"
        return
    if isinstance(expr, ast.InSubquery):
        word = "not_in" if expr.negated else "in"
        yield f"{_expr_sig(expr.expr, alias_map)} {word} sub:{_subquery_sig(expr.query)}"
        return
    if isinstance(expr, ast.IsNull):
        word = "is_not_null" if expr.negated else "is_null"
        yield f"{_expr_sig(expr.expr, alias_map)} {word}"
        return
    if isinstance(expr, ast.Exists):
        word = "not_exists" if expr.negated else "exists"
        yield f"{word} sub:{_subquery_sig(expr.query)}"
        return
    yield to_sql(expr)


def _subquery_sig(query: ast.Query) -> str:
    sig = query_signature(query)
    return (
        f"[{sorted(sig.select)}|{sorted(sig.tables)}|{sorted(sig.where)}"
        f"|{sorted(sig.group_by)}|{sig.order_by}|{sig.limit}]"
    )
