"""Execution accuracy — the paper's evaluation metric for NL-to-SQL systems.

A predicted query is counted correct when its result set matches the gold
query's result set on the benchmark database.  Matching is order-insensitive
(multiset equality over canonicalised rows) unless the *gold* query carries
an ORDER BY, in which case row order must match too — the convention of
Spider's execution evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.database import Database
from repro.engine.executor import Result, _canonical
from repro.errors import ReproError
from repro.sql import ast, parse


def results_match(gold: Result, predicted: Result, ordered: bool) -> bool:
    """Compare two results (column labels are ignored, as in Spider)."""
    if len(gold.rows) != len(predicted.rows):
        return False
    if gold.rows and len(gold.rows[0]) != len(predicted.rows[0]):
        return False
    if ordered:
        for g_row, p_row in zip(gold.rows, predicted.rows):
            if tuple(map(_canonical, g_row)) != tuple(map(_canonical, p_row)):
                return False
        return True
    return gold.to_multiset() == predicted.to_multiset()


def execution_match(
    database: Database,
    gold_sql: str,
    predicted_sql: str | None,
    diagnostics: dict[str, int] | None = None,
) -> bool:
    """True iff ``predicted_sql`` executes and matches ``gold_sql``'s result.

    ``diagnostics`` (error class name -> count) records gold-side parse
    errors the ORDER BY check would otherwise swallow silently.
    """
    if predicted_sql is None:
        return False
    gold_result = database.try_execute(gold_sql)
    if gold_result is None:
        raise ValueError(f"gold query failed to execute: {gold_sql!r}")
    predicted_result = database.try_execute(predicted_sql)
    if predicted_result is None:
        return False
    ordered = _is_ordered(gold_sql, diagnostics)
    return results_match(gold_result, predicted_result, ordered)


@dataclass
class ExecutionAccuracy:
    """Accumulator producing the accuracy numbers of Table 5.

    Besides the headline accuracy, each failed prediction is triaged by the
    static analyzer (:mod:`repro.metrics.triage`) into a failure category;
    the per-category counts land in ``triage``.
    """

    total: int = 0
    correct: int = 0
    failures: list[tuple[str, str | None]] = field(default_factory=list)
    triage: dict[str, int] = field(default_factory=dict)
    #: Error class name -> count for gold-side parse errors swallowed by
    #: the ORDER BY check (diagnostics, not part of the accuracy).
    parse_errors: dict[str, int] = field(default_factory=dict)

    def add(
        self,
        database: Database,
        gold_sql: str,
        predicted_sql: str | None,
        enhanced=None,
    ) -> bool:
        matched = execution_match(
            database, gold_sql, predicted_sql, diagnostics=self.parse_errors
        )
        self.total += 1
        if matched:
            self.correct += 1
        else:
            self.failures.append((gold_sql, predicted_sql))
            # Imported here: triage pulls in repro.analysis, which this
            # low-level module must not require at import time.
            from repro.metrics.triage import triage_prediction

            category = triage_prediction(database, gold_sql, predicted_sql, enhanced)
            self.triage[category] = self.triage.get(category, 0) + 1
        return matched

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            return 0.0
        return self.correct / self.total


def _is_ordered(sql: str, diagnostics: dict[str, int] | None = None) -> bool:
    try:
        query = parse(sql)
    except ReproError as exc:
        # Only the parser's own failure modes are downgraded to "unordered";
        # anything else (including KeyboardInterrupt) propagates.
        if diagnostics is not None:
            name = type(exc).__name__
            diagnostics[name] = diagnostics.get(name, 0) + 1
        return False
    return _query_is_ordered(query)


def _query_is_ordered(query: ast.Query) -> bool:
    if query.set_op is not None:
        return False  # set ops discard order
    return bool(query.select.order_by)
