"""Failure triage for NL-to-SQL predictions.

When a predicted query does not match the gold result, the static analyzer
can usually say *why* without manual inspection: the prediction referenced a
hallucinated column, compared incompatible types, missed a join edge, and so
on.  :func:`triage_prediction` maps each failed prediction to exactly one
category (the first that applies, most specific first), giving the Table-5
experiment an automatic error breakdown per system.
"""

from __future__ import annotations

from repro.engine.database import Database
from repro.schema.enhanced import EnhancedSchema
from repro.analysis import Severity, analyze

#: Triage buckets in priority order — a failure lands in the first that fits.
TRIAGE_CATEGORIES = (
    "missing",  # the system produced no query at all
    "syntax",  # the prediction does not parse
    "schema",  # name resolution failed (hallucinated table/column/alias)
    "type",  # operand types cannot work (type.* errors)
    "aggregate",  # illegal aggregate placement (agg.* errors)
    "runtime",  # parses and lints clean of errors, but execution fails
    "join",  # executes, wrong rows, and the analyzer flags join structure
    "empty",  # executes but returns no rows while gold has some
    "wrong-rows",  # executes, rows present, result simply differs
)

_RULE_PREFIX_TO_CATEGORY = (
    ("syntax.", "syntax"),
    ("name.", "schema"),
    ("type.", "type"),
    ("agg.", "aggregate"),
)


def triage_prediction(
    database: Database,
    gold_sql: str,
    predicted_sql: str | None,
    enhanced: EnhancedSchema | None = None,
) -> str:
    """Classify one *failed* prediction into a :data:`TRIAGE_CATEGORIES` bucket."""
    if predicted_sql is None or not predicted_sql.strip():
        return "missing"

    diagnostics = analyze(predicted_sql, database.schema, enhanced)
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    for prefix, category in _RULE_PREFIX_TO_CATEGORY:
        if any(d.rule.startswith(prefix) for d in errors):
            return category

    result = database.try_execute(predicted_sql)
    if result is None:
        return "runtime"
    if any(d.rule.startswith("join.") for d in diagnostics):
        return "join"
    if not result.rows:
        gold_result = database.try_execute(gold_sql)
        if gold_result is not None and gold_result.rows:
            return "empty"
    return "wrong-rows"


def merge_triage(into: dict[str, int], counts: dict[str, int]) -> dict[str, int]:
    """Accumulate triage counts (used when pooling domains)."""
    for category, n in counts.items():
        into[category] = into.get(category, 0) + n
    return into


def format_triage(counts: dict[str, int]) -> str:
    """Compact ``category:count`` rendering in priority order, e.g.
    ``schema:3 empty:1`` — the Table-5 failure-triage column."""
    parts = [
        f"{category}:{counts[category]}"
        for category in TRIAGE_CATEGORIES
        if counts.get(category)
    ]
    return " ".join(parts) if parts else "-"
