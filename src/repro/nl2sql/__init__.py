"""Trainable NL-to-SQL systems: ValueNet, T5 (w/o Picard) and SmBoP."""

from repro.nl2sql.base import DomainContext, NLToSQLSystem
from repro.nl2sql.features import extract_limit, extract_numbers, question_features
from repro.nl2sql.lexicon import LearnedLexicon, content_ngrams
from repro.nl2sql.linking import Links, SchemaLinker, ValueLink
from repro.nl2sql.smbop import SmBoP
from repro.nl2sql.t5 import T5Seq2Seq
from repro.nl2sql.templates_store import TemplateStore
from repro.nl2sql.valuenet import ValueNet

ALL_SYSTEMS = (ValueNet, T5Seq2Seq, SmBoP)

__all__ = [
    "NLToSQLSystem",
    "DomainContext",
    "ValueNet",
    "T5Seq2Seq",
    "SmBoP",
    "ALL_SYSTEMS",
    "SchemaLinker",
    "Links",
    "ValueLink",
    "LearnedLexicon",
    "TemplateStore",
    "question_features",
    "extract_numbers",
    "extract_limit",
    "content_ngrams",
]
