"""Common infrastructure of the trainable NL-to-SQL systems.

A system is trained on NL/SQL pairs spanning any number of databases (the
Table 5 regimes mix MiniSpider with domain seed/synth splits) and is asked
to predict SQL for questions over a *registered* database, which supplies
schema, content index and enhanced metadata — mirroring how the paper's
systems receive the target database and its NL column labels at inference.

Training populates two stores per system:

* a per-database :class:`~repro.nl2sql.lexicon.LearnedLexicon` — domain
  phrasing only helps on the domain it was learned from;
* a global :class:`~repro.nl2sql.templates_store.TemplateStore` — query
  *structure* transfers across databases, which is why Spider-trained
  systems produce plausible-but-wrong SQL on scientific domains rather than
  nothing at all.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from dataclasses import dataclass

from repro.datasets.records import NLSQLPair
from repro.engine.database import Database
from repro.errors import TrainingError
from repro.nl2sql.lexicon import LearnedLexicon
from repro.nl2sql.linking import Links, SchemaLinker
from repro.nl2sql.templates_store import TemplateStore
from repro.schema.enhanced import EnhancedSchema


@dataclass
class DomainContext:
    """Everything a system may consult about one registered database."""

    db_id: str
    database: Database
    enhanced: EnhancedSchema


class NLToSQLSystem(abc.ABC):
    """Base class: registration, training bookkeeping, linking."""

    name: str = "abstract"

    #: Bound of the per-system schema-linking memo (see :meth:`link`).
    LINK_CACHE_SIZE = 512

    def __init__(self) -> None:
        self._contexts: dict[str, DomainContext] = {}
        self._linkers: dict[str, SchemaLinker] = {}
        self._lexicons: dict[str, LearnedLexicon] = {}
        self.templates = TemplateStore()
        self._trained = False
        self._link_cache: OrderedDict[tuple[str, str], Links] = OrderedDict()

    # -- registration -------------------------------------------------------------

    def register_database(
        self, db_id: str, database: Database, enhanced: EnhancedSchema
    ) -> None:
        """Make a database available for training and prediction."""
        context = DomainContext(db_id=db_id, database=database, enhanced=enhanced)
        self._contexts[db_id] = context
        self._linkers[db_id] = SchemaLinker(database, enhanced)
        self._lexicons.setdefault(db_id, LearnedLexicon(db_id=db_id))
        self._link_cache.clear()

    def context(self, db_id: str) -> DomainContext:
        try:
            return self._contexts[db_id]
        except KeyError:
            raise TrainingError(f"database {db_id!r} was never registered") from None

    # -- training -------------------------------------------------------------------

    def train(self, pairs: list[NLSQLPair]) -> None:
        """Train on NL/SQL pairs (all referenced databases must be registered)."""
        if not pairs:
            raise TrainingError("no training pairs supplied")
        for pair in pairs:
            context = self.context(pair.db_id)
            lexicon = self._lexicons[pair.db_id]
            lexicon.observe(pair.question, pair.sql, context.database.schema)
            self.templates.observe(pair.question, pair.sql, context.database.schema)
            self._observe(pair, context)
        self._trained = True
        # Training updates the lexicons, which feed linking.
        self._link_cache.clear()

    def _observe(self, pair: NLSQLPair, context: DomainContext) -> None:
        """Hook for system-specific training statistics."""

    # -- prediction -------------------------------------------------------------------

    def link(self, question: str, db_id: str) -> Links:
        """Schema-link a question (memoized).

        Linking is deterministic in (question, database, lexicon) and no
        consumer mutates the returned :class:`Links`, so results are shared
        through a bounded LRU — a micro-batch warms the memo once and every
        decode inside the batch reuses it.  Training and registration clear
        the memo because both change what linking would return.
        """
        key = (db_id, question)
        cached = self._link_cache.get(key)
        if cached is not None:
            self._link_cache.move_to_end(key)
            return cached
        lexicon = self._lexicons.get(db_id)
        links = self._linkers[db_id].link(question, learned=lexicon)
        self._link_cache[key] = links
        if len(self._link_cache) > self.LINK_CACHE_SIZE:
            self._link_cache.popitem(last=False)
        return links

    def predict(self, question: str, db_id: str) -> str | None:
        """Predict SQL for a question over a registered database."""
        if not self._trained:
            raise TrainingError(f"{self.name} must be trained before predicting")
        return self._predict(question, self.context(db_id))

    @abc.abstractmethod
    def _predict(self, question: str, context: DomainContext) -> str | None:
        """System-specific decoding."""

    def predict_batch(self, questions: list[str], db_id: str) -> list[str | None]:
        """Predict SQL for a batch of questions over one database.

        Byte-identical to calling :meth:`predict` per question — decoding is
        deterministic and pure, which is what lets the serving layer batch
        freely.  Exact duplicate questions decode once; schema linking is
        shared through the link memo.
        """
        if not self._trained:
            raise TrainingError(f"{self.name} must be trained before predicting")
        context = self.context(db_id)
        decoded: dict[str, str | None] = {}
        results: list[str | None] = []
        for question in questions:
            if question not in decoded:
                decoded[question] = self._predict(question, context)
            results.append(decoded[question])
        return results

    def predict_all(self, pairs: list[NLSQLPair]) -> list[str | None]:
        """Predictions for mixed-database pairs, batched per database.

        Offline evaluation (Table 5) and serving share this one inference
        path; outputs are identical to per-pair :meth:`predict` calls.
        """
        results: list[str | None] = [None] * len(pairs)
        by_db: dict[str, list[int]] = {}
        for index, pair in enumerate(pairs):
            by_db.setdefault(pair.db_id, []).append(index)
        for db_id, indices in by_db.items():
            batch = self.predict_batch([pairs[i].question for i in indices], db_id)
            for index, sql in zip(indices, batch):
                results[index] = sql
        return results
