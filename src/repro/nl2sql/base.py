"""Common infrastructure of the trainable NL-to-SQL systems.

A system is trained on NL/SQL pairs spanning any number of databases (the
Table 5 regimes mix MiniSpider with domain seed/synth splits) and is asked
to predict SQL for questions over a *registered* database, which supplies
schema, content index and enhanced metadata — mirroring how the paper's
systems receive the target database and its NL column labels at inference.

Training populates two stores per system:

* a per-database :class:`~repro.nl2sql.lexicon.LearnedLexicon` — domain
  phrasing only helps on the domain it was learned from;
* a global :class:`~repro.nl2sql.templates_store.TemplateStore` — query
  *structure* transfers across databases, which is why Spider-trained
  systems produce plausible-but-wrong SQL on scientific domains rather than
  nothing at all.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.datasets.records import NLSQLPair
from repro.engine.database import Database
from repro.errors import TrainingError
from repro.nl2sql.lexicon import LearnedLexicon
from repro.nl2sql.linking import Links, SchemaLinker
from repro.nl2sql.templates_store import TemplateStore
from repro.schema.enhanced import EnhancedSchema


@dataclass
class DomainContext:
    """Everything a system may consult about one registered database."""

    db_id: str
    database: Database
    enhanced: EnhancedSchema


class NLToSQLSystem(abc.ABC):
    """Base class: registration, training bookkeeping, linking."""

    name: str = "abstract"

    def __init__(self) -> None:
        self._contexts: dict[str, DomainContext] = {}
        self._linkers: dict[str, SchemaLinker] = {}
        self._lexicons: dict[str, LearnedLexicon] = {}
        self.templates = TemplateStore()
        self._trained = False

    # -- registration -------------------------------------------------------------

    def register_database(
        self, db_id: str, database: Database, enhanced: EnhancedSchema
    ) -> None:
        """Make a database available for training and prediction."""
        context = DomainContext(db_id=db_id, database=database, enhanced=enhanced)
        self._contexts[db_id] = context
        self._linkers[db_id] = SchemaLinker(database, enhanced)
        self._lexicons.setdefault(db_id, LearnedLexicon(db_id=db_id))

    def context(self, db_id: str) -> DomainContext:
        try:
            return self._contexts[db_id]
        except KeyError:
            raise TrainingError(f"database {db_id!r} was never registered") from None

    # -- training -------------------------------------------------------------------

    def train(self, pairs: list[NLSQLPair]) -> None:
        """Train on NL/SQL pairs (all referenced databases must be registered)."""
        if not pairs:
            raise TrainingError("no training pairs supplied")
        for pair in pairs:
            context = self.context(pair.db_id)
            lexicon = self._lexicons[pair.db_id]
            lexicon.observe(pair.question, pair.sql, context.database.schema)
            self.templates.observe(pair.question, pair.sql, context.database.schema)
            self._observe(pair, context)
        self._trained = True

    def _observe(self, pair: NLSQLPair, context: DomainContext) -> None:
        """Hook for system-specific training statistics."""

    # -- prediction -------------------------------------------------------------------

    def link(self, question: str, db_id: str) -> Links:
        lexicon = self._lexicons.get(db_id)
        return self._linkers[db_id].link(question, learned=lexicon)

    def predict(self, question: str, db_id: str) -> str | None:
        """Predict SQL for a question over a registered database."""
        if not self._trained:
            raise TrainingError(f"{self.name} must be trained before predicting")
        return self._predict(question, self.context(db_id))

    @abc.abstractmethod
    def _predict(self, question: str, context: DomainContext) -> str | None:
        """System-specific decoding."""

    def predict_all(self, pairs: list[NLSQLPair]) -> list[str | None]:
        return [self.predict(p.question, p.db_id) for p in pairs]
