"""Question feature extraction shared by the NL-to-SQL systems.

A fixed, interpretable feature vector summarises the *structural intent* of
a question: does it ask for a count, an average, a comparison, a grouping, a
superlative, a set operation, column arithmetic?  Template retrieval and
bottom-up assembly both key off these features, and because the vector is
fixed the learned statistics transfer across databases — which is what lets
systems trained on MiniSpider produce *something* on an unseen scientific
domain (the nonzero zero-shot rows of Table 5).
"""

from __future__ import annotations

import re
import weakref
from functools import lru_cache

import numpy as np

from repro.textutil import normalize_question

#: Feature names in vector order.
FEATURE_NAMES = (
    "count", "avg", "sum", "max", "min",
    "greater", "less", "between", "equals_hint", "negation",
    "group_by", "superlative", "order", "limit_k",
    "union_hint", "except_hint", "math_diff", "math_ratio",
    "distinct", "n_numbers", "n_quoted", "length",
    "subquery_avg", "membership",
)

_PATTERNS: dict[str, tuple[str, ...]] = {
    "count": ("how many", "number of", "count"),
    "avg": ("average", "mean"),
    "sum": ("total", "sum", "summed"),
    "max": ("maximum", "highest", "largest", "most", "top"),
    "min": ("minimum", "lowest", "smallest", "least"),
    "greater": ("greater than", "more than", "above", "over", "larger than",
                "higher than", "exceeds", "at least", "after"),
    "less": ("less than", "smaller than", "below", "under", "lower than",
             "at most", "fewer", "before", "brighter"),
    "between": ("between", "in the range"),
    "equals_hint": (" is ", " equals ", " exactly ", " named ", " called "),
    "negation": ("not ", "excluding", "except", "without", "other than", "do not"),
    "group_by": ("for each", " per ", "for every", "grouped by", "by each", "each"),
    "superlative": ("highest", "lowest", "largest", "smallest", "top", "closest",
                    "best", "worst", "most", "least"),
    "order": ("sorted", "ordered", "ascending", "descending", "order"),
    "union_hint": ("as well as", "together with", " plus ", "also include"),
    "except_hint": ("excluding", "but not", "do not appear", "leaving out"),
    "math_diff": ("difference", "minus"),
    "math_ratio": ("ratio", "divided", "product", "sum of"),
    "distinct": ("distinct", "different", "unique"),
    "subquery_avg": ("than the average", "than the mean", "above the average",
                     "below the average", "average of all", "mean of all",
                     "over the mean", "over the average", "under the average",
                     "under the mean"),
    "membership": ("appear among", "appears among", "are among", "linked to",
                   "associated with", "belong"),
}

#: Numeric literal: not inside a word/decimal on the left, and on the right
#: neither a word character nor the continuation of a decimal — a trailing
#: sentence period ("… than 66.") must not block the match.
_NUMBER_RE = re.compile(r"(?<![\w.])\d+(?:\.\d+)?(?!\w|\.\d)")
_LIMIT_RE = re.compile(r"\btop (\d+)\b|\bfirst (\d+)\b|\b(\d+) (?:closest|largest|smallest|highest|lowest|best)\b")


@lru_cache(maxsize=4096)
def _question_features_tuple(question: str) -> tuple[float, ...]:
    lowered = f" {question.lower()} "
    vector = np.zeros(len(FEATURE_NAMES), dtype=np.float64)
    for i, name in enumerate(FEATURE_NAMES):
        patterns = _PATTERNS.get(name)
        if patterns is None:
            continue
        vector[i] = 1.0 if any(p in lowered for p in patterns) else 0.0
    numbers = extract_numbers(question)
    vector[FEATURE_NAMES.index("n_numbers")] = min(len(numbers), 4) / 4.0
    vector[FEATURE_NAMES.index("n_quoted")] = min(question.count("'") // 2, 3) / 3.0
    vector[FEATURE_NAMES.index("length")] = min(len(question.split()), 40) / 40.0
    vector[FEATURE_NAMES.index("limit_k")] = 1.0 if _LIMIT_RE.search(lowered) else 0.0
    return tuple(vector)


def question_features(question: str) -> np.ndarray:
    """The fixed feature vector of one question.

    The regex scan is memoized per question string (template retrieval,
    structural digests and serving all re-derive the same vector); callers
    receive a fresh array, so the memo cannot be mutated through a result.
    """
    return np.array(_question_features_tuple(question), dtype=np.float64)


_LINK_NORM_RE = re.compile(r"[^a-z0-9.]+")


def normalize_link_text(text: str) -> str:
    """The linker's canonical token form, built on the shared question
    normalization (casefold + whitespace collapse) with punctuation
    stripped and the result space-padded for whole-phrase matching."""
    collapsed = _LINK_NORM_RE.sub(" ", normalize_question(text)).strip()
    tokens = [t.strip(".") for t in collapsed.split(" ") if t.strip(".")]
    return f" {' '.join(tokens)} "


class SchemaPhrases:
    """Precomputed normalized readable phrases of one schema.

    Schema linking matches every table/column readable name (singular and
    plural) against each question; normalizing and pluralising those names
    per request is pure rebuild cost under a serving workload, so the
    phrases are derived once per schema and shared through
    :func:`schema_phrases`.

    ``tables`` holds one entry per table, in schema order::

        (table_key, table_phrase, table_plural,
         ((column_key, column_phrase, column_plural), ...))

    where keys are lowercase schema names and phrases are
    :func:`normalize_link_text` forms stripped of their padding.
    """

    __slots__ = ("tables",)

    def __init__(self, schema) -> None:
        from repro.nlgen.lexicon import _pluralise

        self.tables = tuple(
            (
                table_def.name.lower(),
                normalize_link_text(table_def.readable).strip(),
                normalize_link_text(_pluralise(table_def.readable)).strip(),
                tuple(
                    (
                        column.name.lower(),
                        normalize_link_text(column.readable).strip(),
                        normalize_link_text(_pluralise(column.readable)).strip(),
                    )
                    for column in table_def.columns
                ),
            )
            for table_def in schema.tables
        )


_SCHEMA_PHRASES: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()


def schema_phrases(schema) -> SchemaPhrases:
    """The memoized :class:`SchemaPhrases` of a schema.

    Weakly keyed by the (immutable) schema object, so the memo never
    outlives the schemas it describes and equal schemas share one index.
    """
    index = _SCHEMA_PHRASES.get(schema)
    if index is None:
        index = SchemaPhrases(schema)
        _SCHEMA_PHRASES[schema] = index
    return index


def extract_numbers(question: str) -> list[float]:
    """All numeric literals mentioned in the question, in order."""
    return [float(m) for m in _NUMBER_RE.findall(question)]


def extract_limit(question: str) -> int | None:
    """An explicit top-k if one is phrased (``top 5``, ``3 closest`` …)."""
    match = _LIMIT_RE.search(question.lower())
    if match is None:
        return None
    for group in match.groups():
        if group is not None:
            return int(group)
    return None


def feature_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Similarity in [0, 1] between two feature vectors (1 - scaled L1)."""
    return 1.0 - float(np.abs(a - b).sum()) / len(FEATURE_NAMES)


_SUPERLATIVE_PHRASE_RE = re.compile(
    r"with the (highest|lowest|largest|smallest|top|most|least|best|worst|closest)"
)

_PROJECTION_BOUNDARY_RE = re.compile(
    r"\bwhose\b|\bwith\b|\bthat\b|\bwhere\b|\bsorted\b|\bordered\b|\bfor each\b"
)


#: Ordered comparator phrases (longest alternatives first so the scanner is
#: greedy) mapped to SQL operators.
_COMPARATOR_RE = re.compile(
    r"greater than or equal to|less than or equal to|no less than|no more than"
    r"|at least|at most"
    r"|greater than|more than|larger than|higher than|exceeds|above|over"
    r"|less than|smaller than|lower than|fewer than|below|under"
    r"|between"
    r"|not equal to|other than|different from"
    r"|is exactly|equal to|equals"
)

_COMPARATOR_OPS = {
    "greater than or equal to": ">=", "no less than": ">=", "at least": ">=",
    "less than or equal to": "<=", "no more than": "<=", "at most": "<=",
    "greater than": ">", "more than": ">", "larger than": ">",
    "higher than": ">", "exceeds": ">", "above": ">", "over": ">",
    "less than": "<", "smaller than": "<", "lower than": "<",
    "fewer than": "<", "below": "<", "under": "<",
    "between": "between",
    "not equal to": "!=", "other than": "!=", "different from": "!=",
    "is exactly": "=", "equal to": "=", "equals": "=",
}


def comparator_intents(question: str) -> list[str]:
    """The comparison operators the question expresses, in textual order.

    The realizer verbalises conditions in SQL order, so aligning this list
    positionally with a template's conditions recovers the intended operator
    even when the retrieved template used a different one.
    """
    lowered = question.lower()
    return [_COMPARATOR_OPS[m.group(0)] for m in _COMPARATOR_RE.finditer(lowered)]


_HAVING_HINT_RE = re.compile(
    r"(number|count|total|average|mean|maximum|minimum) of [\w ]{1,40}?"
    r"(is|are) (greater|less|more|fewer|smaller|larger|at least|at most|above|below|over|under)"
)


def having_hint(question: str) -> bool:
    """True when the question compares an *aggregate* against a threshold —
    the phrasing signature of a HAVING clause ("whose number of records is
    greater than 10")."""
    lowered = question.lower()
    if _HAVING_HINT_RE.search(lowered):
        return True
    return bool(re.search(r"with (more|fewer|less) than \d+ ", lowered))


def _select_arity_hint(question: str) -> int:
    """Estimate the number of projected attributes from the question's
    pre-filter segment ("the X, the Y and the Z of ...")."""
    lowered = question.lower()
    boundary = _PROJECTION_BOUNDARY_RE.search(lowered)
    segment = lowered[: boundary.start()] if boundary else lowered
    return 1 + segment.count(" and ") + segment.count(", ")


def question_structure(question: str, n_value_links: int = 0) -> dict:
    """Structural intent summary used for template compatibility scoring.

    Unlike :func:`question_features` (a dense vector for learned centroids),
    this is a symbolic digest matched against a template's own structure:
    how many numbers / grounded values the question supplies, which
    aggregates, grouping, ordering, set operations and subqueries it asks
    for.
    """
    lowered = f" {question.lower()} "
    features = question_features(question)
    index = {name: i for i, name in enumerate(FEATURE_NAMES)}

    superlative_phrase = bool(_SUPERLATIVE_PHRASE_RE.search(lowered))
    # "at most"/"at least" are comparators, not MAX/MIN aggregates — strip
    # them before reading aggregate words.
    sanitized = lowered
    for noise in ("at most", "at least", "no more than", "no less than"):
        sanitized = sanitized.replace(noise, " ")
    aggs = set()
    if any(p in sanitized for p in _PATTERNS["count"]):
        aggs.add("count")
    if any(p in sanitized for p in _PATTERNS["avg"]):
        aggs.add("avg")
    if any(p in sanitized for p in _PATTERNS["sum"]):
        aggs.add("sum")
    # "highest/lowest" may signal a superlative (ORDER BY ... LIMIT 1)
    # instead of MAX()/MIN(); only read them as aggregates otherwise.
    has_max_word = any(p in sanitized for p in _PATTERNS["max"])
    has_min_word = any(p in sanitized for p in _PATTERNS["min"])
    if ("maximum" in sanitized) or (has_max_word and not superlative_phrase):
        aggs.add("max")
    if ("minimum" in sanitized) or (has_min_word and not superlative_phrase):
        aggs.add("min")
    # "top 20 X by Y" is an ORDER BY ... LIMIT, never a MAX()/MIN().
    if extract_limit(question) is not None:
        if "maximum" not in sanitized:
            aggs.discard("max")
        if "minimum" not in sanitized:
            aggs.discard("min")

    intents = comparator_intents(question)
    n_range_intents = sum(
        2 if op == "between" else 1 for op in intents if op in (">", "<", ">=", "<=", "between")
    )

    return {
        "n_numbers": len(extract_numbers(question)),
        "n_value_links": n_value_links,
        "n_range_intents": n_range_intents,
        "n_select_hint": _select_arity_hint(question),
        "aggs": aggs,
        "group": bool(features[index["group_by"]]),
        "order": bool(features[index["order"]]),
        "superlative": superlative_phrase,
        "limit_k": extract_limit(question),
        "union": bool(features[index["union_hint"]]),
        "except": bool(features[index["except_hint"]]),
        "subquery": bool(features[index["subquery_avg"]]) or bool(features[index["membership"]]),
        "math": bool(features[index["math_diff"]]) or ("ratio" in lowered) or ("divided" in lowered),
        "between": bool(features[index["between"]]),
        "greater": bool(features[index["greater"]]),
        "less": bool(features[index["less"]]),
        "distinct": bool(features[index["distinct"]]),
        "having": having_hint(question),
    }
