"""Link-guided template instantiation.

Where the pipeline's Phase 2 fills template slots by *random* constrained
sampling, an NL-to-SQL system must fill them with the elements the question
actually mentions.  The :class:`GuidedInstantiator` resolves each slot
deterministically from the question's :class:`~repro.nl2sql.linking.Links`:
best-linked table, best context-compatible linked column, linked value or
question number — falling back to schema priors when evidence is missing
(which is exactly when predictions go wrong, as they should).
"""

from __future__ import annotations

from repro.engine.database import Database
from repro.errors import GenerationError, SchemaError
from repro.nl2sql.features import comparator_intents, extract_limit
from repro.nl2sql.linking import Links
from repro.schema.enhanced import EnhancedSchema
from repro.schema.model import Column, ColumnType
from repro.semql import nodes as sq
from repro.semql.templates import Template
from repro.synthesis.generation import _agg_context, _filter_context, column_pool

_RANGE_OPS = {">", "<", ">=", "<=", "between"}


class GuidedInstantiator:
    """Fills templates using question links (deterministic)."""

    def __init__(self, database: Database, enhanced: EnhancedSchema) -> None:
        self.database = database
        self.enhanced = enhanced
        self.schema = enhanced.schema

    def instantiate(self, template: Template, links: Links, question: str) -> sq.Z:
        """One concrete SemQL tree; raises GenerationError when unfillable."""
        tables: dict[int, str] = {}
        columns: dict[int, sq.ColumnLeaf] = {}
        values: dict[int, sq.ValueLeaf] = {}
        used_columns: set[tuple[str, str]] = set()
        used_values: set[str] = set()
        numbers = list(links.numbers)
        explicit_limit = extract_limit(question)
        if explicit_limit is not None and explicit_limit in [int(n) for n in numbers if float(n).is_integer()]:
            numbers.remove(float(explicit_limit))

        linked_tables = links.best_tables(k=6)
        # Template column positions are assigned in pre-order, and the
        # realizer verbalises attributes/conditions in the same order — so a
        # queue of question mentions aligns slots to what was actually said.
        mention_queue = list(links.mention_order())
        # Comparator phrases, in question order: conditions are resolved in
        # the same order, so each condition may adopt its intended operator.
        intents = comparator_intents(question)

        def resolve_table(slot) -> sq.TableLeaf:
            if isinstance(slot, sq.TableLeaf):
                return slot
            if slot.position not in tables:
                index = slot.position
                if index < len(linked_tables):
                    tables[slot.position] = self.schema.table(linked_tables[index]).name
                elif linked_tables:
                    tables[slot.position] = self.schema.table(linked_tables[0]).name
                else:
                    raise GenerationError("no table evidence")
            return sq.TableLeaf(tables[slot.position])

        def resolve_column(slot, context: str) -> sq.ColumnLeaf:
            if isinstance(slot, sq.ColumnLeaf):
                return slot
            if slot.position not in columns:
                table = resolve_table(slot.table)
                column = self._next_mention(
                    table.name, context, mention_queue, used_columns
                )
                if column is None:
                    column = self._pick_column(table.name, context, links, used_columns)
                used_columns.add((table.name.lower(), column.name.lower()))
                columns[slot.position] = sq.ColumnLeaf(table=table, name=column.name)
            return columns[slot.position]

        def resolve_math(expr: sq.MathExpr) -> sq.MathExpr:
            anchor = expr.left.table if isinstance(expr.left, sq.ColumnSlot) else None
            table = resolve_table(anchor) if anchor is not None else None
            if table is None and isinstance(expr.left, sq.ColumnLeaf):
                return expr
            pool_table = table.name if table else (linked_tables[0] if linked_tables else None)
            if pool_table is None:
                raise GenerationError("no table for math expression")
            groups = self.enhanced.math_groups(pool_table)
            if not groups:
                raise GenerationError("no math group available")
            # Prefer the group containing the best-linked math column.
            ranked = links.columns_of(pool_table)
            chosen_pair: tuple[Column, Column] | None = None
            for group in groups:
                pool = self.enhanced.math_columns(pool_table, group)
                if len(pool) < 2:
                    continue
                by_link = sorted(
                    pool,
                    key=lambda c: -dict(ranked).get(c.name.lower(), 0.0),
                )
                chosen_pair = (by_link[0], by_link[1])
                if dict(ranked).get(by_link[0].name.lower(), 0.0) > 0:
                    break
            if chosen_pair is None:
                raise GenerationError("math group too small")
            owner = sq.TableLeaf(pool_table)

            def leaf(slot, column: Column) -> sq.ColumnLeaf:
                if isinstance(slot, sq.ColumnLeaf):
                    return slot
                if slot.position not in columns:
                    columns[slot.position] = sq.ColumnLeaf(table=owner, name=column.name)
                return columns[slot.position]

            return sq.MathExpr(
                op=expr.op, left=leaf(expr.left, chosen_pair[0]), right=leaf(expr.right, chosen_pair[1])
            )

        def resolve_attribute(a: sq.A, context: str | None = None) -> sq.A:
            if isinstance(a.column, sq.StarLeaf):
                return a
            if isinstance(a.column, sq.MathExpr):
                return sq.A(agg=a.agg, column=resolve_math(a.column), distinct=a.distinct)
            return sq.A(
                agg=a.agg,
                column=resolve_column(a.column, context or _agg_context(a.agg)),
                distinct=a.distinct,
            )

        def resolve_value(slot, attribute: sq.A, op: str) -> sq.ValueLeaf:
            if isinstance(slot, sq.ValueLeaf):
                return slot
            if slot.position not in values:
                values[slot.position] = self._pick_value(
                    attribute, op, links, numbers, used_values
                )
            return values[slot.position]

        def resolve_filter(node):
            if isinstance(node, sq.FilterNode):
                return sq.FilterNode(
                    op=node.op,
                    left=resolve_filter(node.left),
                    right=resolve_filter(node.right),
                )
            condition: sq.Condition = node
            context = _filter_context(condition.op, condition.attribute.agg)
            # Value evidence beats column-name evidence: when an equality
            # condition's column is still unresolved and the question links a
            # literal value, bind the slot to that value's column by
            # pre-seeding the position hash map.
            slot = condition.attribute.column
            if (
                isinstance(slot, sq.ColumnSlot)
                and slot.position not in columns
                and condition.attribute.agg == "none"
                and condition.op in ("=", "!=", "like", "not_like")
            ):
                for link in links.values:
                    if str(link.value).lower() in used_values:
                        continue
                    try:
                        column_def = self.schema.column(link.table, link.column)
                        owner = self.schema.table(link.table).name
                    except SchemaError:
                        continue
                    if isinstance(slot.table, sq.TableSlot):
                        if slot.table.position in tables and tables[
                            slot.table.position
                        ].lower() != link.table:
                            continue
                        tables.setdefault(slot.table.position, owner)
                    columns[slot.position] = sq.ColumnLeaf(
                        table=sq.TableLeaf(owner), name=column_def.name
                    )
                    break
            # Subquery first — its aggregate slot may share the outer
            # column's position and carries the stricter constraint.
            subquery = resolve_r(condition.subquery) if condition.subquery else None
            attribute = resolve_attribute(condition.attribute, context)
            op = self._intended_op(condition.op, intents)
            value = value2 = None
            if condition.value is not None:
                value = resolve_value(condition.value, attribute, op)
            if condition.value2 is not None:
                value2 = resolve_value(condition.value2, attribute, op)
                if (
                    isinstance(value.value, (int, float))
                    and isinstance(value2.value, (int, float))
                    and value.value > value2.value
                ):
                    value, value2 = value2, value
            return sq.Condition(
                op=op,
                attribute=attribute,
                value=value,
                value2=value2,
                subquery=subquery,
            )

        def resolve_r(r: sq.R) -> sq.R:
            from_table = resolve_table(r.from_table) if r.from_table is not None else None
            # Projections are resolved last: their "anything goes" context
            # must not lock a shared position that a GROUP BY key or typed
            # filter also needs (see the generator's identical ordering).
            group = None
            if r.select.group is not None:
                group = tuple(
                    resolve_column(c, "group") if isinstance(c, sq.ColumnSlot) else c
                    for c in r.select.group
                )
            attributes = tuple(resolve_attribute(a) for a in r.select.attributes)
            filter_node = resolve_filter(r.filter) if r.filter is not None else None
            order = None
            if r.order is not None:
                limit = r.order.limit
                if limit is not None and explicit_limit is not None:
                    limit = explicit_limit
                order = sq.Order(
                    direction=r.order.direction,
                    attribute=resolve_attribute(r.order.attribute, "order"),
                    limit=limit,
                )
            return sq.R(
                select=sq.SemSelect(
                    attributes=attributes, distinct=r.select.distinct, group=group
                ),
                filter=filter_node,
                order=order,
                from_table=from_table,
            )

        left = resolve_r(template.tree.left)
        right = resolve_r(template.tree.right) if template.tree.right is not None else None
        return sq.Z(left=left, set_op=template.tree.set_op, right=right)

    # -- slot resolution ------------------------------------------------------------

    _RANGE_FAMILY = frozenset({">", "<", ">=", "<="})
    _EQ_FAMILY = frozenset({"=", "!="})

    def _intended_op(self, template_op: str, intents: list[str]) -> str:
        """Adopt the question's comparator when it agrees in kind.

        Intents are consumed front-to-front; an operator is only overridden
        within its own family (range↔range, equality↔equality) so a mis-
        retrieved template does not get silently repaired into a different
        query shape.
        """
        if not intents:
            return template_op
        if template_op in self._RANGE_FAMILY and intents[0] in self._RANGE_FAMILY:
            return intents.pop(0)
        if template_op in self._EQ_FAMILY and intents[0] in self._EQ_FAMILY:
            return intents.pop(0)
        if template_op == "between" and intents[0] == "between":
            intents.pop(0)
            return template_op
        if intents[0] == "=" and template_op in self._RANGE_FAMILY:
            # "is exactly 5" against a range template: trust the question.
            intents.pop(0)
            return "="
        return template_op

    def _next_mention(
        self,
        table: str,
        context: str,
        mention_queue: list[tuple[str, str]],
        used: set[tuple[str, str]],
    ):
        """The earliest unused question mention compatible with this slot."""
        pool_names = {c.name.lower() for c in column_pool(self.enhanced, table, context)}
        lowered = table.lower()
        for key in mention_queue:
            mention_table, mention_column = key
            if mention_table != lowered or key in used:
                continue
            if mention_column not in pool_names:
                continue
            mention_queue.remove(key)
            return self.schema.column(table, mention_column)
        return None

    def _pick_column(
        self, table: str, context: str, links: Links, used: set[tuple[str, str]]
    ) -> Column:
        pool = column_pool(self.enhanced, table, context)
        if not pool:
            raise GenerationError(f"no {context!r}-compatible column in {table!r}")
        ranked = dict(links.columns_of(table))
        pk = (self.schema.table(table).primary_key or "").lower()

        def prior(column: Column) -> int:
            """Unlinked-projection prior: name/title columns describe the
            entity best, then the primary key, then whatever comes first."""
            lowered = column.name.lower()
            if "name" in lowered or "title" in lowered:
                return 0
            if lowered == pk:
                return 1
            return 2

        def sort_key(column: Column):
            linked = ranked.get(column.name.lower(), 0.0)
            fresh = (table.lower(), column.name.lower()) not in used
            return (-linked, not fresh, prior(column) if context == "projection" else 2, column.name)

        ordered = sorted(pool, key=sort_key)
        return ordered[0]

    def _pick_value(
        self,
        attribute: sq.A,
        op: str,
        links: Links,
        numbers: list[float],
        used_values: set[str],
    ) -> sq.ValueLeaf:
        column = attribute.column
        if isinstance(column, sq.MathExpr) or isinstance(column, sq.StarLeaf) or (
            attribute.agg in ("count", "sum", "avg")
        ):
            # Aggregate/math thresholds (HAVING COUNT(*) > V, u - r < V) can
            # only come from the question's numbers.
            if numbers:
                return sq.ValueLeaf(value=numbers.pop(0))
            raise GenerationError("no number for aggregate/math threshold")
        if not isinstance(column, sq.ColumnLeaf) or not isinstance(column.table, sq.TableLeaf):
            raise GenerationError("value slot without concrete column")
        table_name = column.table.name
        column_def = self.schema.column(table_name, column.name)

        if column_def.type.is_numeric and op in _RANGE_OPS | {"=", "!="}:
            if numbers:
                number = numbers.pop(0)
                if column_def.type is ColumnType.INTEGER and float(number).is_integer():
                    return sq.ValueLeaf(value=int(number))
                return sq.ValueLeaf(value=number)

        candidates = links.values_for(table_name, column.name)
        for link in candidates:
            key = str(link.value).lower()
            if key in used_values:
                continue
            used_values.add(key)
            return sq.ValueLeaf(value=link.value)

        # No grounded value for this slot: refuse rather than hallucinate a
        # filter the question never asked for.  The beam falls back to a
        # template without the unfillable condition — which is also how the
        # real grammar-constrained systems degrade when value extraction
        # fails.
        raise GenerationError(
            f"no grounded value for {table_name}.{column.name} ({op})"
        )
