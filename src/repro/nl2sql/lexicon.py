"""Learned NL↔schema associations: what training actually teaches a system.

From each NL/SQL training pair, content n-grams of the question are
associated with the schema elements the SQL uses: columns, tables, and —
crucially — literal values ("quasars" ↔ ``specobj.class = 'QSO'``).  At
prediction time these associations let the system link question phrases to
schema elements it could never connect from the schema's surface names
alone, which is precisely why in-domain seed/synth data lifts Table 5
accuracy so sharply over the zero-shot rows.

Association strength is a PMI-flavoured count ratio; high-frequency generic
n-grams ("find the", "of the") wash out automatically because they
co-occur with everything.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.semql import nodes as sq
from repro.semql.from_sql import sql_to_semql
from repro.sql import parse

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:\.[0-9]+)?")
_STOP = frozenset(
    "the a an of for and or to in on with that which are is was were all "
    "any each by from as at be this those these there find show list what "
    "give me return retrieve how many whose who".split()
)


def content_ngrams(question: str, max_n: int = 3) -> list[str]:
    """Content word n-grams (1..max_n) of a question."""
    tokens = _TOKEN_RE.findall(question.lower())
    ngrams: list[str] = []
    for n in range(1, max_n + 1):
        for i in range(len(tokens) - n + 1):
            window = tokens[i : i + n]
            if all(t in _STOP for t in window):
                continue
            ngrams.append(" ".join(window))
    return ngrams


@dataclass
class LearnedLexicon:
    """Phrase→schema-element association tables for one database."""

    db_id: str
    column_assoc: dict[str, Counter] = field(default_factory=dict)  # ngram -> {(t,c): n}
    table_assoc: dict[str, Counter] = field(default_factory=dict)  # ngram -> {t: n}
    value_assoc: dict[str, Counter] = field(default_factory=dict)  # ngram -> {(t,c,v): n}
    ngram_freq: Counter = field(default_factory=Counter)
    n_pairs: int = 0

    # -- training ----------------------------------------------------------------

    def observe(self, question: str, sql: str, schema) -> bool:
        """Learn from one NL/SQL pair; returns False if the SQL is outside
        the SemQL subset (such pairs still count toward n-gram frequency)."""
        ngrams = set(content_ngrams(question))
        for ngram in ngrams:
            self.ngram_freq[ngram] += 1
        self.n_pairs += 1
        try:
            z = sql_to_semql(parse(sql), schema)
        except ReproError:
            return False

        columns: set[tuple[str, str]] = set()
        tables: set[str] = set()
        values: set[tuple[str, str, str]] = set()
        for node in z.walk():
            if isinstance(node, sq.ColumnLeaf) and isinstance(node.table, sq.TableLeaf):
                columns.add((node.table.name.lower(), node.name.lower()))
                tables.add(node.table.name.lower())
            elif isinstance(node, sq.TableLeaf):
                tables.add(node.name.lower())
        for condition in sq.conditions_of(z):
            column = condition.attribute.column
            if not isinstance(column, sq.ColumnLeaf):
                continue
            table = column.table.name.lower() if isinstance(column.table, sq.TableLeaf) else ""
            for leaf in (condition.value, condition.value2):
                if not isinstance(leaf, sq.ValueLeaf) or leaf.value is None:
                    continue
                # Only *text* literals are worth memorising: numbers and
                # booleans always come from the question itself, and learning
                # them would teach spurious column→number associations.
                if isinstance(leaf.value, (bool, int, float)):
                    continue
                values.add((table, column.name.lower(), str(leaf.value).lower()))

        for ngram in ngrams:
            if columns:
                bucket = self.column_assoc.setdefault(ngram, Counter())
                for key in columns:
                    bucket[key] += 1
            if tables:
                bucket = self.table_assoc.setdefault(ngram, Counter())
                for key in tables:
                    bucket[key] += 1
            if values:
                bucket = self.value_assoc.setdefault(ngram, Counter())
                for key in values:
                    bucket[key] += 1
        return True

    # -- scoring --------------------------------------------------------------------

    def _score(self, assoc: dict[str, Counter], ngram: str, key) -> float:
        bucket = assoc.get(ngram)
        if not bucket or key not in bucket:
            return 0.0
        joint = bucket[key]
        freq = self.ngram_freq[ngram]
        if freq < 2 or joint < 2:
            return 0.0
        # PMI-ish: how concentrated is this n-gram on this element?
        ratio = joint / freq
        specificity = math.log1p(len(ngram.split()))
        return ratio * specificity * min(1.0, joint / 5.0)

    def concentrated_column_ngrams(self, question: str) -> dict[str, tuple[str, str]]:
        """Question n-grams that *distinctively* name one column.

        Only n-grams whose column association is concentrated (one column
        holds the majority of the n-gram's mass) qualify — generic n-grams
        like a bare table name associate with every column of that table and
        would poison mention-order alignment.
        """
        result: dict[str, tuple[str, str]] = {}
        for ngram in sorted(set(content_ngrams(question))):
            bucket = self.column_assoc.get(ngram)
            if not bucket:
                continue
            (best_key, best_count), = bucket.most_common(1)
            total = sum(bucket.values())
            if best_count / total < 0.6:
                continue
            if self._score(self.column_assoc, ngram, best_key) < 0.25:
                continue
            result[ngram] = best_key
        return result

    def column_scores(self, question: str) -> Counter:
        """Aggregated evidence per (table, column) from all question n-grams."""
        scores: Counter = Counter()
        for ngram in sorted(set(content_ngrams(question))):
            bucket = self.column_assoc.get(ngram)
            if not bucket:
                continue
            for key in bucket:
                value = self._score(self.column_assoc, ngram, key)
                if value > 0.05:
                    scores[key] += value
        return scores

    def table_scores(self, question: str) -> Counter:
        scores: Counter = Counter()
        for ngram in sorted(set(content_ngrams(question))):
            bucket = self.table_assoc.get(ngram)
            if not bucket:
                continue
            for key in bucket:
                value = self._score(self.table_assoc, ngram, key)
                if value > 0.05:
                    scores[key] += value
        return scores

    def value_scores(self, question: str) -> Counter:
        """Aggregated evidence per (table, column, value literal).

        Each n-gram credits only its *dominant* value: a question mentioning
        "galaxies" co-occurs in training with every filter that galaxy
        queries happen to carry, but only ``class = 'GALAXY'`` holds the
        majority of the n-gram's mass — crediting the rest would hallucinate
        filters at prediction time.
        """
        scores: Counter = Counter()
        for ngram in sorted(set(content_ngrams(question))):
            bucket = self.value_assoc.get(ngram)
            if not bucket:
                continue
            (best_key, best_count), = bucket.most_common(1)
            if best_count / sum(bucket.values()) < 0.5:
                continue
            # The n-gram must also be *specific to* the value: a generic
            # word appearing in most questions ("spectroscopic") would
            # otherwise credit whatever value dominates the training mix.
            freq = self.ngram_freq[ngram]
            if freq and best_count / freq < 0.55:
                continue
            value = self._score(self.value_assoc, ngram, best_key)
            if value > 0.05:
                scores[best_key] += value
        return scores
