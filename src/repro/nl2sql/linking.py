"""Schema linking: grounding question phrases in one database.

Three evidence sources are combined:

1. **static schema matching** — readable table/column names (the paper's
   added "natural language labels for abbreviated columns") appearing in the
   question;
2. **database content matching** — text values from the database appearing
   verbatim in the question (ValueNet's signature capability), plus numeric
   literals extracted from the question;
3. **learned associations** — the :class:`~repro.nl2sql.lexicon.
   LearnedLexicon` trained from NL/SQL pairs, which covers domain phrasing
   the schema surface cannot ("quasars" → ``class = 'QSO'``).

The output :class:`Links` object is consumed by all three NL-to-SQL systems.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.engine.database import Database
from repro.nl2sql.features import extract_numbers, normalize_link_text, schema_phrases
from repro.nl2sql.lexicon import LearnedLexicon
from repro.errors import SchemaError
from repro.schema.enhanced import EnhancedSchema
from repro.schema.model import ColumnType

#: Do not index text columns with more distinct values than this — matching
#: free-text columns (project objectives, descriptions) produces noise.
MAX_INDEXED_VALUES = 2000

#: Token normalization shared with the serving cache key (casefold +
#: whitespace collapse, via :mod:`repro.textutil`) so equivalent questions
#: link identically and hit the same cached result.
_normalize = normalize_link_text


@dataclass(frozen=True)
class ValueLink:
    """One grounded literal candidate."""

    table: str
    column: str
    value: object
    score: float


@dataclass
class Links:
    """All grounding evidence for one question."""

    tables: Counter = field(default_factory=Counter)
    columns: Counter = field(default_factory=Counter)
    values: list[ValueLink] = field(default_factory=list)
    numbers: list[float] = field(default_factory=list)
    #: Earliest character position of each linked column's mention in the
    #: question — the instantiator aligns template slots to mention order.
    column_positions: dict[tuple[str, str], int] = field(default_factory=dict)
    #: Tables whose name (or plural) literally occurs in the question, with
    #: the position of the first mention.
    table_mentions: set[str] = field(default_factory=set)
    table_positions: dict[str, int] = field(default_factory=dict)

    def mention_order(self) -> list[tuple[str, str]]:
        """Linked columns in order of first mention."""
        return [
            key
            for key, _ in sorted(self.column_positions.items(), key=lambda kv: kv[1])
        ]

    def evidence_tables(self) -> set[str]:
        """Tables the question demonstrably touches: literal mentions, the
        (best-link) tables of distinct grounded values, and tables owning an
        *unambiguous* column mention."""
        tables = set(self.table_mentions)
        seen_texts: set[str] = set()
        for link in self.values:
            if link.score < 1.0:
                continue
            text = str(link.value).lower()
            if text in seen_texts:
                continue
            seen_texts.add(text)
            tables.add(link.table)
        position_owners: dict[int, set[str]] = {}
        for (t, _), pos in self.column_positions.items():
            position_owners.setdefault(pos, set()).add(t)
        for (t, _), pos in self.column_positions.items():
            if len(position_owners[pos]) == 1:
                tables.add(t)
        return tables

    def best_tables(self, k: int = 3) -> list[str]:
        """Candidate tables ordered by earliest evidence in the question.

        Template table positions follow first-occurrence order of the
        query's *columns*, so a table's rank is the earliest position of any
        of its column mentions (or of the table mention itself); literal
        table mentions break ties, evidence mass breaks the rest.
        """
        infinity = 1_000_000

        # A column phrase shared by several tables ("name") yields the same
        # mention position for all of them — such ambiguous evidence must
        # not influence table ordering.
        position_owners: dict[int, set[str]] = {}
        for (t, _), pos in self.column_positions.items():
            position_owners.setdefault(pos, set()).add(t)

        def evidence_position(table: str) -> int:
            positions = [
                pos
                for (t, _), pos in self.column_positions.items()
                if t == table and len(position_owners[pos]) == 1
            ]
            positions.append(self.table_positions.get(table, infinity))
            return min(positions)

        ranked = sorted(
            self.tables.items(),
            key=lambda kv: (
                evidence_position(kv[0]),
                kv[0] not in self.table_mentions,
                -kv[1],
                kv[0],
            ),
        )
        return [t for t, _ in ranked[:k]]

    def columns_of(self, table: str) -> list[tuple[str, float]]:
        lowered = table.lower()
        return sorted(
            (
                (column, score)
                for (t, column), score in self.columns.items()
                if t == lowered
            ),
            key=lambda pair: -pair[1],
        )

    def values_for(self, table: str, column: str) -> list[ValueLink]:
        return sorted(
            (
                v
                for v in self.values
                if v.table == table.lower() and v.column == column.lower()
            ),
            key=lambda v: -v.score,
        )


class SchemaLinker:
    """Links questions against one database."""

    def __init__(self, database: Database, enhanced: EnhancedSchema) -> None:
        self.database = database
        self.enhanced = enhanced
        self.schema = enhanced.schema
        self._value_index: dict[str, list[tuple[str, str, object]]] = {}
        self._build_value_index()

    def _build_value_index(self) -> None:
        for table_def in self.schema.tables:
            table = self.database.table(table_def.name)
            for column in table_def.columns:
                if column.type is not ColumnType.TEXT:
                    continue
                values = table.distinct_values(column.name)
                if len(values) > MAX_INDEXED_VALUES:
                    continue
                for value in values:
                    text = _normalize(str(value)).strip()
                    if len(text) < 2:
                        continue
                    self._value_index.setdefault(text, []).append(
                        (table_def.name.lower(), column.name.lower(), value)
                    )

    # -- linking -------------------------------------------------------------------

    def link(self, question: str, learned: LearnedLexicon | None = None) -> Links:
        links = Links()
        normalized = _normalize(question)

        # 1. Static schema-name matching (singular and plural forms), against
        #    the per-domain precomputed phrase index.
        mention_phrases: dict[str, str] = {}
        column_phrases: dict[tuple[str, str], str] = {}
        for table_key, t_phrase, t_plural, columns in schema_phrases(self.schema).tables:
            score = max(
                _phrase_match(normalized, t_phrase),
                _phrase_match(normalized, t_plural),
            )
            if score:
                # An explicit table mention is the strongest structural cue.
                links.tables[table_key] += 2.0 * score
                links.table_mentions.add(table_key)
                positions = [
                    (normalized.find(f" {p} "), p) for p in (t_phrase, t_plural)
                ]
                positions = [(pos, p) for pos, p in positions if pos >= 0]
                if positions:
                    pos, phrase = min(positions)
                    links.table_positions[table_key] = pos
                    mention_phrases[table_key] = phrase
            for column_key, c_phrase, c_plural in columns:
                c_score = max(
                    _phrase_match(normalized, c_phrase),
                    _phrase_match(normalized, c_plural),
                )
                if c_score:
                    key = (table_key, column_key)
                    links.columns[key] += c_score
                    links.tables[table_key] += 0.3 * c_score
                    hits = [
                        (normalized.find(f" {p} "), p) for p in (c_phrase, c_plural)
                    ]
                    hits = [(pos, p) for pos, p in hits if pos >= 0]
                    position, hit_phrase = min(hits)
                    if key not in links.column_positions or position < links.column_positions[key]:
                        links.column_positions[key] = position
                        column_phrases[key] = hit_phrase

        # Suppress shadowed table mentions: when "pet" only occurs inside the
        # longer mention "pet ownership" — or inside a column phrase like
        # "pet id" — at the same position, the short match is an artefact
        # and must not compete for the main-table slot.
        for short, short_phrase in list(mention_phrases.items()):
            shadowed = False
            for long, long_phrase in mention_phrases.items():
                if short == long or short_phrase == long_phrase:
                    continue
                if (
                    short_phrase in long_phrase
                    and links.table_positions.get(short) == links.table_positions.get(long)
                ):
                    shadowed = True
                    break
            if not shadowed:
                for c_key, c_phrase in column_phrases.items():
                    same_position = links.table_positions.get(short) == links.column_positions.get(c_key)
                    if not same_position:
                        continue
                    if short_phrase != c_phrase and short_phrase in c_phrase:
                        shadowed = True
                        break
                    # "funding scheme" is both the funding_schemes table and
                    # a projects column; when the column's own table is also
                    # mentioned, the phrase refers to the column.
                    if (
                        short_phrase == c_phrase
                        and c_key[0] != short
                        and c_key[0] in mention_phrases
                    ):
                        shadowed = True
                        break
            if shadowed:
                links.table_mentions.discard(short)
                links.table_positions.pop(short, None)
                links.tables[short] -= 2.0

        # 2. Database content matching.
        for text, entries in self._value_index.items():
            if f" {text} " not in normalized:
                continue
            weight = 2.0 + 0.4 * text.count(" ")
            for table, column, value in entries:
                links.values.append(
                    ValueLink(table=table, column=column, value=value, score=weight)
                )
                links.tables[table] += 0.5
                links.columns[(table, column)] += 0.5
        links.numbers = extract_numbers(question)

        # Boolean literals ("is male is false") ground against every boolean
        # column of the schema; the instantiator narrows them by column.
        for word, boolean in ((" true ", True), (" false ", False)):
            if word not in normalized:
                continue
            for table_def in self.schema.tables:
                for column in table_def.columns:
                    if column.type is ColumnType.BOOLEAN:
                        links.values.append(
                            ValueLink(
                                table=table_def.name.lower(),
                                column=column.name.lower(),
                                value=boolean,
                                score=1.2,
                            )
                        )

        # 3. Learned associations.
        if learned is not None:
            lowered = question.lower()
            for key, score in learned.column_scores(question).items():
                links.columns[key] += score
                links.tables[key[0]] += 0.3 * score
            # Mention positions only from *distinctive* n-grams.
            for ngram, key in learned.concentrated_column_ngrams(question).items():
                position = lowered.find(ngram)
                if position < 0:
                    continue
                if key not in links.column_positions or position < links.column_positions[key]:
                    links.column_positions[key] = position
            for table, score in learned.table_scores(question).items():
                links.tables[table] += score
            for (table, column, literal), score in learned.value_scores(question).items():
                value = self._coerce(table, column, literal)
                if value is None:
                    continue
                links.values.append(
                    ValueLink(table=table, column=column, value=value, score=score)
                )
                links.tables[table] += 0.3 * score
                links.columns[(table, column)] += 0.3 * score

        # A "value" that is literally a mentioned table or column phrase is
        # not a value mention — "gene" in "the TP53 gene" names the table,
        # even though some biomarker_type cell also contains "gene".
        phrase_texts = set(mention_phrases.values()) | set(column_phrases.values())
        links.values = [
            v
            for v in links.values
            if _normalize(str(v.value)).strip() not in phrase_texts
        ]

        # De-duplicate value links, keeping the highest score per key; order
        # by score with a preference for explicitly mentioned tables (the
        # same literal often matches both endpoints of a foreign key, e.g.
        # ``projects.ec_fund_scheme`` and ``funding_schemes.code``).
        best: dict[tuple[str, str, str], ValueLink] = {}
        for link in links.values:
            key = (link.table, link.column, str(link.value).lower())
            if key not in best or best[key].score < link.score:
                best[key] = link
        links.values = sorted(
            best.values(),
            key=lambda v: (
                -v.score,
                v.table not in links.table_mentions,
                v.table,
                v.column,
            ),
        )
        return links

    def _coerce(self, table: str, column: str, literal: str):
        """Turn a learned literal string back into a typed value."""
        try:
            column_def = self.schema.column(table, column)
        except SchemaError:
            return None
        if column_def.type.is_numeric:
            try:
                number = float(literal)
            except ValueError:
                return None
            if column_def.type is ColumnType.INTEGER:
                return int(number)
            return number
        if column_def.type is ColumnType.BOOLEAN:
            return literal.lower() == "true"
        return self._match_text_value(table, column, literal)

    def _match_text_value(self, table: str, column: str, literal: str):
        values = self.database.table(table).distinct_values(column)
        lowered = literal.lower()
        for value in values:
            if str(value).lower() == lowered:
                return value
        return literal


def _phrase_match(normalized_question: str, phrase: str) -> float:
    """Score a phrase occurrence (longer phrases are stronger evidence)."""
    if not phrase or f" {phrase} " not in normalized_question:
        return 0.0
    return 1.0 + 0.5 * phrase.count(" ")
