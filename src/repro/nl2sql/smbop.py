"""SmBoP-style system: semi-autoregressive bottom-up semantic parsing.

Like the real SmBoP (Rubin & Berant 2021), decoding builds the query tree
from the leaves up — no template memory is involved.  Grounded columns
become attributes, attributes plus comparator intents and grounded values
become predicates, predicates and projections assemble into a full query.
The learned lexicon feeds the schema linker (that is what training changes),
so SmBoP generalises *structure* well but cannot represent anything its
bottom-up grammar lacks (set operations, math expressions unless linked),
matching its relative standing in Table 5.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.nl2sql.base import DomainContext, NLToSQLSystem
from repro.nl2sql.features import (
    comparator_intents,
    extract_limit,
    question_structure,
)
from repro.nl2sql.linking import Links
from repro.schema.model import ColumnType
from repro.semql import nodes as sq
from repro.semql.to_sql import semql_to_sql

_RANGE_OPS = frozenset({">", "<", ">=", "<="})


class SmBoP(NLToSQLSystem):
    """Bottom-up beam assembly of SemQL trees."""

    name = "smbop"

    def __init__(self, beam_size: int = 6) -> None:
        super().__init__()
        self.beam_size = beam_size
        #: Learned projection prior: how often each (db, table, column) is
        #: projected in training SQL — the decoder-side statistic a trained
        #: bottom-up parser absorbs, and the channel through which domain
        #: seed/synth data improves SmBoP in Table 5.
        self._projection_counts: dict[tuple[str, str, str], int] = {}

    def _observe(self, pair, context) -> None:
        from repro.errors import ReproError
        from repro.semql.from_sql import sql_to_semql
        from repro.sql import parse

        try:
            z = sql_to_semql(parse(pair.sql), context.database.schema)
        except ReproError:
            return
        for r in (z.left, z.right):
            if r is None:
                continue
            for attribute in r.select.attributes:
                column = attribute.column
                if isinstance(column, sq.ColumnLeaf) and isinstance(
                    column.table, sq.TableLeaf
                ):
                    key = (
                        context.db_id,
                        column.table.name.lower(),
                        column.name.lower(),
                    )
                    self._projection_counts[key] = self._projection_counts.get(key, 0) + 1

    def _projection_prior(self, db_id: str, table: str) -> list[str]:
        """Columns of ``table`` by learned projection frequency (desc)."""
        scored = [
            (count, key[2])
            for key, count in self._projection_counts.items()
            if key[0] == db_id and key[1] == table.lower()
        ]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [column for _, column in scored]

    def _predict(self, question: str, context: DomainContext) -> str | None:
        links = self.link(question, context.db_id)
        strong_values = len({str(v.value).lower() for v in links.values if v.score >= 1.0})
        struct = question_structure(question, n_value_links=strong_values)
        tables = links.best_tables(k=3)
        if not tables:
            return None

        candidates: list[sq.Z] = []
        for table in tables[:2]:
            try:
                candidates.extend(
                    self._assemble(question, table, links, struct, context)
                )
            except ReproError:
                continue

        seen: set[str] = set()
        for tree in candidates[: self.beam_size * 3]:
            try:
                sql = semql_to_sql(tree, context.database.schema)
            except ReproError:
                continue
            if sql in seen:
                continue
            seen.add(sql)
            if context.database.try_execute(sql) is not None:
                return sql
        return None

    # -- bottom-up assembly -------------------------------------------------------

    def _assemble(
        self, question: str, table: str, links: Links, struct: dict, context
    ) -> list[sq.Z]:
        schema = context.database.schema
        enhanced = context.enhanced
        table_name = schema.table(table).name
        table_leaf = sq.TableLeaf(table_name)

        boundary = self._filter_boundary(question)
        mentions = self._usable_mentions(links, schema, table_name)
        pre = [m for m in mentions if links.column_positions[m] < boundary]
        post = [m for m in mentions if links.column_positions[m] >= boundary]
        numbers = list(links.numbers)
        explicit_limit = extract_limit(question)
        if explicit_limit is not None:
            numbers = [n for n in numbers if n != float(explicit_limit)] or numbers[1:]

        # ---- projections (leaves → attributes) -----------------------------
        projections = self._projections(
            struct, pre, post, schema, table_name, context.db_id
        )

        # ---- filter conditions ----------------------------------------------
        filter_node, numbers = self._conditions(
            question, struct, links, post + pre, numbers, schema, table_name
        )

        # ---- grouping --------------------------------------------------------
        group = None
        if struct["group"]:
            group = self._group_key(mentions, enhanced, table_name, schema)

        # ---- ordering --------------------------------------------------------
        order = self._order(question, struct, mentions, schema, explicit_limit)

        trees: list[sq.Z] = []
        for attributes in projections:
            select_attrs = attributes
            select_group = None
            if group is not None:
                has_agg = any(a.is_aggregated for a in select_attrs)
                if has_agg:
                    if not any(
                        isinstance(a.column, sq.ColumnLeaf)
                        and a.column.name == group.name
                        for a in select_attrs
                    ):
                        select_attrs = select_attrs + (sq.A(agg="none", column=group),)
                    select_group = (group,)
            select = sq.SemSelect(
                attributes=select_attrs,
                distinct=struct["distinct"] and not any(a.is_aggregated for a in select_attrs),
                group=select_group,
            )
            having = None
            if struct["having"] and numbers:
                having = sq.Condition(
                    op=">" if struct["greater"] or not struct["less"] else "<",
                    attribute=sq.A(agg="count", column=sq.StarLeaf()),
                    value=sq.ValueLeaf(value=_as_int(numbers[0])),
                )
                if select_group is None and group is not None:
                    select_group = (group,)
                    select = sq.SemSelect(
                        attributes=select_attrs, distinct=False, group=select_group
                    )
            combined = filter_node
            if having is not None:
                combined = (
                    having
                    if combined is None
                    else sq.FilterNode(op="and", left=combined, right=having)
                )
            trees.append(
                sq.Z(
                    left=sq.R(
                        select=select,
                        filter=combined,
                        order=order,
                        from_table=table_leaf,
                    )
                )
            )
            # Beam variation: same projection without the last condition.
            if filter_node is not None and having is None:
                trees.append(
                    sq.Z(
                        left=sq.R(
                            select=select,
                            filter=_drop_last(filter_node),
                            order=order,
                            from_table=table_leaf,
                        )
                    )
                )
        return trees

    # -- components ---------------------------------------------------------------

    @staticmethod
    def _filter_boundary(question: str) -> int:
        from repro.nl2sql.features import _PROJECTION_BOUNDARY_RE

        match = _PROJECTION_BOUNDARY_RE.search(question.lower())
        return match.start() if match else len(question)

    def _usable_mentions(self, links: Links, schema, table_name: str):
        """Column mentions on the chosen table or FK-adjacent tables."""
        reachable = {table_name.lower()}
        for fk in schema.foreign_keys_of(table_name):
            reachable.add(fk.table.lower())
            reachable.add(fk.ref_table.lower())
        main = table_name.lower()
        usable = [key for key in links.mention_order() if key[0] in reachable]
        # Prefer the main table's own columns when a phrase is ambiguous
        # across FK-adjacent tables (``ra`` lives on photoobj *and* specobj).
        positions = links.column_positions
        deduped: list[tuple[str, str]] = []
        for key in usable:
            twin = (main, key[1])
            if key[0] != main and twin in usable and positions.get(twin) == positions.get(key):
                continue
            deduped.append(key)
        return deduped

    def _projections(self, struct, pre, post, schema, table_name, db_id):
        """Candidate attribute tuples, most likely first."""
        options: list[tuple[sq.A, ...]] = []
        pre_leaves = [self._leaf(key, schema) for key in pre[:3]]

        agg = None
        for name in ("count", "avg", "sum", "max", "min"):
            if name in struct["aggs"]:
                agg = name
                break
        if struct["having"]:
            agg = None  # the aggregate belongs to the HAVING clause

        if agg == "count":
            options.append((sq.A(agg="count", column=sq.StarLeaf()),))
            if pre_leaves:
                options.append(
                    (
                        sq.A(agg="count", column=sq.StarLeaf()),
                        sq.A(agg="none", column=pre_leaves[0]),
                    )
                )
        elif agg is not None:
            target = None
            for leaf in pre_leaves or [self._leaf(key, schema) for key in post[:2]]:
                column = schema.column(leaf.table.name, leaf.name)
                if column.type.is_numeric:
                    target = leaf
                    break
            if target is not None:
                options.append((sq.A(agg=agg, column=target),))

        if pre_leaves:
            arity = min(struct.get("n_select_hint", 1), len(pre_leaves))
            if arity >= 2:
                options.append(
                    tuple(sq.A(agg="none", column=leaf) for leaf in pre_leaves[:arity])
                )
            options.append((sq.A(agg="none", column=pre_leaves[0]),))
        if not options:
            # "Return the spectroscopic objects ..." names no column: the
            # entity itself is requested.  Prefer whatever this table's
            # training data most often projects (the learned prior), then
            # the primary key.
            main = schema.table(table_name)
            fallback = None
            for column in self._projection_prior(db_id, table_name):
                if main.has_column(column):
                    fallback = column
                    break
            if fallback is None and main.primary_key:
                fallback = main.primary_key
            if fallback is not None and "count" not in struct["aggs"]:
                options.append(
                    (
                        sq.A(
                            agg="none",
                            column=sq.ColumnLeaf(
                                table=sq.TableLeaf(main.name), name=fallback
                            ),
                        ),
                    )
                )
            options.append((sq.A(agg="count", column=sq.StarLeaf()),))
        return options

    def _conditions(self, question, struct, links, filter_mentions, numbers, schema, table_name):
        """Assemble the WHERE tree from comparator intents and value links."""
        conditions: list[sq.Condition] = []
        intents = comparator_intents(question)
        mention_pool = list(filter_mentions)
        numbers = list(numbers)
        used_values: set[str] = set()
        filtered_columns: set[tuple[str, str]] = set()

        if struct["having"]:
            # The first comparator (and its number) belongs to HAVING.
            if intents:
                intents.pop(0)

        if struct["subquery"] and not struct["having"]:
            sub_condition = self._subquery_condition(struct, mention_pool, schema)
            if sub_condition is not None:
                conditions.append(sub_condition)
                if intents:
                    intents.pop(0)

        for intent in intents:
            if intent in _RANGE_OPS and numbers:
                leaf = self._numeric_mention(mention_pool, schema)
                if leaf is None:
                    continue
                conditions.append(
                    sq.Condition(
                        op=intent,
                        attribute=sq.A(agg="none", column=leaf),
                        value=sq.ValueLeaf(value=_coerce_number(numbers.pop(0), leaf, schema)),
                    )
                )
            elif intent == "between" and len(numbers) >= 2:
                leaf = self._numeric_mention(mention_pool, schema)
                if leaf is None:
                    continue
                lo, hi = sorted(numbers[:2])
                numbers = numbers[2:]
                conditions.append(
                    sq.Condition(
                        op="between",
                        attribute=sq.A(agg="none", column=leaf),
                        value=sq.ValueLeaf(value=_coerce_number(lo, leaf, schema)),
                        value2=sq.ValueLeaf(value=_coerce_number(hi, leaf, schema)),
                    )
                )
            elif intent in ("=", "!="):
                condition = self._equality_condition(
                    intent, links, mention_pool, numbers, schema, used_values, filtered_columns
                )
                if condition is not None:
                    conditions.append(condition)

        # Grounded values without an explicit comparator ("Starburst
        # galaxies") become equality conditions.
        for link in links.values:
            if len(conditions) >= 3:
                break
            if link.score < 1.0 or str(link.value).lower() in used_values:
                continue
            # One equality filter per column: contradictory conditions like
            # ``class = 'X' AND class = 'Y'`` are never what a question means.
            if (link.table, link.column) in filtered_columns:
                continue
            used_values.add(str(link.value).lower())
            filtered_columns.add((link.table, link.column))
            conditions.append(
                sq.Condition(
                    op="=",
                    attribute=sq.A(agg="none", column=self._leaf((link.table, link.column), schema)),
                    value=sq.ValueLeaf(value=link.value),
                )
            )

        if not conditions:
            return None, numbers
        tree = conditions[0]
        for condition in conditions[1:]:
            tree = sq.FilterNode(op="and", left=tree, right=condition)
        return tree, numbers

    def _equality_condition(
        self, intent, links, mention_pool, numbers, schema, used_values, filtered_columns
    ):
        for link in links.values:
            if link.score < 1.0 or str(link.value).lower() in used_values:
                continue
            if (link.table, link.column) in filtered_columns:
                continue
            used_values.add(str(link.value).lower())
            filtered_columns.add((link.table, link.column))
            return sq.Condition(
                op=intent,
                attribute=sq.A(agg="none", column=self._leaf((link.table, link.column), schema)),
                value=sq.ValueLeaf(value=link.value),
            )
        if numbers:
            leaf = self._numeric_mention(mention_pool, schema)
            if leaf is not None:
                return sq.Condition(
                    op=intent,
                    attribute=sq.A(agg="none", column=leaf),
                    value=sq.ValueLeaf(value=_coerce_number(numbers.pop(0), leaf, schema)),
                )
        return None

    def _subquery_condition(self, struct, mention_pool, schema):
        leaf = self._numeric_mention(list(mention_pool), schema)
        if leaf is None:
            return None
        sub = sq.R(
            select=sq.SemSelect(attributes=(sq.A(agg="avg", column=leaf),)),
            from_table=leaf.table,
        )
        op = "<" if struct["less"] and not struct["greater"] else ">"
        return sq.Condition(op=op, attribute=sq.A(agg="none", column=leaf), subquery=sub)

    def _numeric_mention(self, mention_pool, schema):
        for key in list(mention_pool):
            column = schema.column(key[0], key[1])
            if column.type.is_numeric or column.type is ColumnType.DATE:
                mention_pool.remove(key)
                return self._leaf(key, schema)
        return None

    def _group_key(self, mentions, enhanced, table_name, schema):
        categorical = {
            c.name.lower() for c in enhanced.categorical_columns(table_name)
        }
        for key in mentions:
            if key[0] == table_name.lower() and key[1] in categorical:
                return self._leaf(key, schema)
        pool = enhanced.categorical_columns(table_name)
        if pool:
            return sq.ColumnLeaf(table=sq.TableLeaf(table_name), name=pool[0].name)
        return None

    def _order(self, question, struct, mentions, schema, explicit_limit):
        if not struct["superlative"] and not struct["order"] and explicit_limit is None:
            return None
        if struct["having"]:
            return None
        target = None
        # The order key is usually the LAST numeric column mentioned.
        for key in reversed(mentions):
            column = schema.column(key[0], key[1])
            if column.type.is_numeric or column.type is ColumnType.DATE:
                target = self._leaf(key, schema)
                break
        if target is None:
            return None
        lowered = question.lower()
        descending = any(
            w in lowered for w in ("highest", "largest", "top", "most", "descending", "best")
        )
        limit = explicit_limit
        if struct["superlative"] and limit is None:
            limit = 1
        return sq.Order(
            direction="desc" if descending else "asc",
            attribute=sq.A(agg="none", column=target),
            limit=limit,
        )

    @staticmethod
    def _leaf(key, schema) -> sq.ColumnLeaf:
        table = schema.table(key[0]).name
        column = schema.column(table, key[1]).name
        return sq.ColumnLeaf(table=sq.TableLeaf(table), name=column)


def _drop_last(filter_node):
    if isinstance(filter_node, sq.FilterNode):
        return filter_node.left
    return None


def _as_int(value):
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def _coerce_number(value, leaf, schema):
    column = schema.column(leaf.table.name, leaf.name)
    if column.type is ColumnType.INTEGER and float(value).is_integer():
        return int(value)
    return float(value)
