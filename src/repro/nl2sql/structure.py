"""Template structure digests and question↔template compatibility scoring.

A template's structure is fully observable from its anonymized tree: how
many values it needs (and of which kind), which aggregates, grouping,
ordering, set operations, subqueries and math expressions it contains.
Matching that against the :func:`~repro.nl2sql.features.question_structure`
digest is far more discriminative than feature-centroid similarity alone —
a question supplying two numbers and no grounded text value should never
retrieve a ``country = V`` template.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.semql import nodes as sq
from repro.semql.templates import Template

_RANGE_OPS = {">", "<", ">=", "<="}


@dataclass(frozen=True)
class TemplateStructure:
    """Symbolic digest of one template."""

    numbers_needed: int
    eq_values_needed: int
    has_between: bool
    n_tables: int
    aggs: frozenset[str]
    has_group: bool
    has_order: bool
    limit_one: bool
    has_limit: bool
    set_op: str | None
    has_subquery: bool
    has_agg_condition: bool
    has_math: bool
    n_select: int
    n_conditions: int
    distinct: bool


def template_structure(template: Template) -> TemplateStructure:
    tree = template.tree
    numbers = 0
    eq_values = 0
    has_between = False
    aggs: set[str] = set()
    has_group = False
    has_order = False
    has_limit = False
    limit_one = False
    has_subquery = False
    has_agg_condition = False
    has_math = any(isinstance(n, sq.MathExpr) for n in tree.walk())
    n_conditions = 0
    distinct = False

    for node in tree.walk():
        if isinstance(node, sq.Condition):
            n_conditions += 1
            if node.attribute.agg != "none":
                has_agg_condition = True
            if node.subquery is not None:
                has_subquery = True
            elif node.op == "between":
                numbers += 2
                has_between = True
            elif node.op in _RANGE_OPS:
                numbers += 1
            elif node.op in ("=", "!=", "like", "not_like"):
                eq_values += 1
        elif isinstance(node, sq.A) and node.agg != "none":
            aggs.add(node.agg)
        elif isinstance(node, sq.SemSelect):
            if node.distinct:
                distinct = True
            if node.group:
                has_group = True
            elif node.group is None:
                aggregated = any(a.is_aggregated for a in node.attributes)
                plain = any(not a.is_aggregated for a in node.attributes)
                if aggregated and plain:
                    has_group = True
        elif isinstance(node, sq.Order):
            has_order = True
            if node.limit is not None:
                has_limit = True
                limit_one = node.limit == 1

    return TemplateStructure(
        numbers_needed=numbers,
        eq_values_needed=eq_values,
        has_between=has_between,
        n_tables=max(template.n_tables, 1),
        aggs=frozenset(aggs),
        has_group=has_group,
        has_order=has_order,
        limit_one=limit_one,
        has_limit=has_limit,
        set_op=tree.set_op,
        has_subquery=has_subquery,
        has_agg_condition=has_agg_condition,
        has_math=has_math,
        n_select=len(tree.left.select.attributes),
        n_conditions=n_conditions,
        distinct=distinct,
    )


def compatibility(
    question_struct: dict, structure: TemplateStructure, n_table_links: int = 1
) -> float:
    """Compatibility score (higher = better; 0 is neutral)."""
    q = question_struct
    score = 0.0

    # Value arity — the strongest signal.  A template must consume roughly
    # the numbers and grounded values the question supplies.  Numbers are
    # split between *range* conditions (one per comparator phrase the
    # question utters) and *numeric equality* ("projects with start year
    # 2018" has a number but no comparator — that number feeds an = slot).
    n_numbers = min(q["n_numbers"], 4)
    # An explicit top-k ("top 5") spends one of the question's numbers.
    if q["limit_k"] is not None and n_numbers > 0:
        n_numbers -= 1
    n_range_slots = q.get("n_range_intents", 0)
    if q.get("having"):
        n_range_slots = max(0, n_range_slots - 1)  # HAVING consumes one
    if q.get("subquery"):
        n_range_slots = max(0, n_range_slots - 1)  # ... as does > (SELECT AVG ...)
    numbers_for_range = min(n_numbers, n_range_slots)
    numbers_leftover = n_numbers - numbers_for_range
    score -= 1.4 * abs(structure.numbers_needed - numbers_for_range)
    n_values = min(q["n_value_links"], 3) + numbers_leftover
    score -= 1.0 * min(abs(structure.eq_values_needed - n_values), 3)
    if q["between"] and structure.has_between:
        score += 1.0
    elif q["between"] != structure.has_between:
        score -= 0.8

    # Projection arity and join footprint.
    score -= 0.5 * min(abs(structure.n_select - q.get("n_select_hint", 1)), 2)
    score -= 0.6 * min(abs(structure.n_tables - max(1, n_table_links)), 2)

    # Aggregates.
    for agg in ("count", "avg", "sum", "max", "min"):
        wanted = agg in q["aggs"]
        present = agg in structure.aggs
        if wanted and present:
            score += 1.0
        elif wanted != present:
            score -= 1.0

    # Grouping.
    if q["group"] and structure.has_group:
        score += 1.2
    elif q["group"] != structure.has_group:
        score -= 1.2

    # Ordering and superlatives.
    if q["superlative"]:
        score += 1.2 if (structure.has_order and structure.has_limit) else -1.2
    elif q["limit_k"] is not None:
        score += 1.0 if structure.has_limit else -1.0
    elif q["order"]:
        score += 0.8 if structure.has_order else -0.8
    elif structure.has_order:
        score -= 0.8

    # Set operations.
    if q["union"] and structure.set_op == "union":
        score += 1.4
    elif q["except"] and structure.set_op == "except":
        score += 1.4
    elif structure.set_op is not None and not (q["union"] or q["except"]):
        score -= 1.4

    # HAVING (aggregate-threshold conditions).
    if q.get("having") and structure.has_agg_condition:
        score += 1.4
    elif q.get("having", False) != structure.has_agg_condition:
        score -= 1.0

    # Subqueries and math.
    if q["subquery"] and structure.has_subquery:
        score += 1.2
    elif q["subquery"] != structure.has_subquery:
        score -= 1.0
    if q["math"] and structure.has_math:
        score += 1.4
    elif q["math"] != structure.has_math:
        score -= 1.0

    if q["distinct"] == structure.distinct:
        score += 0.2

    return score
