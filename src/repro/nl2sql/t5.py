"""T5-style system: sequence-to-sequence translation without constrained
decoding.

The paper runs T5-Large *without* Picard (its Haskell decoder did not
build), i.e. an unconstrained text-to-text model.  We model that behaviour
with a translation memory: the training pair whose question embedding is
nearest to the input question supplies the query structure, which is then
adapted to the target database.  Two T5-characteristic behaviours are kept:

* strong when a similar question was seen in training (hence the large
  +synth gains in Table 5 — synthetic data floods the memory with in-domain
  neighbours);
* *unconstrained*: when guided adaptation fails, the raw retrieved SQL is
  emitted with naive value substitution — which may reference tables that do
  not exist on the target database and simply fails execution, exactly like
  an unconstrained seq2seq hallucinating schema elements.
"""

from __future__ import annotations

import re

import numpy as np

from repro.datasets.records import NLSQLPair
from repro.embeddings import SentenceEmbedder
from repro.errors import ReproError
from repro.nl2sql.base import DomainContext, NLToSQLSystem
from repro.nl2sql.features import question_structure
from repro.nl2sql.instantiate import GuidedInstantiator
from repro.nl2sql.structure import TemplateStructure, compatibility, template_structure
from repro.semql.templates import Template, extract_template
from repro.semql.from_sql import sql_to_semql
from repro.semql.to_sql import semql_to_sql
from repro.sql import parse

_LITERAL_RE = re.compile(r"'[^']*'|(?<![\w.])\d+(?:\.\d+)?(?![\w.])")


class T5Seq2Seq(NLToSQLSystem):
    """Translation-memory seq2seq NL-to-SQL (T5-Large w/o Picard analogue)."""

    name = "t5-large"

    def __init__(self, memory_neighbours: int = 5) -> None:
        super().__init__()
        self.memory_neighbours = memory_neighbours
        self.embedder = SentenceEmbedder()
        self._memory: list[
            tuple[np.ndarray, NLSQLPair, Template | None, TemplateStructure | None]
        ] = []

    def _observe(self, pair: NLSQLPair, context: DomainContext) -> None:
        embedding = self.embedder.embed(pair.question)
        template: Template | None = None
        structure: TemplateStructure | None = None
        try:
            z = sql_to_semql(parse(pair.sql), context.database.schema)
            template = extract_template(z, source_sql=pair.sql)
            structure = template_structure(template)
        except ReproError:
            template = None
        self._memory.append((embedding, pair, template, structure))

    def _predict(self, question: str, context: DomainContext) -> str | None:
        if not self._memory:
            return None
        links = self.link(question, context.db_id)
        strong_values = len({str(v.value).lower() for v in links.values if v.score >= 1.0})
        neighbours = self._nearest(question, context.db_id, n_value_links=strong_values)
        instantiator = GuidedInstantiator(context.database, context.enhanced)

        first_decodable: str | None = None
        for _, _pair, template in neighbours:
            if template is None:
                continue
            try:
                tree = instantiator.instantiate(template, links, question)
                sql = semql_to_sql(tree, context.database.schema)
            except ReproError:
                continue
            if first_decodable is None:
                first_decodable = sql
            if context.database.try_execute(sql) is not None:
                return sql
        if first_decodable is not None:
            return first_decodable

        # Unconstrained fallback: copy the nearest SQL, substituting linked
        # values positionally.  Often invalid on the target database — the
        # hallmark failure of decoding without Picard.
        nearest_sql = neighbours[0][1].sql
        return self._naive_adapt(nearest_sql, links)

    def _nearest(self, question: str, db_id: str, n_value_links: int = 0):
        """Neighbours by embedding similarity, re-ranked by the structural
        plausibility a trained decoder would enforce."""
        query_vec = self.embedder.embed(question)
        q_struct = question_structure(question, n_value_links=n_value_links)
        scored = []
        for embedding, pair, template, structure in self._memory:
            similarity = float(np.dot(query_vec, embedding))
            if pair.db_id == db_id:
                similarity += 0.15  # in-domain prior
            if structure is not None:
                similarity += 0.2 * compatibility(q_struct, structure)
            scored.append((similarity, pair, template))
        scored.sort(key=lambda item: (-item[0], item[1].sql))
        return scored[: self.memory_neighbours]

    def _naive_adapt(self, sql: str, links) -> str:
        replacements = [
            f"'{v.value}'" if isinstance(v.value, str) else str(v.value)
            for v in links.values[:4]
        ]
        replacements.extend(str(n) for n in links.numbers)
        iterator = iter(replacements)

        def substitute(match: re.Match) -> str:
            try:
                return next(iterator)
            except StopIteration:
                return match.group(0)

        return _LITERAL_RE.sub(substitute, sql)
