"""The template memory of the grammar-based NL-to-SQL systems.

Training pairs are lifted to SemQL, anonymized into templates (the same
machinery as the pipeline's seeding phase) and stored with the centroid of
the question feature vectors that produced them.  Prediction retrieves the
templates whose feature centroid best matches the new question — so a
"how many X per Y" question retrieves GROUP-BY-count templates, a
"difference of u and r" question retrieves math templates, and — decisive
for Table 5 — math/nested templates exist in the store *only if the system
saw such pairs during training*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.nl2sql.features import feature_similarity, question_features, question_structure
from repro.nl2sql.structure import TemplateStructure, compatibility, template_structure
from repro.schema.model import Schema
from repro.semql.from_sql import sql_to_semql
from repro.semql.templates import Template, extract_template
from repro.sql import parse


@dataclass
class TemplateEntry:
    """One stored template with usage statistics."""

    template: Template
    centroid: np.ndarray
    structure: TemplateStructure
    count: int = 1

    def update(self, features: np.ndarray) -> None:
        self.centroid = (self.centroid * self.count + features) / (self.count + 1)
        self.count += 1


@dataclass
class TemplateStore:
    """Signature-keyed template memory."""

    entries: dict[str, TemplateEntry] = field(default_factory=dict)

    def observe(self, question: str, sql: str, schema: Schema) -> bool:
        """Learn the template of one training pair; False if out of grammar."""
        try:
            z = sql_to_semql(parse(sql), schema)
            template = extract_template(z, source_sql=sql)
        except ReproError:
            return False
        features = question_features(question)
        entry = self.entries.get(template.signature)
        if entry is None:
            self.entries[template.signature] = TemplateEntry(
                template=template,
                centroid=features,
                structure=template_structure(template),
            )
        else:
            entry.update(features)
        return True

    def retrieve(
        self,
        question: str,
        k: int = 5,
        n_value_links: int = 0,
        n_table_links: int = 1,
    ) -> list[TemplateEntry]:
        """Top-k templates for a question.

        Ranking combines (most important first) the structural compatibility
        of the template with the question's digest, the learned feature
        centroid, and a frequency prior.
        """
        if not self.entries:
            return []
        features = question_features(question)
        q_struct = question_structure(question, n_value_links=n_value_links)
        scored = [
            (
                2.0 * compatibility(q_struct, entry.structure, n_table_links)
                + feature_similarity(features, entry.centroid)
                + 0.05 * np.log1p(entry.count),
                signature,
                entry,
            )
            for signature, entry in self.entries.items()
        ]
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [entry for _, _, entry in scored[:k]]

    def __len__(self) -> int:
        return len(self.entries)
