"""ValueNet-style system: grammar-based parsing over SemQL with value filling.

Follows the real ValueNet's recipe (Brunner & Stockinger 2021): encode the
question against the schema (here: schema linking + learned lexicon),
decode a SemQL tree (here: retrieve learned templates and fill their slots
from the links), then make the query executable by extracting *values* from
the question and the database content — ValueNet's distinguishing feature,
and the reason it profits most from in-domain data in Table 5.  The SemQL
grammar includes the paper's math-operator extension, so SDSS colour-cut
queries are representable once math templates were seen in training.

Every beam candidate is validated by execution; the best-scoring candidate
that runs is returned (grammar-constrained decoding never emits unparseable
SQL).
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.nl2sql.base import DomainContext, NLToSQLSystem
from repro.nl2sql.instantiate import GuidedInstantiator
from repro.semql.to_sql import semql_to_sql


class ValueNet(NLToSQLSystem):
    """Grammar/IR-based NL-to-SQL with value grounding."""

    name = "valuenet"

    def __init__(self, beam_size: int = 6, require_executable: bool = True) -> None:
        super().__init__()
        self.beam_size = beam_size
        self.require_executable = require_executable

    def _predict(self, question: str, context: DomainContext) -> str | None:
        links = self.link(question, context.db_id)
        instantiator = GuidedInstantiator(context.database, context.enhanced)
        # Distinct literal *texts*: one value matching both ends of a foreign
        # key is still a single mention.
        strong_values = len(
            {str(v.value).lower() for v in links.values if v.score >= 1.0}
        )
        entries = self.templates.retrieve(
            question,
            k=self.beam_size,
            n_value_links=strong_values,
            n_table_links=max(1, len(links.evidence_tables())),
        )

        best_sql: str | None = None
        best_score = float("-inf")
        for rank, entry in enumerate(entries):
            try:
                tree = instantiator.instantiate(entry.template, links, question)
                sql = semql_to_sql(tree, context.database.schema)
            except ReproError:
                continue
            result = context.database.try_execute(sql)
            if result is None and self.require_executable:
                continue
            score = self._score(rank, links, sql, bool(result and result.rows))
            if score > best_score:
                best_score = score
                best_sql = sql
        return best_sql

    def _score(self, rank: int, links, sql: str, nonempty: bool) -> float:
        """Prefer higher-ranked templates whose fill used linked evidence
        and did not hallucinate literals the question never mentioned."""
        from repro.sql import ast, parse

        score = -1.2 * float(rank)
        lowered = sql.lower()
        evidence_bonus = 0.0
        for (_table, column), weight in links.columns.items():
            if column in lowered:
                evidence_bonus += 0.1 * min(weight, 3.0)
        known_literals = {str(v.value).lower() for v in links.values}
        known_literals |= {f"{n:g}" for n in links.numbers}
        known_literals |= {str(int(n)) for n in links.numbers if float(n).is_integer()}
        for link in links.values[:5]:
            if str(link.value).lower() in lowered:
                evidence_bonus += 0.3
        score += min(evidence_bonus, 1.0)
        try:
            for literal in ast.literals(parse(sql)):
                if literal.value is None:
                    continue
                text = (
                    f"{literal.value:g}"
                    if isinstance(literal.value, float)
                    else str(literal.value)
                ).lower()
                if text not in known_literals:
                    score -= 0.8
        except ReproError:
            pass
        if nonempty:
            score += 0.3
        return score
