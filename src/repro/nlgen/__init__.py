"""SQL-to-NL surface realization: lexicons, the realizer and noise models."""

from repro.nlgen.lexicon import DomainLexicon, PhraseBook, render_value
from repro.nlgen.noise import corrupt
from repro.nlgen.realizer import CANONICAL_STYLE, Realizer, StyleProfile

__all__ = [
    "DomainLexicon",
    "PhraseBook",
    "Realizer",
    "StyleProfile",
    "CANONICAL_STYLE",
    "corrupt",
    "render_value",
]
