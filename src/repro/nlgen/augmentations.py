"""DBPal-style natural-language augmentation (the paper's footnote 9).

The paper's pipeline generates *new* questions with a language model; DBPal
(Weir et al., SIGMOD 2020) instead multiplies existing NL by rule-based
transformation — synonym substitution, random deletions, prefix rewriting.
The authors note DBPal "can easily be integrated in our pipeline to further
extend ScienceBenchmark with additional training data"; this module is that
integration point, and the ablation benchmark compares the two augmentation
styles.

All transformations are *meaning-preserving by construction* (they never
touch numbers, quoted values or domain terms outside the synonym bank), so
augmented pairs keep their gold SQL.
"""

from __future__ import annotations

import random
import re

from repro.datasets.records import NLSQLPair

#: Conservative synonym bank: only words whose swap cannot change the SQL.
SYNONYMS: dict[str, tuple[str, ...]] = {
    "find": ("show", "list", "return", "retrieve"),
    "show": ("find", "display", "list"),
    "list": ("show", "enumerate", "find"),
    "return": ("give", "find"),
    "count": ("tally",),
    "number": ("count", "amount"),
    "greater": ("larger", "higher", "bigger"),
    "smaller": ("lower", "lesser"),
    "above": ("over", "beyond"),
    "below": ("under",),
    "whose": ("where the", "for which the"),
    "each": ("every",),
    "average": ("mean",),
    "total": ("overall",),
}

#: Imperative/question prefixes that are mutually interchangeable.
PREFIXES = (
    "find", "show", "list", "return", "give me", "retrieve",
    "what is", "what are",
)

_REPLACEMENT_PREFIXES = (
    "Find", "Show", "List", "Return", "Give me", "Retrieve",
    "Could you find", "Please show", "I need", "Tell me",
)

#: Words that may be deleted without changing meaning.
_DELETABLE = frozenset("the a an please all of".split())

_TOKEN_RE = re.compile(r"[A-Za-z]+|[0-9.]+|'[^']*'|\S")


def substitute_synonyms(question: str, rng: random.Random, max_swaps: int = 2) -> str:
    """Swap up to ``max_swaps`` content words for bank synonyms."""
    tokens = question.split(" ")
    candidates = [
        i for i, token in enumerate(tokens) if token.lower().strip(".,?") in SYNONYMS
    ]
    rng.shuffle(candidates)
    for index in candidates[:max_swaps]:
        word = tokens[index]
        bare = word.lower().strip(".,?")
        replacement = rng.choice(SYNONYMS[bare])
        if word[0].isupper():
            replacement = replacement.capitalize()
        suffix = word[len(bare):] if word.lower().startswith(bare) else ""
        tokens[index] = replacement + suffix
    return " ".join(tokens)


def delete_random_word(question: str, rng: random.Random) -> str:
    """Drop one deletable filler word (DBPal's random-deletion op)."""
    tokens = question.split(" ")
    candidates = [i for i, t in enumerate(tokens) if t.lower() in _DELETABLE]
    if not candidates:
        return question
    index = rng.choice(candidates)
    return " ".join(tokens[:index] + tokens[index + 1:])


def rewrite_prefix(question: str, rng: random.Random) -> str:
    """Replace the leading verb phrase with an interchangeable one."""
    lowered = question.lower()
    for prefix in sorted(PREFIXES, key=len, reverse=True):
        if lowered.startswith(prefix):
            rest = question[len(prefix):]
            replacement = rng.choice(
                [p for p in _REPLACEMENT_PREFIXES if p.lower() != prefix]
            )
            return replacement + rest
    return question


_OPERATIONS = (substitute_synonyms, delete_random_word, rewrite_prefix)


def augment_question(question: str, rng: random.Random, n_ops: int = 2) -> str:
    """Apply ``n_ops`` randomly chosen transformations."""
    result = question
    operations = list(_OPERATIONS)
    rng.shuffle(operations)
    for operation in operations[:n_ops]:
        result = operation(result, rng)
    return result


def augment_pairs(
    pairs, factor: int = 1, seed: int = 0, n_ops: int = 2
) -> list[NLSQLPair]:
    """Produce ``factor`` augmented copies of every pair (SQL untouched).

    Copies whose question did not actually change are skipped, so the output
    size is at most ``factor * len(pairs)``.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    rng = random.Random(seed)
    augmented: list[NLSQLPair] = []
    for pair in pairs:
        seen = {pair.question}
        for _ in range(factor):
            question = augment_question(pair.question, rng, n_ops=n_ops)
            if question in seen:
                continue
            seen.add(question)
            augmented.append(
                NLSQLPair(
                    question=question,
                    sql=pair.sql,
                    db_id=pair.db_id,
                    source=f"{pair.source}+dbpal",
                )
            )
    return augmented
