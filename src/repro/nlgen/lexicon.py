"""Domain lexicons: how schema elements are verbalised in natural language.

Every dataset ships a :class:`DomainLexicon` mapping tables, columns and
selected values to the phrases its domain experts actually use ("specobj" →
"spectroscopically observed objects", ``subclass = 'STARBURST'`` → "Starburst
galaxies").  The realizer consults the lexicon when available and falls back
to the enhanced schema's readable aliases, then to the raw identifier — the
same information hierarchy the paper describes for its SQL-to-NL phase.

Lexicons are also what the *fine-tuning* of the simulated LLMs transfers: a
model fine-tuned on a domain's seed pairs gains access to that domain's
lexicon, exactly as GPT-3 picks up domain phrasing from seed NL/SQL pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.schema.enhanced import EnhancedSchema


@dataclass
class DomainLexicon:
    """Phrase inventory for one database domain.

    All keys are lower-cased identifiers; all phrase lists are ordered from
    most to least canonical (the realizer's default picks the first, the
    paraphrase sampler draws from the whole list).
    """

    name: str = "generic"
    table_phrases: dict[str, list[str]] = field(default_factory=dict)
    column_phrases: dict[tuple[str, str], list[str]] = field(default_factory=dict)
    value_phrases: dict[tuple[str, str, str], list[str]] = field(default_factory=dict)

    # -- construction helpers -------------------------------------------------

    def add_table(self, table: str, *phrases: str) -> None:
        self.table_phrases.setdefault(table.lower(), []).extend(phrases)

    def add_column(self, table: str, column: str, *phrases: str) -> None:
        key = (table.lower(), column.lower())
        self.column_phrases.setdefault(key, []).extend(phrases)

    def add_value(self, table: str, column: str, value, *phrases: str) -> None:
        key = (table.lower(), column.lower(), str(value).lower())
        self.value_phrases.setdefault(key, []).extend(phrases)

    def merge(self, other: "DomainLexicon") -> "DomainLexicon":
        """A new lexicon with ``other``'s phrases appended to this one's."""
        merged = DomainLexicon(name=f"{self.name}+{other.name}")
        for source in (self, other):
            for table, phrases in source.table_phrases.items():
                merged.table_phrases.setdefault(table, []).extend(phrases)
            for key, phrases in source.column_phrases.items():
                merged.column_phrases.setdefault(key, []).extend(phrases)
            for key, phrases in source.value_phrases.items():
                merged.value_phrases.setdefault(key, []).extend(phrases)
        return merged

    # -- phrase lookup -----------------------------------------------------------

    def tables(self, table: str) -> list[str]:
        return list(self.table_phrases.get(table.lower(), ()))

    def columns(self, table: str, column: str) -> list[str]:
        return list(self.column_phrases.get((table.lower(), column.lower()), ()))

    def values(self, table: str, column: str, value) -> list[str]:
        key = (table.lower(), column.lower(), str(value).lower())
        return list(self.value_phrases.get(key, ()))


@dataclass
class PhraseBook:
    """Resolved phrase lookup: lexicon first, enhanced schema second, raw name
    last.  This is the single surface the realizer and the equivalence judge
    share, which is what makes the judge a faithful reviewer of the
    realizer's output space."""

    enhanced: EnhancedSchema
    lexicon: DomainLexicon | None = None

    def table_phrases(self, table: str) -> list[str]:
        phrases: list[str] = []
        if self.lexicon is not None:
            phrases.extend(self.lexicon.tables(table))
        readable = self.enhanced.readable_table(table)
        if readable not in phrases:
            phrases.append(readable)
        plural = _pluralise(readable)
        if plural not in phrases:
            phrases.append(plural)
        return phrases

    def column_phrases(self, table: str, column: str) -> list[str]:
        phrases: list[str] = []
        if self.lexicon is not None:
            phrases.extend(self.lexicon.columns(table, column))
        readable = self.enhanced.readable_column(table, column)
        if readable not in phrases:
            phrases.append(readable)
        return phrases

    def value_phrases(self, table: str, column: str, value) -> list[str]:
        phrases: list[str] = []
        if self.lexicon is not None:
            phrases.extend(self.lexicon.values(table, column, value))
        phrases.append(render_value(value))
        return phrases


def render_value(value) -> str:
    """Default textual rendering of a literal value inside a question."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value.is_integer():
            return str(int(value))
        return f"{value:g}"
    return str(value)


_IRREGULAR_PLURALS = {
    "person": "people",
    "child": "children",
    "category": "categories",
    "country": "countries",
    "city": "cities",
    "company": "companies",
    "galaxy": "galaxies",
    "study": "studies",
    "entity": "entities",
    "activity": "activities",
    "subsidy": "subsidies",
}


def _pluralise(phrase: str) -> str:
    words = phrase.split(" ")
    last = words[-1]
    if last in _IRREGULAR_PLURALS:
        words[-1] = _IRREGULAR_PLURALS[last]
    elif last.endswith(("s", "x", "ch", "sh")):
        words[-1] = last + "es"
    elif last.endswith("y") and len(last) > 1 and last[-2] not in "aeiou":
        words[-1] = last[:-1] + "ies"
    else:
        words[-1] = last + "s"
    return " ".join(words)
