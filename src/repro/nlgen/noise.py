"""Semantic corruption of SemQL trees — the error model of simulated LLMs.

A real sequence-to-sequence SQL-to-NL model makes *fluent but wrong*
mistakes: it flips a comparison direction, drops a filter, verbalises the
wrong column, garbles a value.  We reproduce that failure mode by corrupting
the SemQL tree *before* realization, so the resulting question is perfectly
grammatical English that no longer means the SQL query — exactly the kind of
sample the paper's human experts reject in Tables 3 and 4.
"""

from __future__ import annotations

import random
from dataclasses import replace as dc_replace

from repro.schema.model import Schema
from repro.semql import nodes as sq

_FLIP = {">": "<", "<": ">", ">=": "<=", "<=": ">=", "=": "!=", "!=": "="}
_AGG_SWAP = {"max": "min", "min": "max", "avg": "sum", "sum": "avg", "count": "sum"}


def corrupt(z: sq.Z, schema: Schema, rng: random.Random) -> tuple[sq.Z, str]:
    """Apply one applicable corruption; returns (corrupted tree, kind).

    If no corruption applies (degenerate query), the tree is returned
    unchanged with kind ``"none"``.
    """
    operations = [
        ("flip_comparator", _flip_comparator),
        ("drop_condition", _drop_condition),
        ("swap_column", _swap_column),
        ("perturb_value", _perturb_value),
        ("wrong_aggregate", _wrong_aggregate),
        ("flip_order", _flip_order),
        ("drop_projection", _drop_projection),
    ]
    rng.shuffle(operations)
    for kind, operation in operations:
        corrupted = operation(z, schema, rng)
        if corrupted is not None:
            return corrupted, kind
    return z, "none"


# ---------------------------------------------------------------------------
# Individual corruption operators (each returns None when not applicable)
# ---------------------------------------------------------------------------


def _flip_comparator(z: sq.Z, schema: Schema, rng: random.Random) -> sq.Z | None:
    conditions = [c for c in sq.conditions_of(z) if c.op in _FLIP]
    if not conditions:
        return None
    target = rng.choice(conditions)
    flipped = dc_replace(target, op=_FLIP[target.op])
    return _replace_node(z, target, flipped)


def _drop_condition(z: sq.Z, schema: Schema, rng: random.Random) -> sq.Z | None:
    """Drop one arm of a binary filter node (needs at least two conditions)."""
    filter_nodes = [n for n in z.walk() if isinstance(n, sq.FilterNode)]
    if not filter_nodes:
        return None
    target = rng.choice(filter_nodes)
    keep = target.left if rng.random() < 0.5 else target.right
    return _replace_node(z, target, keep)


def _swap_column(z: sq.Z, schema: Schema, rng: random.Random) -> sq.Z | None:
    leaves = [
        n
        for n in z.walk()
        if isinstance(n, sq.ColumnLeaf) and isinstance(n.table, sq.TableLeaf)
    ]
    rng.shuffle(leaves)
    for leaf in leaves:
        table = schema.table(leaf.table.name)
        alternatives = [
            c.name for c in table.columns if c.name.lower() != leaf.name.lower()
        ]
        if not alternatives:
            continue
        swapped = sq.ColumnLeaf(table=leaf.table, name=rng.choice(alternatives))
        return _replace_node(z, leaf, swapped)
    return None


def _perturb_value(z: sq.Z, schema: Schema, rng: random.Random) -> sq.Z | None:
    values = [n for n in z.walk() if isinstance(n, sq.ValueLeaf) and n.value is not None]
    if not values:
        return None
    target = rng.choice(values)
    value = target.value
    if isinstance(value, bool):
        perturbed: object = not value
    elif isinstance(value, int):
        perturbed = value + rng.choice([-10, -3, -1, 1, 3, 10]) or value + 1
    elif isinstance(value, float):
        perturbed = round(value * rng.choice([0.5, 2.0, 10.0]) + 0.1, 4)
    else:
        text = str(value)
        perturbed = text[: max(1, len(text) // 2)] if len(text) > 3 else text + "x"
    return _replace_node(z, target, sq.ValueLeaf(value=perturbed))


def _wrong_aggregate(z: sq.Z, schema: Schema, rng: random.Random) -> sq.Z | None:
    attributes = [a for a in sq.attributes_of(z) if a.agg in _AGG_SWAP]
    if not attributes:
        return None
    target = rng.choice(attributes)
    swapped = dc_replace(target, agg=_AGG_SWAP[target.agg])
    return _replace_node(z, target, swapped)


def _flip_order(z: sq.Z, schema: Schema, rng: random.Random) -> sq.Z | None:
    orders = [n for n in z.walk() if isinstance(n, sq.Order)]
    if not orders:
        return None
    target = orders[0]
    flipped = dc_replace(
        target, direction="asc" if target.direction == "desc" else "desc"
    )
    return _replace_node(z, target, flipped)


def _drop_projection(z: sq.Z, schema: Schema, rng: random.Random) -> sq.Z | None:
    selects = [
        n for n in z.walk() if isinstance(n, sq.SemSelect) and len(n.attributes) > 1
    ]
    if not selects:
        return None
    target = selects[0]
    drop_index = rng.randrange(len(target.attributes))
    attributes = tuple(
        a for i, a in enumerate(target.attributes) if i != drop_index
    )
    return _replace_node(z, target, dc_replace(target, attributes=attributes))


def _replace_node(z: sq.Z, old: sq.SemNode, new: sq.SemNode) -> sq.Z:
    """Rebuild the tree with the *first* occurrence of ``old`` replaced."""
    replaced = False

    def swap(node: sq.SemNode) -> sq.SemNode:
        nonlocal replaced
        if not replaced and node == old:
            replaced = True
            return new
        return node

    result = sq.map_tree(z, swap)
    assert isinstance(result, sq.Z)
    return result
