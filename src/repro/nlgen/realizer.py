"""Grammar-based SQL-to-NL surface realization.

This module is the generation engine underneath the simulated LLMs of
:mod:`repro.llm`: given a SemQL tree (or SQL string) it produces fluent
English questions compositionally, drawing table/column/value phrases from a
:class:`~repro.nlgen.lexicon.PhraseBook` and sampling synonyms per
realization so that repeated calls yield linguistically diverse candidates —
the paper generates 8 candidates per SQL query for exactly this reason.

The *style profile* biases which synonym each slot picks.  References in the
benchmark are realized with the canonical style; simulated models realize
with their own style offsets, which is what separates their BLEU scores in
Table 3 while leaving semantics intact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import SemQLError
from repro.nlgen.lexicon import DomainLexicon, PhraseBook, render_value
from repro.schema.enhanced import EnhancedSchema
from repro.semql import nodes as sq
from repro.semql.from_sql import sql_to_semql
from repro.sql import parse


@dataclass(frozen=True)
class StyleProfile:
    """Synonym-selection bias of one generator.

    ``canonical_bias`` is the probability of picking a list's canonical
    (first) entry; otherwise a uniform draw over the list, rotated by
    ``offset`` — different offsets produce systematically different surface
    vocabulary with identical meaning.
    """

    name: str = "canonical"
    canonical_bias: float = 0.55
    offset: int = 0

    def pick(self, rng: random.Random, options: list[str]) -> str:
        if not options:
            raise ValueError("no options to pick from")
        if len(options) == 1:
            return options[0]
        rotated = options[self.offset % len(options):] + options[: self.offset % len(options)]
        if rng.random() < self.canonical_bias:
            return rotated[0]
        return rng.choice(rotated)


CANONICAL_STYLE = StyleProfile()

_VERBS = ["Find", "Show", "List", "Return", "Give me", "Retrieve"]
_WH_HEADS = ["What are", "What is"]

_AGG_WORDS = {
    "max": ["maximum", "highest", "largest"],
    "min": ["minimum", "lowest", "smallest"],
    "avg": ["average", "mean"],
    "sum": ["total", "summed"],
    "count": ["number of", "count of"],
}

_MATH_WORDS = {
    "-": ["difference of", "difference between"],
    "+": ["sum of", "total of"],
    "*": ["product of"],
    "/": ["ratio of"],
}

_COMPARATORS = {
    ">": ["greater than", "more than", "above", "larger than", "higher than", "over"],
    "<": ["less than", "smaller than", "below", "lower than", "under"],
    ">=": ["at least", "greater than or equal to", "no less than"],
    "<=": ["at most", "less than or equal to", "no more than"],
    "=": ["equal to", "exactly"],
    "!=": ["not equal to", "different from", "other than"],
}

_SET_CONNECTORS = {
    "union": [", as well as ", ", together with ", ", plus "],
    "intersect": [" that also match ", " intersected with "],
    "except": [", excluding ", ", leaving out "],
}


class Realizer:
    """Realizes SemQL trees (or SQL) into English questions."""

    def __init__(
        self,
        enhanced: EnhancedSchema,
        lexicon: DomainLexicon | None = None,
        style: StyleProfile = CANONICAL_STYLE,
    ) -> None:
        self.enhanced = enhanced
        self.phrases = PhraseBook(enhanced=enhanced, lexicon=lexicon)
        self.style = style

    # -- public API -------------------------------------------------------------

    def realize_sql(self, sql: str, rng: random.Random) -> str:
        """Realize a SQL string (must be within the SemQL subset)."""
        z = sql_to_semql(parse(sql), self.enhanced.schema)
        return self.realize(z, rng)

    def candidates(self, z_or_sql, n: int, rng: random.Random) -> list[str]:
        """Generate ``n`` candidate questions (the paper uses n = 8)."""
        if isinstance(z_or_sql, str):
            z = sql_to_semql(parse(z_or_sql), self.enhanced.schema)
        else:
            z = z_or_sql
        return [self.realize(z, rng) for _ in range(n)]

    def realize(self, z: sq.Z, rng: random.Random) -> str:
        """Realize a full SemQL tree into one question."""
        if sq.is_template(z):
            raise SemQLError("cannot realize a template — instantiate it first")
        body = self._realize_r(z.left, rng)
        if z.set_op is not None and z.right is not None:
            connector = self.style.pick(rng, _SET_CONNECTORS[z.set_op])
            right = self._realize_r(z.right, rng, as_clause=True)
            body = f"{body}{connector}{right}"
        if body.lower().startswith(("what", "how", "which")):
            return body[0].upper() + body[1:] + "?"
        return body[0].upper() + body[1:] + "."

    # -- R realization ----------------------------------------------------------

    def _realize_r(self, r: sq.R, rng: random.Random, as_clause: bool = False) -> str:
        select = r.select
        main_table = self._main_table(r)
        subject = self.style.pick(rng, self.phrases.table_phrases(main_table))

        filter_clause = ""
        if r.filter is not None:
            filter_clause = " " + self._realize_filter(r.filter, main_table, rng)

        group_clause = ""
        group = select.group if select.group is not None else self._inferred_group(select)
        if group:
            parts = [self._column_phrase(c, main_table, rng) for c in group]
            group_clause = f" for each {self._join_and(parts)}"

        order_clause = self._realize_order(r.order, main_table, rng) if r.order else ""

        only_count_star = (
            len(select.attributes) == 1
            and select.attributes[0].agg == "count"
            and isinstance(select.attributes[0].column, sq.StarLeaf)
        )
        if only_count_star and not as_clause:
            if rng.random() < 0.5 and not group_clause:
                return f"how many {subject} are there{filter_clause}{order_clause}"
            head = self.style.pick(rng, ["Find", "Count", "Show"])
            return (
                f"{head.lower()} the number of {subject}"
                f"{filter_clause}{group_clause}{order_clause}"
            )

        attr_parts = [
            self._attribute_phrase(a, main_table, subject, rng)
            for a in select.attributes
        ]
        attrs = self._join_and(attr_parts)
        if select.distinct:
            attrs = f"the distinct values of {attrs.removeprefix('the ')}" \
                if attrs.startswith("the ") else f"distinct {attrs}"

        if as_clause:
            return f"{attrs} of {subject}{filter_clause}{group_clause}{order_clause}"

        if rng.random() < 0.3:
            head = self.style.pick(rng, _WH_HEADS)
            return (
                f"{head.lower()} {attrs} of {subject}"
                f"{filter_clause}{group_clause}{order_clause}"
            )
        verb = self.style.pick(rng, _VERBS)
        return (
            f"{verb.lower()} {attrs} of {subject}"
            f"{filter_clause}{group_clause}{order_clause}"
        )

    def _main_table(self, r: sq.R) -> str:
        if isinstance(r.from_table, sq.TableLeaf):
            return r.from_table.name
        tables = sq.tables_of(r.select)
        if not tables:
            tables = sq.tables_of(r)
        if not tables:
            raise SemQLError("no tables to realize")
        return tables[0]

    def _inferred_group(self, select: sq.SemSelect):
        aggregated = [a for a in select.attributes if a.is_aggregated]
        plain = [a for a in select.attributes if not a.is_aggregated]
        if aggregated and plain:
            return tuple(a.column for a in plain)
        return ()

    # -- attributes ----------------------------------------------------------------

    def _attribute_phrase(
        self, a: sq.A, main_table: str, subject: str, rng: random.Random
    ) -> str:
        if isinstance(a.column, sq.StarLeaf):
            if a.agg == "count":
                return f"the number of {subject}"
            return f"all information about {subject}"
        column = self._column_phrase(a.column, main_table, rng)
        if a.agg == "none":
            return f"the {column}"
        if a.agg == "count" and a.distinct:
            return f"the number of distinct {column}"
        word = self.style.pick(rng, _AGG_WORDS[a.agg])
        if a.agg == "count":
            return f"the {word} {column}"
        return f"the {word} {column}"

    def _column_phrase(self, column: sq.SemNode, main_table: str, rng: random.Random) -> str:
        if isinstance(column, sq.ColumnLeaf):
            table = column.table.name if isinstance(column.table, sq.TableLeaf) else main_table
            phrase = self.style.pick(rng, self.phrases.column_phrases(table, column.name))
            if table.lower() != main_table.lower():
                owner = self.style.pick(rng, self.phrases.table_phrases(table))
                return f"{phrase} of the {owner}"
            return phrase
        if isinstance(column, sq.MathExpr):
            word = self.style.pick(rng, _MATH_WORDS[column.op])
            left = self._column_phrase(column.left, main_table, rng)
            right = self._column_phrase(column.right, main_table, rng)
            return f"{word} {left} and {right}"
        if isinstance(column, sq.StarLeaf):
            return "records"
        raise SemQLError(f"cannot realize column node {type(column).__name__}")

    # -- filters --------------------------------------------------------------------

    def _realize_filter(self, node, main_table: str, rng: random.Random) -> str:
        if isinstance(node, sq.FilterNode):
            left = self._realize_filter(node.left, main_table, rng)
            right = self._realize_condition_tail(node.right, main_table, rng)
            connector = "and" if node.op == "and" else "or"
            return f"{left} {connector} {right}"
        return "whose " + self._condition_body(node, main_table, rng)

    def _realize_condition_tail(self, node, main_table: str, rng: random.Random) -> str:
        if isinstance(node, sq.FilterNode):
            return self._realize_filter(node, main_table, rng).removeprefix("whose ")
        return self._condition_body(node, main_table, rng)

    def _condition_body(self, condition: sq.Condition, main_table: str, rng: random.Random) -> str:
        attribute = condition.attribute
        column = self._attribute_phrase(attribute, main_table, "records", rng).removeprefix(
            "the "
        )

        if condition.subquery is not None:
            return self._subquery_condition(condition, column, main_table, rng)

        if condition.op == "between":
            low = self._value_phrase(attribute, condition.value, rng)
            high = self._value_phrase(attribute, condition.value2, rng)
            template = self.style.pick(
                rng, ["is between {a} and {b}", "lies in the range {a} to {b}"]
            )
            return f"{column} {template.format(a=low, b=high)}"

        if condition.op in ("like", "not_like"):
            raw = condition.value.value if isinstance(condition.value, sq.ValueLeaf) else ""
            needle = str(raw).strip("%").replace("%", " ")
            word = self.style.pick(rng, ["contains", "includes"])
            if condition.op == "not_like":
                word = f"does not {word.rstrip('s')}" if word.endswith("s") else f"does not {word}"
            return f"{column} {word} {needle}"

        value = self._value_phrase(attribute, condition.value, rng)
        if condition.op == "=":
            verb = self.style.pick(rng, ["is", "equals", "is exactly"])
            return f"{column} {verb} {value}"
        if condition.op == "!=":
            comparator = self.style.pick(rng, _COMPARATORS["!="])
            return f"{column} is {comparator} {value}"
        comparator = self.style.pick(rng, _COMPARATORS[condition.op])
        return f"{column} is {comparator} {value}"

    def _subquery_condition(
        self, condition: sq.Condition, column: str, main_table: str, rng: random.Random
    ) -> str:
        sub = condition.subquery
        sub_attr = sub.select.attributes[0]
        sub_table = self._main_table(sub)
        sub_subject = self.style.pick(rng, self.phrases.table_phrases(sub_table))
        sub_filter = ""
        if sub.filter is not None:
            sub_filter = " " + self._realize_filter(sub.filter, sub_table, rng)

        if condition.op in ("in", "not_in"):
            sub_col = self._attribute_phrase(sub_attr, sub_table, sub_subject, rng)
            word = "appears among" if condition.op == "in" else "does not appear among"
            return f"{column} {word} {sub_col} of {sub_subject}{sub_filter}"

        sub_phrase = self._attribute_phrase(sub_attr, sub_table, sub_subject, rng)
        comparator = self.style.pick(
            rng, _COMPARATORS.get(condition.op, ["compared to"])
        )
        if condition.op == "=":
            comparator = "equal to"
        return (
            f"{column} is {comparator} {sub_phrase} of all "
            f"{sub_subject}{sub_filter}"
        )

    def _value_phrase(self, attribute: sq.A, value, rng: random.Random) -> str:
        if not isinstance(value, sq.ValueLeaf):
            raise SemQLError("filter value is not concrete")
        if isinstance(attribute.column, sq.ColumnLeaf):
            column = attribute.column
            table = column.table.name if isinstance(column.table, sq.TableLeaf) else ""
            options = self.phrases.value_phrases(table, column.name, value.value)
            return self.style.pick(rng, options)
        return render_value(value.value)

    # -- order ---------------------------------------------------------------------

    def _realize_order(self, order: sq.Order, main_table: str, rng: random.Random) -> str:
        attr = self._attribute_phrase(order.attribute, main_table, "records", rng)
        bare = attr.removeprefix("the ")
        if order.limit == 1:
            word = "highest" if order.direction == "desc" else "lowest"
            return f" with the {word} {bare}"
        if order.limit is not None:
            word = "largest" if order.direction == "desc" else "smallest"
            return f", limited to the {order.limit} {word} by {bare}"
        direction = "descending" if order.direction == "desc" else "ascending"
        template = self.style.pick(
            rng, [" sorted by {a} in {d} order", " ordered by {a} {d}"]
        )
        return template.format(a=bare, d=direction)

    # -- helpers -------------------------------------------------------------------

    @staticmethod
    def _join_and(parts: list[str]) -> str:
        if len(parts) == 1:
            return parts[0]
        return ", ".join(parts[:-1]) + " and " + parts[-1]
