"""``repro.obs`` — unified observability: structured tracing + metrics.

The subsystem has three pieces:

* **Tracing** (:mod:`repro.obs.tracer`): a :class:`Tracer` records
  hierarchical :class:`~repro.obs.span.Span` trees across threads, asyncio
  tasks and the runtime's process-pool boundary.  Off by default — the
  process-wide tracer is :data:`NULL_TRACER` until :func:`set_tracer`
  installs a real one (the ``sciencebenchmark trace`` CLI wrapper does), so
  instrumented hot paths cost almost nothing when tracing is off.
* **Metrics** (:mod:`repro.obs.metrics`): a thread-safe
  :class:`MetricsRegistry` of counters, gauges and fixed-bucket histograms,
  with one shared latency-bucket layout for the whole repo.
* **Exporters** (:mod:`repro.obs.export`): Chrome ``trace_event`` JSON,
  a JSONL span log, and a terminal flame summary.

Determinism contract: span ids come from counters (no RNG), tracing reads
the injectable clock only, and no instrument feeds any content hash — so
artifact bytes are identical with tracing on or off, and enabling tracing
cannot shift a seeded random stream.
"""

from __future__ import annotations

from repro.obs.export import (
    chrome_trace,
    flame_summary,
    validate_span_log,
    write_chrome_trace,
    write_span_log,
)
from repro.obs.metrics import (
    LATENCY_BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    geometric_bounds,
    merged_snapshot,
)
from repro.obs.span import Span, SpanEvent
from repro.obs.tracer import NULL_SPAN, NULL_TRACER, NullTracer, Tracer

__all__ = [
    "LATENCY_BUCKET_BOUNDS",
    "NULL_SPAN",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "SpanEvent",
    "Tracer",
    "chrome_trace",
    "current_trace_path",
    "flame_summary",
    "geometric_bounds",
    "get_tracer",
    "merged_snapshot",
    "set_trace_path",
    "set_tracer",
    "use_tracer",
    "validate_span_log",
    "write_chrome_trace",
    "write_span_log",
]

#: The process-wide tracer consulted by every instrumented module.
_active_tracer = NULL_TRACER

#: Where the current ``trace`` CLI invocation will write its artifact, so
#: benchmark reports produced under it can reference the trace file.
_trace_path: str | None = None


def get_tracer():
    """The active tracer (:data:`NULL_TRACER` unless tracing is on)."""
    return _active_tracer


def set_tracer(tracer) -> object:
    """Install ``tracer`` process-wide; returns the previous one."""
    global _active_tracer
    previous = _active_tracer
    _active_tracer = tracer if tracer is not None else NULL_TRACER
    return previous


class _UseTracer:
    """Context manager installing a tracer for the duration of a block."""

    def __init__(self, tracer) -> None:
        self._tracer = tracer
        self._previous = None

    def __enter__(self):
        self._previous = set_tracer(self._tracer)
        return self._tracer

    def __exit__(self, *exc_info) -> bool:
        set_tracer(self._previous)
        return False


def use_tracer(tracer) -> _UseTracer:
    """``with use_tracer(Tracer()) as tracer: ...`` — scoped installation."""
    return _UseTracer(tracer)


def current_trace_path() -> str | None:
    """The trace artifact path of the enclosing ``trace`` run, if any."""
    return _trace_path


def set_trace_path(path: str | None) -> str | None:
    """Record the planned trace artifact path; returns the previous value."""
    global _trace_path
    previous = _trace_path
    _trace_path = path
    return previous
