"""Trace exporters: Chrome ``trace_event`` JSON, a JSONL span log, and a
terminal flame summary.

* :func:`write_chrome_trace` emits the classic ``traceEvents`` array of
  complete (``"ph": "X"``) events plus thread/process-name metadata; the
  file loads directly in ``chrome://tracing`` and Perfetto.
* :func:`write_span_log` emits one JSON object per span (schema checked by
  :func:`validate_span_log`, which CI runs against every uploaded trace).
* :func:`flame_summary` aggregates the span tree by name-path and renders a
  top-down table of total/self time — the "where did the time go" answer
  without leaving the terminal.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.span import Span

#: Keys every span-log record must carry (see :meth:`Span.to_dict`).
SPAN_LOG_REQUIRED_KEYS = (
    "span_id",
    "parent_id",
    "name",
    "start_s",
    "duration_s",
    "status",
    "pid",
    "thread",
    "attrs",
    "events",
)


def _finished(spans) -> list[Span]:
    return [span for span in spans if span.end_s is not None]


# -- Chrome trace_event --------------------------------------------------------


def chrome_trace(spans) -> dict:
    """The ``trace_event`` document for a list of spans."""
    spans = sorted(_finished(spans), key=lambda s: s.start_s)
    tids: dict[tuple[int, str], int] = {}
    for span in spans:
        tids.setdefault((span.pid, span.thread), len(tids) + 1)

    events: list[dict] = []
    for (pid, thread), tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread},
            }
        )
    for span in spans:
        tid = tids[(span.pid, span.thread)]
        events.append(
            {
                "name": span.name,
                "cat": "repro" if span.status == "ok" else "repro,error",
                "ph": "X",
                "pid": span.pid,
                "tid": tid,
                "ts": round(span.start_s * 1e6, 3),
                "dur": round(span.duration_s * 1e6, 3),
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "status": span.status,
                    **span.attrs,
                },
            }
        )
        for event in span.events:
            events.append(
                {
                    "name": event.name,
                    "cat": "repro",
                    "ph": "i",
                    "s": "t",
                    "pid": span.pid,
                    "tid": tid,
                    "ts": round(event.time_s * 1e6, 3),
                    "args": dict(event.attrs),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(spans)) + "\n")
    return path


# -- JSONL span log ------------------------------------------------------------


def write_span_log(spans, path: str | Path) -> Path:
    """One JSON object per finished span, in start order."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    ordered = sorted(_finished(spans), key=lambda s: (s.start_s, s.span_id))
    with path.open("w") as handle:
        for span in ordered:
            handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
    return path


def validate_span_log(path: str | Path) -> int:
    """Check a span log against the schema; returns the span count.

    Raises :class:`ValueError` on the first malformed record: missing keys,
    wrong types, duplicate span ids, or a parent id that resolves to no
    span in the log.
    """
    seen: set[str] = set()
    parents: list[tuple[int, str]] = []
    with Path(path).open() as handle:
        for line_no, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"line {line_no}: not JSON ({exc})") from None
            missing = [key for key in SPAN_LOG_REQUIRED_KEYS if key not in record]
            if missing:
                raise ValueError(f"line {line_no}: missing keys {missing}")
            if not isinstance(record["span_id"], str) or not record["span_id"]:
                raise ValueError(f"line {line_no}: span_id must be a non-empty string")
            if record["span_id"] in seen:
                raise ValueError(f"line {line_no}: duplicate span_id {record['span_id']!r}")
            seen.add(record["span_id"])
            if record["parent_id"] is not None and not isinstance(record["parent_id"], str):
                raise ValueError(f"line {line_no}: parent_id must be null or a string")
            for key in ("start_s", "duration_s"):
                if not isinstance(record[key], (int, float)) or record[key] < 0:
                    raise ValueError(f"line {line_no}: {key} must be a non-negative number")
            if record["status"] not in ("ok", "error"):
                raise ValueError(f"line {line_no}: status {record['status']!r}")
            if not isinstance(record["attrs"], dict) or not isinstance(record["events"], list):
                raise ValueError(f"line {line_no}: attrs must be an object, events a list")
            if record["parent_id"] is not None:
                parents.append((line_no, record["parent_id"]))
    for line_no, parent_id in parents:
        if parent_id not in seen:
            raise ValueError(f"line {line_no}: parent_id {parent_id!r} not in log")
    return len(seen)


# -- flame summary -------------------------------------------------------------


class _FlameNode:
    __slots__ = ("count", "total_s", "self_s", "children")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.self_s = 0.0
        self.children: dict[str, _FlameNode] = {}


def flame_summary(spans, max_lines: int = 40) -> str:
    """Aggregate the span forest by name-path and render a flame table."""
    spans = _finished(spans)
    by_id = {span.span_id: span for span in spans}
    children: dict[str, list[Span]] = {}
    roots: list[Span] = []
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)

    def fold(span: Span, nodes: dict[str, _FlameNode]) -> None:
        node = nodes.setdefault(span.name, _FlameNode())
        node.count += 1
        node.total_s += span.duration_s
        child_time = 0.0
        for child in children.get(span.span_id, ()):
            child_time += child.duration_s
            fold(child, node.children)
        node.self_s += max(0.0, span.duration_s - child_time)

    top: dict[str, _FlameNode] = {}
    for root in sorted(roots, key=lambda s: s.start_s):
        fold(root, top)

    lines = [f"== trace flame ({len(spans)} spans) ==",
             f"{'span':<48} {'count':>6} {'total':>10} {'self':>10}"]
    truncated = [0]

    def render(nodes: dict[str, _FlameNode], depth: int) -> None:
        ordered = sorted(nodes.items(), key=lambda kv: -kv[1].total_s)
        for name, node in ordered:
            if len(lines) >= max_lines + 2:
                truncated[0] += 1 + _count(node.children)
                continue
            label = ("  " * depth + name)[:48]
            lines.append(
                f"{label:<48} {node.count:>6} {node.total_s:>9.3f}s {node.self_s:>9.3f}s"
            )
            render(node.children, depth + 1)

    def _count(nodes: dict[str, _FlameNode]) -> int:
        return sum(1 + _count(node.children) for node in nodes.values())

    render(top, 0)
    if truncated[0]:
        lines.append(f"… {truncated[0]} more rows (raise max_lines to see them)")
    return "\n".join(lines)
