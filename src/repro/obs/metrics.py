"""A thread-safe registry of counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` is the single accounting surface for a run:
the serving layer, the task-graph runtime and the resilience layer all
register their instruments here instead of growing bespoke stat structs, so
one snapshot correlates a whole run.

Histogram bucket boundaries are defined once (:data:`LATENCY_BUCKET_BOUNDS`,
geometric ≈50µs … ≈80s) and shared by every latency histogram in the repo —
previously the serving module owned a private copy, which made its
percentiles incomparable with the load generator's exact-sample math at the
bucket edges.
"""

from __future__ import annotations

import bisect
from repro.checks.lockorder import new_lock


def geometric_bounds(
    first_bound_s: float = 0.00005, growth: float = 1.5, buckets: int = 48
) -> tuple[float, ...]:
    """Geometric bucket upper bounds; the final bucket is implicit overflow."""
    bounds = []
    bound = first_bound_s
    for _ in range(buckets):
        bounds.append(bound)
        bound *= growth
    return tuple(bounds)


#: The one latency bucket layout (≈50µs … ≈80s).  Every duration histogram
#: in the repo uses these boundaries unless it has a documented reason not to.
LATENCY_BUCKET_BOUNDS = geometric_bounds()


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "_lock", "_value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = new_lock("obs.metrics.instrument")
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self):
        return self._value


class Gauge:
    """A value that goes up and down (queue depth, open breakers, …)."""

    __slots__ = ("name", "_lock", "_value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = new_lock("obs.metrics.instrument")
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self):
        return self._value


class Histogram:
    """Fixed-bucket histogram with interpolated quantiles.

    Recording is O(log buckets) with constant memory regardless of volume;
    quantiles interpolate within the winning bucket and clamp to the exact
    observed maximum.  Values are in whatever unit the caller observes
    (seconds for every latency histogram in this repo).
    """

    kind = "histogram"

    def __init__(self, bounds: tuple[float, ...] = LATENCY_BUCKET_BOUNDS) -> None:
        self.name = ""
        self._bounds = list(bounds)
        self._counts = [0] * (len(self._bounds) + 1)
        self._lock = new_lock("obs.metrics.instrument")
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    @property
    def bounds(self) -> tuple[float, ...]:
        return tuple(self._bounds)

    def observe(self, value: float) -> None:
        with self._lock:
            self._counts[bisect.bisect_left(self._bounds, value)] += 1
            self.count += 1
            self.total += value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile (0 when nothing was observed)."""
        if not self.count:
            return 0.0
        rank = max(1, int(q * self.count + 0.5))
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            if not bucket_count:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                lower = self._bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self._bounds[index] if index < len(self._bounds) else self.max
                )
                fraction = (rank - previous) / bucket_count
                return min(lower + (upper - lower) * fraction, self.max)
        return self.max

    def merge(self, other: "Histogram") -> None:
        if other._bounds != self._bounds:
            raise ValueError("cannot merge histograms with different bounds")
        with self._lock:
            for index, bucket_count in enumerate(other._counts):
                self._counts[index] += bucket_count
            self.count += other.count
            self.total += other.total
            self.max = max(self.max, other.max)

    def summary(self) -> dict:
        """Count / mean / p50 / p95 / p99 / max in the observed unit."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self.max,
        }

    def snapshot(self):
        return self.summary()


class MetricsRegistry:
    """Create-or-get registry of named instruments.

    ``counter``/``gauge``/``histogram`` return the existing instrument when
    the name is already registered (raising on a kind mismatch), so modules
    can share instruments by name without coordinating construction order.
    """

    def __init__(self) -> None:
        self._lock = new_lock("obs.metrics.registry")
        self._instruments: dict[str, object] = {}

    def _get_or_create(self, name: str, kind: str, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                instrument.name = name
                self._instruments[name] = instrument
            elif instrument.kind != kind:
                raise TypeError(
                    f"metric {name!r} is a {instrument.kind}, not a {kind}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, "counter", lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, "gauge", lambda: Gauge(name))

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] | None = None,
        cls: type = Histogram,
    ) -> Histogram:
        return self._get_or_create(
            name, "histogram", lambda: cls(bounds or LATENCY_BUCKET_BOUNDS)
        )

    # -- conveniences ---------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def get(self, name: str):
        return self._instruments.get(name)

    def snapshot(self) -> dict:
        """``{name: {"kind": ..., "value": ...}}`` for every instrument."""
        with self._lock:
            instruments = dict(self._instruments)
        return {
            name: {"kind": instrument.kind, "value": instrument.snapshot()}
            for name, instrument in sorted(instruments.items())
        }


def merged_snapshot(parts: dict[str, MetricsRegistry]) -> dict:
    """One snapshot over several registries, instrument names prefixed.

    The serving fleet uses this to present itself as a single accounting
    surface: ``{"": router_registry, "replica.r0": ..., "replica.r1": ...}``
    merges into one dict where every replica's ``serving.*`` instruments
    appear under ``replica.<slot>.serving.*`` next to the router's own
    ``fleet.*`` counters — one view shows the whole fleet.  An empty-string
    prefix merges a registry's instruments unprefixed.
    """
    merged: dict[str, dict] = {}
    for prefix in sorted(parts):
        for name, entry in parts[prefix].snapshot().items():
            merged[f"{prefix}.{name}" if prefix else name] = entry
    return merged
