"""The span model: one named, timed region of work in a trace tree.

A :class:`Span` is deliberately a plain picklable dataclass — spans recorded
inside a pool worker are shipped back to the parent process with the task
result and adopted into the parent's tracer, so the model must cross the
process boundary unchanged.  Span identity is a string allocated from a
per-tracer counter (never from ``random``), which is what guarantees that
tracing consumes no artifact RNG stream: enabling a tracer cannot shift any
seeded sequence by even one draw.

Times are monotonic seconds from the tracer's injectable clock
(:mod:`repro.resilience.clock`); on Linux ``CLOCK_MONOTONIC`` is
system-wide, so parent- and worker-process spans share one timeline.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field


@dataclass
class SpanEvent:
    """A point-in-time annotation inside a span (retry, cache miss, …)."""

    name: str
    time_s: float
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"name": self.name, "time_s": self.time_s, "attrs": dict(self.attrs)}


@dataclass
class Span:
    """One traced region: name, identity, parentage, timing, annotations.

    A span is owned by the thread that opened it; only that thread mutates
    it (the tracer's shared state is the span *list*, which is locked).
    """

    name: str
    span_id: str
    parent_id: str | None
    start_s: float
    end_s: float | None = None
    status: str = "ok"
    attrs: dict = field(default_factory=dict)
    events: list = field(default_factory=list)
    pid: int = field(default_factory=os.getpid)
    thread: str = field(default_factory=lambda: threading.current_thread().name)

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "pid": self.pid,
            "thread": self.thread,
            "attrs": dict(self.attrs),
            "events": [event.to_dict() for event in self.events],
        }
