"""Tracers: hierarchical span recording with near-zero off-by-default cost.

Two implementations share one duck-typed surface:

* :class:`Tracer` records :class:`~repro.obs.span.Span` trees.  The current
  span lives in a :mod:`contextvars` variable, so parent links propagate
  automatically through nested calls and ``asyncio`` tasks (task creation
  copies the context).  Threads and pool workers do not inherit context;
  callers there pass an explicit ``parent`` (a span or a span id — ids are
  how parentage crosses the process-pool boundary).
* :data:`NULL_TRACER` is the default: every operation is a constant-time
  no-op returning the singleton :data:`NULL_SPAN`, so instrumented hot
  paths (the engine executor, the serving request path) pay one attribute
  check and one cheap call when tracing is off.

Span ids come from a locked counter, optionally prefixed — worker processes
prefix with a per-submission tag so adopted span ids can never collide with
the parent tracer's.  No randomness is involved anywhere.
"""

from __future__ import annotations

from contextvars import ContextVar

from repro.checks.lockorder import new_lock
from repro.obs.span import Span, SpanEvent
from repro.resilience.clock import SYSTEM_CLOCK

#: The innermost open span of the current execution context.
_CURRENT: ContextVar[Span | None] = ContextVar("repro_obs_current_span", default=None)


class _NullSpan:
    """Singleton stand-in for a span when tracing is off; absorbs the whole
    span API (context manager included) without allocating anything."""

    __slots__ = ()
    name = ""
    span_id = ""
    parent_id = None
    status = "ok"
    finished = True
    duration_s = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_attr(self, key: str, value) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """The off switch: every method is a no-op (see module docstring)."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, parent=None, **attrs) -> _NullSpan:
        return NULL_SPAN

    def start_span(self, name: str, parent=None, **attrs) -> _NullSpan:
        return NULL_SPAN

    def end_span(self, span, status: str | None = None) -> None:
        pass

    def event(self, name: str, **attrs) -> None:
        pass

    def add_event(self, span, name: str, **attrs) -> None:
        pass

    def adopt(self, spans) -> None:
        pass

    def current(self) -> None:
        return None

    def finished(self) -> list:
        return []


NULL_TRACER = NullTracer()


class _ActiveSpan:
    """Context manager binding one open span to the current context."""

    __slots__ = ("_tracer", "span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._token = None

    def __enter__(self) -> Span:
        self._token = _CURRENT.set(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        _CURRENT.reset(self._token)
        if exc_type is not None and self.span.status == "ok":
            self.span.status = "error"
            self.span.attrs.setdefault("error", exc_type.__name__)
        self._tracer.end_span(self.span)
        return False


class Tracer:
    """Records span trees against an injectable monotonic clock.

    Thread-safe: spans may be opened and closed from any thread; the span
    list and the id counter are the only shared state and both are locked.
    """

    enabled = True

    def __init__(self, clock=SYSTEM_CLOCK, id_prefix: str = "") -> None:
        self.clock = clock
        self._prefix = id_prefix
        self._lock = new_lock("obs.tracer")
        self._next = 1
        self.spans: list[Span] = []

    # -- span lifecycle -------------------------------------------------------

    def span(self, name: str, parent=None, **attrs) -> _ActiveSpan:
        """Open a span as a context manager; it becomes the current span of
        this execution context and closes (recording errors) on exit."""
        return _ActiveSpan(self, self.start_span(name, parent=parent, **attrs))

    def start_span(self, name: str, parent=None, **attrs) -> Span:
        """Open a span *without* touching the current context.

        For spans whose start and end live on different threads or tasks
        (queue-wait, an in-flight pool task): close with :meth:`end_span`.
        ``parent`` is a span, a span id string, or None (defaults to the
        calling context's current span).
        """
        parent_id = self._parent_id(parent)
        with self._lock:
            span_id = f"{self._prefix}{self._next}"
            self._next += 1
            span = Span(
                name=name,
                span_id=span_id,
                parent_id=parent_id,
                start_s=self.clock.now(),
                attrs=dict(attrs),
            )
            self.spans.append(span)
        return span

    def end_span(self, span, status: str | None = None) -> None:
        """Close a span (idempotent; unfinished spans never export)."""
        if span is NULL_SPAN or span.end_s is not None:
            return
        span.end_s = self.clock.now()
        if status is not None:
            span.status = status

    # -- annotations ----------------------------------------------------------

    def event(self, name: str, **attrs) -> None:
        """Annotate the current span; dropped when no span is open."""
        span = _CURRENT.get()
        if span is not None:
            self.add_event(span, name, **attrs)

    def add_event(self, span, name: str, **attrs) -> None:
        if span is NULL_SPAN:
            return
        span.events.append(SpanEvent(name=name, time_s=self.clock.now(), attrs=attrs))

    # -- queries / merging ----------------------------------------------------

    def current(self) -> Span | None:
        return _CURRENT.get()

    def adopt(self, spans) -> None:
        """Merge spans recorded elsewhere (a pool worker) into this trace."""
        if spans:
            with self._lock:
                self.spans.extend(spans)

    def finished(self) -> list[Span]:
        with self._lock:
            return [span for span in self.spans if span.end_s is not None]

    @staticmethod
    def _parent_id(parent) -> str | None:
        if parent is None:
            current = _CURRENT.get()
            return current.span_id if current is not None else None
        if isinstance(parent, str):
            return parent or None
        if parent is NULL_SPAN:
            return None
        return parent.span_id
