"""``repro.perturb`` — the seeded, deterministic perturbation engine.

The scenario-matrix robustness suite: instead of evaluating every NL-to-SQL
system on one frozen rendering of each domain, the engine programmatically
varies the domains along five families (:data:`FAMILIES`) —

============  ==============================================================
``rename``    consistent schema renames/crypticization, propagated into
              gold/silver SQL, the lexicon and the enhanced schema
``drift``     re-sampled cell distributions; gold answers re-derived by
              executing the unchanged gold SQL through the engine
``paraphrase``  seeded question rewrites through :mod:`repro.nlgen`
``distractor``  schema widening that must not change any gold result
              (checked row-for-row, gated by ``--assert-invariant``)
``synth``     SynSQL-style synthesized mini-domains: a fresh adapter
              manifest from a seeded schema grammar, registered through
              :mod:`repro.adapters`
============  ==============================================================

— each at severities 1-3.  The full matrix (system × domain × family ×
severity) runs as :mod:`repro.runtime` tasks (see
:func:`repro.perturb.tasks.build_matrix_graph`), so the content-addressed
cache makes incremental re-runs cheap, and ``sciencebenchmark
robustness-bench`` (:mod:`repro.perturb.bench`) emits the per-axis
hardness/robustness breakdown with degradation-vs-baseline deltas.
"""

from __future__ import annotations

from repro.errors import PerturbationError
from repro.perturb.base import (
    BASELINE_FAMILY,
    SEVERITIES,
    Perturbation,
    PerturbedDomain,
    fingerprint_domain,
    fingerprint_rows,
)
from repro.perturb.distractor import DistractorWidening
from repro.perturb.drift import ValueDrift
from repro.perturb.paraphrase import ParaphraseStorm
from repro.perturb.rename import SchemaRename
from repro.perturb.synthdomain import SynthMiniDomain

#: Every shipped family, keyed by name (sorted; the matrix default).
FAMILIES: dict[str, Perturbation] = {
    family.name: family
    for family in sorted(
        (
            SchemaRename(),
            ValueDrift(),
            ParaphraseStorm(),
            DistractorWidening(),
            SynthMiniDomain(),
        ),
        key=lambda f: f.name,
    )
}

FAMILY_NAMES: tuple[str, ...] = tuple(FAMILIES)


def get_family(name: str) -> Perturbation:
    """The family registered under ``name`` (with the usual sorted hint)."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise PerturbationError(
            f"unknown perturbation family {name!r}; available families: "
            + ", ".join(FAMILY_NAMES)
        ) from None


__all__ = [
    "BASELINE_FAMILY",
    "FAMILIES",
    "FAMILY_NAMES",
    "SEVERITIES",
    "Perturbation",
    "PerturbationError",
    "PerturbedDomain",
    "DistractorWidening",
    "ParaphraseStorm",
    "SchemaRename",
    "SynthMiniDomain",
    "ValueDrift",
    "fingerprint_domain",
    "fingerprint_rows",
    "get_family",
]
