"""Core of the perturbation engine: the protocol and shared plumbing.

A *perturbation family* is a seeded, deterministic transformation of a
:class:`~repro.datasets.records.BenchmarkDomain` — the SynSQL/NL2SQLBench
direction of programmatically varying the benchmark itself instead of
evaluating on one frozen rendering of each domain.  Every family implements
the :class:`Perturbation` protocol::

    class MyFamily:
        name = "my-family"

        def apply(self, base, severity, rng) -> PerturbedDomain: ...

``apply`` must be pure in ``(base, severity, rng)``: the same base domain,
severity and RNG seed yield a byte-identical perturbed domain, which is what
lets the robustness matrix run as content-addressed
:mod:`repro.runtime` tasks and stay bit-identical across worker counts.

Severity is a small integer axis (:data:`SEVERITIES`, 1-3) whose meaning is
family-local but monotone: a higher severity never perturbs *less* (more
identifiers renamed, more cells drifted, more paraphrase operations, more
distractor columns, a larger synthesized schema).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.datasets.records import BenchmarkDomain, NLSQLPair, Split
from repro.engine.database import Database
from repro.errors import PerturbationError

#: The severity axis of the robustness matrix.
SEVERITIES = (1, 2, 3)

#: The identity "family" of the matrix: severity 0, domain untouched.
BASELINE_FAMILY = "baseline"


@dataclass
class PerturbedDomain:
    """One cell of the domain × family × severity perturbation space.

    ``domain`` is a fully self-consistent benchmark domain: its gold SQL
    executes on its own database, its lexicon/enhanced schema are keyed by
    its own identifiers.  ``invariance`` is populated only by families that
    promise gold results unchanged (the distractor family): it records the
    result-fingerprint comparison against the unperturbed database.
    """

    domain: BenchmarkDomain
    base_name: str
    family: str
    severity: int
    metadata: dict = field(default_factory=dict)
    #: ``{"checked": n, "identical": bool, "mismatched": [sql, ...]}`` for
    #: invariant families; None elsewhere.
    invariance: dict | None = None


@runtime_checkable
class Perturbation(Protocol):
    """The family protocol: a named, seeded domain transformation."""

    name: str

    def apply(
        self, base: BenchmarkDomain, severity: int, rng
    ) -> PerturbedDomain: ...


def check_severity(severity: int) -> int:
    if severity not in SEVERITIES:
        raise PerturbationError(
            f"severity {severity!r} out of range; valid severities: "
            + ", ".join(str(s) for s in SEVERITIES)
        )
    return severity


# -- shared plumbing -----------------------------------------------------------


def table_rows(database: Database) -> dict[str, list[tuple]]:
    """``{table name: rows}`` snapshot of a database, in schema order."""
    return {
        tdef.name: list(database.table(tdef.name).rows)
        for tdef in database.schema.tables
    }


def clone_pairs(
    split: Split,
    name: str | None = None,
    sql_rewrite=None,
    question_rewrite=None,
) -> Split:
    """A deep copy of a split with optional SQL/question rewriters.

    Hardness is carried over only when the SQL is untouched (a rewritten
    query re-classifies lazily; renames preserve structure but recomputing
    is cheap and avoids trusting the rewriter).
    """
    pairs = []
    for pair in split.pairs:
        sql = sql_rewrite(pair.sql) if sql_rewrite else pair.sql
        question = (
            question_rewrite(pair.question) if question_rewrite else pair.question
        )
        pairs.append(
            NLSQLPair(
                question=question,
                sql=sql,
                db_id=pair.db_id,
                source=pair.source,
                _hardness=None if sql_rewrite else pair._hardness,
            )
        )
    return Split(name=name or split.name, pairs=pairs)


def fingerprint_rows(result) -> str:
    """SHA-256 over a query result's row tuples (order-sensitive).

    Column *labels* are deliberately excluded: a schema rename changes the
    labels but must not change the rows, and the distractor invariance gate
    compares gold results across schemas whose identifiers differ only in
    unreferenced additions.
    """
    blob = json.dumps([list(row) for row in result.rows], default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def fingerprint_domain(domain: BenchmarkDomain) -> str:
    """A stable fingerprint over everything a perturbation may touch.

    Covers the schema (tables, columns, types, aliases, foreign keys), every
    data row, and the seed/dev question/SQL pairs — the determinism property
    tests compare this digest across repeated applications and worker
    counts.
    """
    schema = domain.database.schema
    payload = {
        "name": domain.name,
        "tables": [
            {
                "name": t.name,
                "alias": t.alias,
                "primary_key": t.primary_key,
                "columns": [
                    [c.name, c.type.value, c.alias, c.nullable] for c in t.columns
                ],
            }
            for t in schema.tables
        ],
        "foreign_keys": [
            [fk.table, fk.column, fk.ref_table, fk.ref_column]
            for fk in schema.foreign_keys
        ],
        "rows": {
            t.name: [list(map(str, row)) for row in domain.database.table(t.name).rows]
            for t in schema.tables
        },
        "seed": [[p.question, p.sql, p.db_id] for p in domain.seed.pairs],
        "dev": [[p.question, p.sql, p.db_id] for p in domain.dev.pairs],
    }
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def validate_perturbed(perturbed: PerturbedDomain) -> PerturbedDomain:
    """Assert the perturbed domain's gold SQL still executes; returns it.

    Every family runs through this before its output enters the matrix: a
    perturbation that breaks its own gold queries would silently zero the
    accuracy of every cell built on it and masquerade as degradation.
    """
    bad = perturbed.domain.validate_gold_sql()
    if bad:
        raise PerturbationError(
            f"family {perturbed.family!r} severity {perturbed.severity} broke "
            f"{len(bad)} gold quer{'y' if len(bad) == 1 else 'ies'} on "
            f"{perturbed.base_name!r}; first: {bad[0]!r}"
        )
    return perturbed
