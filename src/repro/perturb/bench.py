"""``robustness-bench``: run the perturbation matrix and grade the damage.

The bench materializes every ``pcell`` of the matrix through the task-graph
runtime, then aggregates a per-axis hardness/robustness breakdown: for each
family, severity, domain, system and Spider hardness class, the mean
accuracy and the mean *degradation* (baseline accuracy minus perturbed
accuracy, positive = the perturbation hurt).

The report (``benchmarks/BENCH_robustness.json``, ``schema_version`` 1) is
deliberately free of wall-clock and cache-statistics noise: for a fixed
seed it is **byte-identical** across worker counts and across warm/cold
caches — the property the CI smoke and the determinism suite assert.  Run
statistics live in the :class:`~repro.runtime.RunReport` (``--timings``).

Chaos composition: ``fault_schedule`` threads a named
:class:`~repro.resilience.faults.FaultPlan` through the same runtime, so
worker crashes and torn cache writes strike the very tasks that build and
evaluate perturbed domains; the recovered run must still produce the
byte-identical report (the resilience layer's contract), with the injection
and recovery counts surfaced under ``"faults"``.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro import adapters, obs
from repro.errors import PerturbationError
from repro.obs.metrics import MetricsRegistry
from repro.perturb import FAMILY_NAMES, SEVERITIES
from repro.perturb.base import BASELINE_FAMILY
from repro.perturb.tasks import build_matrix_graph, matrix_targets
from repro.resilience.faults import SCHEDULES, FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.runtime import RunReport, Runtime

DEFAULT_SYSTEMS = ("valuenet",)

#: Millisecond-scale backoff for fault-schedule runs (recovery must not
#: add meaningful wall-clock; mirrors chaos-bench's pacing).
FAST_RETRY = RetryPolicy(
    max_attempts=4, base_delay_s=0.001, max_delay_s=0.004, budget_s=0.5
)


def run_robustness_bench(
    domains: tuple[str, ...] | None = None,
    systems: tuple[str, ...] = DEFAULT_SYSTEMS,
    families: tuple[str, ...] = FAMILY_NAMES,
    severities: tuple[int, ...] = SEVERITIES,
    seed: int = 2023,
    scale: float = 0.2,
    dev_limit: int | None = 12,
    workers: int = 1,
    cache_dir: str | None = None,
    fault_schedule: str | None = None,
) -> tuple[dict, RunReport]:
    """Run the matrix; returns ``(report, runtime run-report)``."""
    for family in families:
        if family not in FAMILY_NAMES:
            raise PerturbationError(
                f"unknown perturbation family {family!r}; available "
                "families: " + ", ".join(FAMILY_NAMES)
            )
    domains = tuple(domains) if domains else adapters.list_adapters()
    systems = tuple(systems)
    families = tuple(families)
    severities = tuple(severities)

    fault_plan = None
    retry = None
    if fault_schedule is not None:
        if fault_schedule not in SCHEDULES:
            raise PerturbationError(
                f"unknown fault schedule {fault_schedule!r}; pick one of "
                + ", ".join(sorted(SCHEDULES))
            )
        fault_plan = FaultPlan.from_spec(SCHEDULES[fault_schedule])
        retry = FAST_RETRY

    graph = build_matrix_graph(
        domains, systems, families, severities, seed, scale, dev_limit
    )
    targets = matrix_targets(domains, systems, families, severities)
    runtime = Runtime(
        workers=workers,
        cache_dir=cache_dir,
        retry=retry,
        fault_plan=fault_plan,
        metrics=MetricsRegistry(),
    )
    with obs.get_tracer().span(
        "robustness.matrix", n_cells=len(targets), workers=workers
    ):
        results = runtime.run(graph, targets)
    cells = [results[name] for name in targets]

    report = _assemble_report(
        cells,
        domains=domains,
        systems=systems,
        families=families,
        severities=severities,
        seed=seed,
        scale=scale,
        dev_limit=dev_limit,
    )
    if fault_plan is not None:
        recovered = dict(runtime.report.recovered)
        report["faults"] = {
            "schedule": fault_schedule,
            "spec": SCHEDULES[fault_schedule],
            "injected": dict(sorted(fault_plan.injected.items())),
            "recovered": dict(sorted(recovered.items())),
            "retries": runtime.report.retries,
            "torn_writes": runtime.cache.tears,
        }
    return report, runtime.report


def _assemble_report(
    cells, *, domains, systems, families, severities, seed, scale, dev_limit
) -> dict:
    baselines = {
        f"{cell.system}:{cell.domain}": cell.accuracy
        for cell in cells
        if cell.family == BASELINE_FAMILY
    }
    baseline_hardness: dict[str, dict] = {}
    for cell in cells:
        if cell.family != BASELINE_FAMILY:
            continue
        for hardness, bucket in cell.by_hardness.items():
            agg = baseline_hardness.setdefault(hardness, {"n": 0, "correct": 0})
            agg["n"] += bucket["n"]
            agg["correct"] += bucket["correct"]

    cell_dicts = []
    for cell in cells:
        entry = asdict(cell)
        baseline = baselines.get(f"{cell.system}:{cell.domain}")
        entry["baseline_accuracy"] = baseline
        entry["degradation"] = (
            None
            if baseline is None or cell.family == BASELINE_FAMILY
            else round(baseline - cell.accuracy, 6)
        )
        cell_dicts.append(entry)

    perturbed = [c for c in cell_dicts if c["family"] != BASELINE_FAMILY]

    def axis(key) -> dict:
        groups: dict = {}
        for cell in perturbed:
            groups.setdefault(str(key(cell)), []).append(cell)
        return {
            name: {
                "n_cells": len(group),
                "mean_accuracy": round(
                    sum(c["accuracy"] for c in group) / len(group), 6
                ),
                "mean_degradation": round(
                    sum(c["degradation"] or 0.0 for c in group) / len(group), 6
                ),
            }
            for name, group in sorted(groups.items())
        }

    perturbed_hardness: dict[str, dict] = {}
    for cell in perturbed:
        for hardness, bucket in cell["by_hardness"].items():
            agg = perturbed_hardness.setdefault(hardness, {"n": 0, "correct": 0})
            agg["n"] += bucket["n"]
            agg["correct"] += bucket["correct"]
    by_hardness = {}
    for hardness in sorted(set(baseline_hardness) | set(perturbed_hardness)):
        base = baseline_hardness.get(hardness, {"n": 0, "correct": 0})
        pert = perturbed_hardness.get(hardness, {"n": 0, "correct": 0})
        base_acc = base["correct"] / base["n"] if base["n"] else None
        pert_acc = pert["correct"] / pert["n"] if pert["n"] else None
        by_hardness[hardness] = {
            "baseline": {**base, "accuracy": _round(base_acc)},
            "perturbed": {**pert, "accuracy": _round(pert_acc)},
            "degradation": (
                _round(base_acc - pert_acc)
                if base_acc is not None and pert_acc is not None
                else None
            ),
        }

    invariant_cells = [c for c in cell_dicts if c["invariance"] is not None]
    invariance = None
    if invariant_cells:
        invariance = {
            "checked": sum(c["invariance"]["checked"] for c in invariant_cells),
            "identical": all(c["invariance"]["identical"] for c in invariant_cells),
            "mismatched": sorted(
                {
                    sql
                    for c in invariant_cells
                    for sql in c["invariance"]["mismatched"]
                }
            ),
            "by_family": axis(lambda c: c["family"]) and {
                family: sum(
                    c["invariance"]["checked"]
                    for c in invariant_cells
                    if c["family"] == family
                )
                for family in sorted({c["family"] for c in invariant_cells})
            },
        }

    return {
        "schema_version": 1,
        "benchmark": "robustness",
        "seed": seed,
        "scale": scale,
        "dev_limit": dev_limit,
        # Trace artifact of the enclosing ``trace`` run (None otherwise).
        "trace_path": obs.current_trace_path(),
        "matrix": {
            "domains": list(domains),
            "systems": list(systems),
            "families": list(families),
            "severities": list(severities),
            "n_cells": len(cell_dicts),
        },
        "baselines": {
            key: _round(value) for key, value in sorted(baselines.items())
        },
        "cells": cell_dicts,
        "axes": {
            "by_family": axis(lambda c: c["family"]),
            "by_severity": axis(lambda c: c["severity"]),
            "by_domain": axis(lambda c: c["domain"]),
            "by_system": axis(lambda c: c["system"]),
            "by_hardness": by_hardness,
        },
        "invariance": invariance,
    }


def _round(value):
    return None if value is None else round(value, 6)


def evaluate_robustness_gates(
    report: dict,
    *,
    max_degradation: float | None = None,
    assert_invariant: bool = False,
) -> list[str]:
    """Every gate violation in a report (empty = the run passes)."""
    failures: list[str] = []
    if max_degradation is not None:
        for family, stats in report["axes"]["by_family"].items():
            if stats["mean_degradation"] > max_degradation:
                failures.append(
                    f"family {family!r}: mean degradation "
                    f"{stats['mean_degradation']:+.3f} exceeds the budget "
                    f"of {max_degradation:+.3f}"
                )
    if assert_invariant:
        invariance = report.get("invariance")
        if invariance is None or not invariance["checked"]:
            failures.append(
                "--assert-invariant needs an invariant family in the run "
                "(include the distractor family)"
            )
        elif not invariance["identical"]:
            failures.append(
                f"distractor invariance violated: "
                f"{len(invariance['mismatched'])} gold quer"
                f"{'y' if len(invariance['mismatched']) == 1 else 'ies'} "
                "changed results under schema widening"
            )
    return failures


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def render_report(report: dict) -> str:
    """Human-readable summary of one robustness-bench report."""
    matrix = report["matrix"]
    lines = [
        f"robustness-bench: {matrix['n_cells']} cells — "
        f"{len(matrix['families'])} families x severities "
        f"{matrix['severities']} over {', '.join(matrix['domains'])} "
        f"({', '.join(matrix['systems'])})"
    ]
    for key, value in sorted(report["baselines"].items()):
        lines.append(f"  baseline {key}: accuracy {value:.3f}")
    for family, stats in report["axes"]["by_family"].items():
        lines.append(
            f"  family {family:<11s} accuracy {stats['mean_accuracy']:.3f}  "
            f"degradation {stats['mean_degradation']:+.3f}  "
            f"({stats['n_cells']} cells)"
        )
    for severity, stats in report["axes"]["by_severity"].items():
        lines.append(
            f"  severity {severity}: accuracy {stats['mean_accuracy']:.3f}  "
            f"degradation {stats['mean_degradation']:+.3f}"
        )
    hardness = report["axes"]["by_hardness"]
    if hardness:
        parts = []
        for cls, stats in hardness.items():
            delta = stats["degradation"]
            parts.append(
                f"{cls}={delta:+.3f}" if delta is not None else f"{cls}=n/a"
            )
        lines.append("  hardness degradation: " + ", ".join(parts))
    invariance = report.get("invariance")
    if invariance:
        lines.append(
            f"  invariance: {invariance['checked']} gold results checked, "
            f"identical={invariance['identical']}"
        )
    faults = report.get("faults")
    if faults:
        lines.append(
            f"  faults[{faults['schedule']}]: "
            f"{sum(faults['injected'].values())} injected, "
            f"recovered={faults['recovered'] or 'none'}, "
            f"retries={faults['retries']}, torn_writes={faults['torn_writes']}"
        )
    return "\n".join(lines)
