"""Distractor widening: plausible-but-irrelevant columns and tables.

The schema grows — every table gains seeded housekeeping-style columns and
the database gains whole unreferenced operational tables — but questions,
gold SQL and the original data stay byte-for-byte identical.  The family
therefore carries a *hard invariant*: every gold query must return exactly
the same rows on the widened database as on the original.  ``apply``
verifies this by executing the full gold set on both databases and
recording the row-fingerprint comparison in
:attr:`~repro.perturb.base.PerturbedDomain.invariance`; the CLI's
``--assert-invariant`` gate fails the run if any result moved.

What the widening stresses is schema linking: the systems now choose among
more (and deliberately plausible-sounding) columns and tables for the same
questions.  Severity is the number of distractor columns per table and the
number of distractor tables added.
"""

from __future__ import annotations

from repro.datasets.records import BenchmarkDomain
from repro.engine.database import create_database
from repro.perturb.base import (
    PerturbedDomain,
    check_severity,
    fingerprint_rows,
    table_rows,
    validate_perturbed,
)
from repro.schema.enhanced import ColumnAnnotation, EnhancedSchema
from repro.schema.model import Column, ColumnType, Schema, TableDef

#: Plausible operational column names (name, type, value pool).
_COLUMN_POOL = (
    ("audit_flag", ColumnType.TEXT, ("ok", "stale", "pending", "review")),
    ("legacy_code", ColumnType.INTEGER, (0, 1, 2, 3, 7)),
    ("etl_batch", ColumnType.INTEGER, (101, 102, 103, 104)),
    ("row_version", ColumnType.INTEGER, (1, 2, 3)),
    ("sync_status", ColumnType.TEXT, ("synced", "dirty", "queued")),
    ("qa_note", ColumnType.TEXT, ("checked", "sampled", "skipped")),
    ("import_tag", ColumnType.TEXT, ("bulk", "manual", "api")),
    ("archive_hint", ColumnType.TEXT, ("hot", "cold", "frozen")),
)

#: Whole distractor tables: (name, row prefix).
_TABLE_POOL = (
    ("audit_log", "evt"),
    ("etl_runs", "run"),
    ("schema_changelog", "chg"),
    ("sync_state", "syn"),
    ("housekeeping_jobs", "job"),
)


def _distractor_tables(severity: int, taken: set[str], rng) -> list[TableDef]:
    chosen = rng.sample(list(_TABLE_POOL), severity)
    tables = []
    for name, _prefix in chosen:
        candidate = name
        suffix = 2
        while candidate.lower() in taken:
            candidate = f"{name}_{suffix}"
            suffix += 1
        taken.add(candidate.lower())
        tables.append(
            TableDef(
                name=candidate,
                columns=(
                    Column(f"{candidate}_id", ColumnType.INTEGER, nullable=False),
                    Column("ref_code", ColumnType.TEXT),
                    Column("status", ColumnType.TEXT),
                    Column("priority", ColumnType.INTEGER),
                ),
                primary_key=f"{candidate}_id",
            )
        )
    return tables


class DistractorWidening:
    """The distractor-column/table family (see module docstring)."""

    name = "distractor"

    def apply(self, base: BenchmarkDomain, severity: int, rng) -> PerturbedDomain:
        check_severity(severity)
        old_schema = base.database.schema
        old_data = table_rows(base.database)

        widened: list[TableDef] = []
        data: dict[str, list[tuple]] = {}
        added_columns = 0
        for tdef in old_schema.tables:
            taken = {c.name.lower() for c in tdef.columns}
            pool = [entry for entry in _COLUMN_POOL if entry[0] not in taken]
            extras = rng.sample(pool, min(severity, len(pool)))
            new_columns = tuple(
                Column(name, ctype) for name, ctype, _pool in extras
            )
            added_columns += len(new_columns)
            widened.append(
                TableDef(
                    name=tdef.name,
                    columns=tdef.columns + new_columns,
                    primary_key=tdef.primary_key,
                    alias=tdef.alias,
                )
            )
            rows = old_data[tdef.name]
            data[tdef.name] = [
                row + tuple(rng.choice(pool) for _name, _ctype, pool in extras)
                for row in rows
            ]

        taken_tables = {t.name.lower() for t in old_schema.tables}
        extra_tables = _distractor_tables(severity, taken_tables, rng)
        for tdef in extra_tables:
            data[tdef.name] = [
                (
                    i + 1,
                    f"{tdef.name[:3]}-{rng.randrange(1000):03d}",
                    rng.choice(("done", "active", "failed")),
                    rng.randrange(1, 6),
                )
                for i in range(5 * severity)
            ]

        schema = Schema(
            name=old_schema.name,
            tables=tuple(widened) + tuple(extra_tables),
            foreign_keys=old_schema.foreign_keys,
        )
        database = create_database(schema, data)

        # Old annotation/stat keys remain valid (columns only gained
        # neighbours); distractor identifier columns are marked
        # non-aggregatable so the synthesis constraints treat them like the
        # codes they imitate.
        enhanced = EnhancedSchema(
            schema=schema,
            annotations=dict(base.enhanced.annotations),
            stats=dict(base.enhanced.stats),
        )
        for tdef in extra_tables:
            enhanced.annotate(
                tdef.name, f"{tdef.name}_id", ColumnAnnotation(aggregatable=False)
            )

        domain = BenchmarkDomain(
            name=base.name,
            database=database,
            enhanced=enhanced,
            lexicon=base.lexicon,
            seed=base.seed,
            dev=base.dev,
            nominal_stats=base.nominal_stats,
        )

        # The family's contract: widening must not move a single gold row.
        mismatched: list[str] = []
        checked = 0
        for split in (base.seed, base.dev):
            for pair in split.pairs:
                checked += 1
                before = fingerprint_rows(base.database.execute(pair.sql))
                after = fingerprint_rows(database.execute(pair.sql))
                if before != after:
                    mismatched.append(pair.sql)

        return validate_perturbed(
            PerturbedDomain(
                domain=domain,
                base_name=base.name,
                family=self.name,
                severity=severity,
                metadata={
                    "added_columns": added_columns,
                    "added_tables": [t.name for t in extra_tables],
                },
                invariance={
                    "checked": checked,
                    "identical": not mismatched,
                    "mismatched": mismatched,
                },
            )
        )
