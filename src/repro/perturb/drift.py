"""Value drift: re-sampled cell distributions under an unchanged schema.

The questions and gold SQL stay exactly as written; the *data* underneath
them moves.  Numeric measurement columns are rescaled by a per-column drift
factor and jittered per cell; non-numeric columns have a fraction of their
cells permuted among themselves (the value domain is preserved, the
row-to-value association is not).  Key columns — primary keys and both
endpoints of every foreign key — are never touched, so referential
integrity and join cardinalities survive.

Gold answers are *re-derived through the engine*: the evaluation harness
executes the unchanged gold SQL against the drifted database, so a
prediction is judged against what the query truly returns now — not
against a stale answer set.  What drifts for the NL-to-SQL systems is value
linking: literals mentioned in questions may no longer exist in the data.

Severity scales the drifted fraction of eligible cells and the width of
the numeric drift factor.
"""

from __future__ import annotations

from repro.datasets.records import BenchmarkDomain
from repro.engine.database import create_database
from repro.perturb.base import (
    PerturbedDomain,
    check_severity,
    table_rows,
    validate_perturbed,
)
from repro.schema.enhanced import EnhancedSchema
from repro.schema.introspect import profile_database
from repro.schema.model import ColumnType, Schema

#: severity -> (fraction of eligible cells drifted, numeric drift half-width).
_INTENSITY = {1: (0.15, 0.10), 2: (0.35, 0.25), 3: (0.60, 0.45)}


def _protected_columns(schema: Schema) -> set[tuple[str, str]]:
    """Columns drift must not touch: primary keys and FK endpoints."""
    protected: set[tuple[str, str]] = set()
    for tdef in schema.tables:
        if tdef.primary_key:
            protected.add((tdef.name.lower(), tdef.primary_key.lower()))
    for fk in schema.foreign_keys:
        protected.add((fk.table.lower(), fk.column.lower()))
        protected.add((fk.ref_table.lower(), fk.ref_column.lower()))
    return protected


class ValueDrift:
    """The value-drift family (see module docstring)."""

    name = "drift"

    def apply(self, base: BenchmarkDomain, severity: int, rng) -> PerturbedDomain:
        check_severity(severity)
        fraction, half_width = _INTENSITY[severity]
        schema = base.database.schema
        protected = _protected_columns(schema)

        drifted_cells = 0
        data: dict[str, list[tuple]] = {}
        for tdef in schema.tables:
            rows = [list(row) for row in table_rows(base.database)[tdef.name]]
            for index, col in enumerate(tdef.columns):
                if (tdef.name.lower(), col.name.lower()) in protected:
                    continue
                cells = [
                    i for i, row in enumerate(rows) if row[index] is not None
                ]
                if not cells:
                    continue
                n_drift = max(1, round(fraction * len(cells)))
                chosen = sorted(rng.sample(cells, min(n_drift, len(cells))))
                if col.type.is_numeric:
                    factor = 1.0 + rng.uniform(-half_width, half_width)
                    for i in chosen:
                        value = rows[i][index] * factor
                        if col.type is ColumnType.INTEGER:
                            value = int(round(value))
                        rows[i][index] = value
                        drifted_cells += 1
                else:
                    # Permute the chosen cells among themselves: the column
                    # keeps its exact value domain, rows lose their values.
                    values = [rows[i][index] for i in chosen]
                    shuffled = list(values)
                    rng.shuffle(shuffled)
                    for i, value in zip(chosen, shuffled):
                        if rows[i][index] != value:
                            drifted_cells += 1
                        rows[i][index] = value
            data[tdef.name] = [tuple(row) for row in rows]

        database = create_database(schema, data)
        # Fresh statistics from the drifted data (the static analyzer's cost
        # pass would otherwise reason from the pre-drift value ranges);
        # annotations are domain knowledge and carry over unchanged.
        enhanced = EnhancedSchema(
            schema=schema,
            annotations=dict(base.enhanced.annotations),
            stats=dict(profile_database(database).stats),
        )
        domain = BenchmarkDomain(
            name=base.name,
            database=database,
            enhanced=enhanced,
            lexicon=base.lexicon,
            seed=base.seed,
            dev=base.dev,
            nominal_stats=base.nominal_stats,
        )
        return validate_perturbed(
            PerturbedDomain(
                domain=domain,
                base_name=base.name,
                family=self.name,
                severity=severity,
                metadata={
                    "drifted_cells": drifted_cells,
                    "cell_fraction": fraction,
                    "numeric_half_width": half_width,
                },
            )
        )
