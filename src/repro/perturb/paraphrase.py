"""Paraphrase storms: seeded question rewrites, SQL untouched.

The schema and data stay frozen; every seed and dev *question* is rewritten
through :func:`repro.nlgen.augmentations.augment_question` — the DBPal-style
meaning-preserving operations (synonym substitution, filler deletion,
prefix rewriting) already used by the augmentation ablation.  Because the
operations never touch numbers, quoted values or domain terms outside the
synonym bank, the gold SQL remains the gold SQL; what degrades is the
systems' surface-form matching.

Severity is the number of rewrite operations applied per question (1-3).
"""

from __future__ import annotations

from repro.datasets.records import BenchmarkDomain
from repro.nlgen.augmentations import augment_question
from repro.perturb.base import (
    PerturbedDomain,
    check_severity,
    clone_pairs,
    validate_perturbed,
)


class ParaphraseStorm:
    """The paraphrase-storm family (see module docstring)."""

    name = "paraphrase"

    def apply(self, base: BenchmarkDomain, severity: int, rng) -> PerturbedDomain:
        check_severity(severity)
        changed = 0

        def _rewrite(question: str) -> str:
            nonlocal changed
            rewritten = augment_question(question, rng, n_ops=severity)
            if rewritten != question:
                changed += 1
            return rewritten

        domain = BenchmarkDomain(
            name=base.name,
            database=base.database,
            enhanced=base.enhanced,
            lexicon=base.lexicon,
            seed=clone_pairs(base.seed, question_rewrite=_rewrite),
            dev=clone_pairs(base.dev, question_rewrite=_rewrite),
            nominal_stats=base.nominal_stats,
        )
        n_total = len(base.seed.pairs) + len(base.dev.pairs)
        return validate_perturbed(
            PerturbedDomain(
                domain=domain,
                base_name=base.name,
                family=self.name,
                severity=severity,
                metadata={
                    "n_ops": severity,
                    "questions_changed": changed,
                    "questions_total": n_total,
                },
            )
        )
