"""Schema rename / crypticization: consistent identifier rewrites.

ScienceBenchmark's domains are hard partly because their identifiers are
cryptic (``specobj.z``); this family manufactures that hardness on demand.
A seeded subset of tables and columns is renamed consistently across

* the structural schema (tables, columns, primary keys, foreign keys),
* the populated database (rows copied verbatim),
* the gold and silver SQL (AST rewrite — aliases, qualified and
  unqualified column references, ``T1.*`` stars),
* the enhanced schema's annotations and statistics (re-keyed),
* and the domain lexicon (re-keyed, phrases preserved).

Severity controls both *coverage* and *crypticness*: severity 1 renames a
third of the identifiers to versioned names (``project_v2``), severity 2
renames two thirds to consonant skeletons (``prjct``), severity 3 renames
everything to opaque codes (``t03``, ``c017``) and also strips the
human-readable aliases — the fully cryptic rendering.  Natural-language
questions are never touched: the question still says "project", the schema
no longer does.
"""

from __future__ import annotations

import dataclasses
import math

from repro.datasets.records import BenchmarkDomain
from repro.engine.database import create_database
from repro.nlgen.lexicon import DomainLexicon
from repro.perturb.base import (
    PerturbedDomain,
    check_severity,
    clone_pairs,
    table_rows,
    validate_perturbed,
)
from repro.schema.enhanced import EnhancedSchema
from repro.schema.model import Column, ForeignKey, Schema, TableDef
from repro.sql import ast as sql_ast
from repro.sql import parse, to_sql

#: severity -> fraction of tables/columns renamed.
_COVERAGE = {1: 0.34, 2: 0.67, 3: 1.0}

_VOWELS = set("aeiou")


def _skeleton(name: str) -> str:
    """Consonant skeleton of an identifier (``project`` -> ``prjct``)."""
    kept = name[0] + "".join(
        ch for ch in name[1:] if ch not in _VOWELS and ch != "_"
    )
    return kept[:8] or name[:8]


class _NameAllocator:
    """Unique new names within one scope (tables, or one table's columns)."""

    def __init__(self, severity: int, prefix: str, taken: set[str]) -> None:
        self.severity = severity
        self.prefix = prefix  # "t" for tables, "c" for columns
        self.taken = {name.lower() for name in taken}
        self.counter = 0

    def rename(self, old: str) -> str:
        self.counter += 1
        if self.severity == 1:
            candidate = f"{old}_v2"
        elif self.severity == 2:
            candidate = _skeleton(old.lower())
        else:
            width = 2 if self.prefix == "t" else 3
            candidate = f"{self.prefix}{self.counter:0{width}d}"
        base = candidate
        suffix = 2
        while candidate.lower() in self.taken:
            candidate = f"{base}_{suffix}"
            suffix += 1
        self.taken.add(candidate.lower())
        return candidate


def _build_rename_maps(schema: Schema, severity: int, rng):
    """(table_map, column_map) keyed by lower-cased old names."""
    fraction = _COVERAGE[severity]
    table_names = sorted(t.name for t in schema.tables)
    n_tables = max(1, math.ceil(fraction * len(table_names)))
    renamed_tables = sorted(rng.sample(table_names, n_tables))

    tables_alloc = _NameAllocator(severity, "t", set(table_names))
    table_map = {name.lower(): tables_alloc.rename(name) for name in renamed_tables}

    column_map: dict[tuple[str, str], str] = {}
    for tdef in schema.tables:
        names = sorted(c.name for c in tdef.columns)
        n_cols = max(1, math.ceil(fraction * len(names)))
        renamed = sorted(rng.sample(names, n_cols))
        alloc = _NameAllocator(severity, "c", set(names))
        for name in renamed:
            column_map[(tdef.name.lower(), name.lower())] = alloc.rename(name)
    return table_map, column_map


def _rename_schema(
    schema: Schema,
    table_map: dict[str, str],
    column_map: dict[tuple[str, str], str],
    strip_aliases: bool,
) -> Schema:
    tables = []
    for tdef in schema.tables:
        tkey = tdef.name.lower()
        columns = []
        for col in tdef.columns:
            new_name = column_map.get((tkey, col.name.lower()), col.name)
            renamed = new_name != col.name
            columns.append(
                Column(
                    name=new_name,
                    type=col.type,
                    alias=None if (strip_aliases and renamed) else col.alias,
                    nullable=col.nullable,
                )
            )
        pk = tdef.primary_key
        if pk is not None:
            pk = column_map.get((tkey, pk.lower()), pk)
        new_tname = table_map.get(tkey, tdef.name)
        tables.append(
            TableDef(
                name=new_tname,
                columns=tuple(columns),
                primary_key=pk,
                alias=None if (strip_aliases and new_tname != tdef.name) else tdef.alias,
            )
        )
    foreign_keys = tuple(
        ForeignKey(
            table=table_map.get(fk.table.lower(), fk.table),
            column=column_map.get((fk.table.lower(), fk.column.lower()), fk.column),
            ref_table=table_map.get(fk.ref_table.lower(), fk.ref_table),
            ref_column=column_map.get(
                (fk.ref_table.lower(), fk.ref_column.lower()), fk.ref_column
            ),
        )
        for fk in schema.foreign_keys
    )
    return Schema(name=schema.name, tables=tuple(tables), foreign_keys=foreign_keys)


def rewrite_sql(
    sql: str,
    schema: Schema,
    table_map: dict[str, str],
    column_map: dict[tuple[str, str], str],
) -> str:
    """Rewrite one query under the rename maps (aliases preserved).

    ``schema`` is the *pre-rename* schema, used to resolve unqualified
    column references to their owning table.  Resolution is scope-aware:
    each SELECT core resolves against its own FROM/JOIN tables first, then
    the enclosing scopes — so ``SELECT specobjid FROM speclineall`` inside a
    subquery renames with ``speclineall`` even when an outer table also has
    a ``specobjid`` column (the case a global alias map gets wrong).
    """
    return to_sql(_rewrite_query(parse(sql), (), schema, table_map, column_map))


def _rewrite_query(
    query: sql_ast.Query,
    outer: tuple[tuple[str, str], ...],
    schema: Schema,
    table_map: dict[str, str],
    column_map: dict[tuple[str, str], str],
) -> sql_ast.Query:
    return sql_ast.Query(
        select=_rewrite_select(query.select, outer, schema, table_map, column_map),
        set_op=query.set_op,
        right=(
            _rewrite_query(query.right, outer, schema, table_map, column_map)
            if query.right is not None
            else None
        ),
        set_all=query.set_all,
    )


def _rewrite_select(
    select: sql_ast.Select,
    outer: tuple[tuple[str, str], ...],
    schema: Schema,
    table_map: dict[str, str],
    column_map: dict[tuple[str, str], str],
) -> sql_ast.Select:
    # Innermost-first scope: this select's bindings, then the enclosing ones
    # (the correlated-subquery resolution order).
    scope = tuple(
        (ref.binding.lower(), ref.name) for ref in select.table_refs()
    ) + tuple(outer)
    alias_to_table: dict[str, str] = {}
    for binding, name in reversed(scope):
        alias_to_table[binding] = name

    def _owner_of(column: str) -> str | None:
        for _binding, table in scope:
            if schema.has_table(table) and schema.table(table).has_column(column):
                return table
        return None

    def rewrite(node: sql_ast.Node) -> sql_ast.Node:
        if isinstance(node, sql_ast.TableRef):
            return sql_ast.TableRef(
                name=table_map.get(node.name.lower(), node.name), alias=node.alias
            )
        if isinstance(node, sql_ast.Star) and node.table:
            owner = alias_to_table.get(node.table.lower())
            if owner is not None and node.table.lower() == owner.lower():
                return sql_ast.Star(table=table_map.get(owner.lower(), node.table))
            return node
        if isinstance(node, sql_ast.ColumnRef):
            owner = alias_to_table.get((node.table or "").lower())
            if owner is None and node.table is None:
                owner = _owner_of(node.column)
            if owner is None:
                return node
            new_column = column_map.get(
                (owner.lower(), node.column.lower()), node.column
            )
            new_table = node.table
            # A qualification by the real table name (not an alias) renames
            # with the table; an alias like ``T1`` stays as written.
            if new_table is not None and new_table.lower() == owner.lower():
                new_table = table_map.get(owner.lower(), new_table)
            return sql_ast.ColumnRef(table=new_table, column=new_column)
        return node

    def recurse(node: sql_ast.Node) -> sql_ast.Node:
        if isinstance(node, sql_ast.Query):
            return _rewrite_query(node, scope, schema, table_map, column_map)
        kwargs = {}
        for field_ in dataclasses.fields(node):
            value = getattr(node, field_.name)
            if isinstance(value, sql_ast.Node):
                kwargs[field_.name] = recurse(value)
            elif isinstance(value, tuple):
                kwargs[field_.name] = tuple(
                    recurse(item) if isinstance(item, sql_ast.Node) else item
                    for item in value
                )
            else:
                kwargs[field_.name] = value
        return rewrite(type(node)(**kwargs))

    return recurse(select)


def _rekey_lexicon(
    lexicon: DomainLexicon | None,
    table_map: dict[str, str],
    column_map: dict[tuple[str, str], str],
) -> DomainLexicon | None:
    if lexicon is None:
        return None
    renamed = DomainLexicon(name=lexicon.name)
    for table, phrases in lexicon.table_phrases.items():
        renamed.table_phrases[table_map.get(table, table).lower()] = list(phrases)
    for (table, column), phrases in lexicon.column_phrases.items():
        new_t = table_map.get(table, table).lower()
        new_c = column_map.get((table, column), column).lower()
        renamed.column_phrases[(new_t, new_c)] = list(phrases)
    for (table, column, value), phrases in lexicon.value_phrases.items():
        new_t = table_map.get(table, table).lower()
        new_c = column_map.get((table, column), column).lower()
        renamed.value_phrases[(new_t, new_c, value)] = list(phrases)
    return renamed


class SchemaRename:
    """The rename/crypticization family (see module docstring)."""

    name = "rename"

    def apply(self, base: BenchmarkDomain, severity: int, rng) -> PerturbedDomain:
        check_severity(severity)
        old_schema = base.database.schema
        table_map, column_map = _build_rename_maps(old_schema, severity, rng)
        new_schema = _rename_schema(
            old_schema, table_map, column_map, strip_aliases=severity >= 3
        )

        data = {
            table_map.get(name.lower(), name): rows
            for name, rows in table_rows(base.database).items()
        }
        database = create_database(new_schema, data)

        enhanced = EnhancedSchema(
            schema=new_schema,
            annotations={
                (
                    table_map.get(t, t).lower(),
                    column_map.get((t, c), c).lower(),
                ): annotation
                for (t, c), annotation in base.enhanced.annotations.items()
            },
            stats={
                (
                    table_map.get(t, t).lower(),
                    column_map.get((t, c), c).lower(),
                ): stats
                for (t, c), stats in base.enhanced.stats.items()
            },
        )

        def _rewrite(sql: str) -> str:
            return rewrite_sql(sql, old_schema, table_map, column_map)

        domain = BenchmarkDomain(
            name=base.name,
            database=database,
            enhanced=enhanced,
            lexicon=_rekey_lexicon(base.lexicon, table_map, column_map),
            seed=clone_pairs(base.seed, sql_rewrite=_rewrite),
            dev=clone_pairs(base.dev, sql_rewrite=_rewrite),
            nominal_stats=base.nominal_stats,
        )
        return validate_perturbed(
            PerturbedDomain(
                domain=domain,
                base_name=base.name,
                family=self.name,
                severity=severity,
                metadata={
                    "renamed_tables": len(table_map),
                    "renamed_columns": len(column_map),
                    "aliases_stripped": severity >= 3,
                    "table_map": dict(sorted(table_map.items())),
                },
            )
        )
