"""SynSQL-style synthesized mini-domains from a seeded schema grammar.

Where the other families bend an existing domain, this one manufactures a
*fresh* scientific micro-domain — schema, data, lexicon and gold NL/SQL
pairs — from a small grammar over entity vocabularies (a parent "site"/
"lab"-style registry table plus ``severity`` child measurement tables with
foreign keys into it).  The result is delivered the same way real domains
are: as an :class:`~repro.adapters.manifest.AdapterManifest` whose build
entry point lives in this module, registered through
:mod:`repro.adapters` and built through the returned adapter handle.  The
manifest's attribute encodes the grammar seed and severity
(``build_s<seed>x<severity>``), resolved by this module's ``__getattr__`` —
so the spec travels through task params and rebuilds identically inside
pool worker processes with no registry state crossing the boundary.

Severity scales the schema (number of child tables) and the data volume.
"""

from __future__ import annotations

import random
import re

from repro.adapters.manifest import AdapterManifest
from repro.datasets.records import BenchmarkDomain, NLSQLPair, Split
from repro.engine.database import create_database
from repro.errors import PerturbationError
from repro.nlgen.lexicon import DomainLexicon
from repro.perturb.base import PerturbedDomain, check_severity, validate_perturbed
from repro.schema.introspect import profile_database
from repro.schema.model import Column, ColumnType, ForeignKey, Schema, TableDef

_GROUPS = ("site", "lab", "cohort", "station", "facility")
_SUBJECTS = (
    "sample", "sensor", "trial", "compound",
    "specimen", "isolate", "reactor", "probe",
)
_MEASURES = ("mass", "density", "voltage", "purity", "intensity", "half_life")
_CATEGORIES = ("control", "treated", "reference", "blind")
_REGIONS = ("north", "south", "east", "west")

I, F, T = ColumnType.INTEGER, ColumnType.REAL, ColumnType.TEXT


def domain_name(seed: int, severity: int) -> str:
    return f"synth_s{seed}x{severity}"


def generate_domain(seed: int, severity: int, scale: float = 1.0) -> BenchmarkDomain:
    """Generate one mini-domain; pure in ``(seed, severity, scale)``."""
    check_severity(severity)
    rng = random.Random(seed)
    name = domain_name(seed, severity)

    group = rng.choice(_GROUPS)
    subjects = rng.sample(_SUBJECTS, severity)
    measures = {subject: rng.choice(_MEASURES) for subject in subjects}

    group_id = f"{group}_id"
    tables = [
        TableDef(
            name=group,
            columns=(
                Column(group_id, I, nullable=False),
                Column("name", T),
                Column("region", T),
            ),
            primary_key=group_id,
        )
    ]
    foreign_keys = []
    for subject in subjects:
        tables.append(
            TableDef(
                name=subject,
                columns=(
                    Column(f"{subject}_id", I, nullable=False),
                    Column("name", T),
                    Column(group_id, I),
                    Column("category", T),
                    Column(measures[subject], F),
                    Column("reading_count", I),
                ),
                primary_key=f"{subject}_id",
            )
        )
        foreign_keys.append(
            ForeignKey(
                table=subject, column=group_id,
                ref_table=group, ref_column=group_id,
            )
        )
    schema = Schema(
        name=name, tables=tuple(tables), foreign_keys=tuple(foreign_keys)
    )

    n_groups = 4 + severity
    n_rows = max(12, int(round(24 * scale * (1 + severity))))
    data: dict[str, list[tuple]] = {
        group: [
            (i + 1, f"{group} {i + 1:02d}", rng.choice(_REGIONS))
            for i in range(n_groups)
        ]
    }
    for subject in subjects:
        data[subject] = [
            (
                i + 1,
                f"{subject}-{i + 1:03d}",
                rng.randrange(1, n_groups + 1),
                rng.choice(_CATEGORIES),
                round(rng.uniform(1.0, 100.0), 2),
                rng.randrange(0, 50),
            )
            for i in range(n_rows)
        ]
    database = create_database(schema, data)

    lexicon = DomainLexicon(name=name)
    lexicon.add_table(group, f"{group}s")
    for subject in subjects:
        lexicon.add_table(subject, f"{subject}s")
        lexicon.add_column(
            subject, measures[subject], measures[subject].replace("_", " ")
        )

    pairs = _question_programs(rng, name, group, subjects, measures, data)
    rng.shuffle(pairs)
    n_dev = max(2, len(pairs) // 3)
    dev, seed_pairs = pairs[:n_dev], pairs[n_dev:]

    domain = BenchmarkDomain(
        name=name,
        database=database,
        enhanced=profile_database(database),
        lexicon=lexicon,
        seed=Split(name=f"{name}-seed", pairs=seed_pairs),
        dev=Split(name=f"{name}-dev", pairs=dev),
    )
    bad = domain.validate_gold_sql()
    if bad:
        raise PerturbationError(
            f"mini-domain grammar produced a non-executable gold query "
            f"(seed {seed}, severity {severity}): {bad[0]!r}"
        )
    return domain


def _question_programs(rng, db_id, group, subjects, measures, data):
    """The grammar's gold NL/SQL pairs; every query executes by construction."""

    def pair(question: str, sql: str) -> NLSQLPair:
        return NLSQLPair(question=question, sql=sql, db_id=db_id, source="seed")

    pairs = [
        pair(
            f"How many {group}s are there?",
            f"SELECT count(*) FROM {group}",
        ),
        pair(
            f"List the names of all {group}s.",
            f"SELECT name FROM {group}",
        ),
    ]
    region = rng.choice(_REGIONS)
    pairs.append(
        pair(
            f"Show the names of {group}s in the {region} region.",
            f"SELECT name FROM {group} WHERE region = '{region}'",
        )
    )
    group_id = f"{group}_id"
    for subject in subjects:
        measure = measures[subject]
        phrase = measure.replace("_", " ")
        values = sorted(row[4] for row in data[subject])
        threshold = values[len(values) // 2]
        category = rng.choice(_CATEGORIES)
        pairs.extend(
            [
                pair(
                    f"How many {subject}s are there?",
                    f"SELECT count(*) FROM {subject}",
                ),
                pair(
                    f"List the names of {subject}s with {phrase} greater "
                    f"than {threshold}.",
                    f"SELECT name FROM {subject} WHERE {measure} > {threshold}",
                ),
                pair(
                    f"What is the average {phrase} for each category of "
                    f"{subject}s?",
                    f"SELECT category, avg({measure}) FROM {subject} "
                    f"GROUP BY category",
                ),
                pair(
                    f"What is the maximum {phrase} of a {subject}?",
                    f"SELECT max({measure}) FROM {subject}",
                ),
                pair(
                    f"List the names of {subject}s in the {category} category.",
                    f"SELECT name FROM {subject} WHERE category = '{category}'",
                ),
                pair(
                    f"Show the name of each {group} and the number of "
                    f"{subject}s it has.",
                    f"SELECT T1.name, count(*) FROM {group} AS T1 JOIN "
                    f"{subject} AS T2 ON T1.{group_id} = T2.{group_id} "
                    f"GROUP BY T1.name",
                ),
            ]
        )
    return pairs


# -- adapter-manifest integration ----------------------------------------------

_BUILD_PATTERN = re.compile(r"^build_s(\d+)x([123])$")


def build(scale: float = 1.0, seed: int = 4201, severity: int = 2) -> BenchmarkDomain:
    """Default build entry point (the adapter protocol)."""
    return generate_domain(seed, severity, scale)


def __getattr__(name: str):
    """Resolve ``build_s<seed>x<severity>`` attributes to builders.

    This is what makes a generated manifest self-contained: the grammar
    parameters live in the *attribute name*, so
    :func:`repro.adapters.registry.builder_from_spec` resolves the exact
    builder in any process from the spec alone.
    """
    match = _BUILD_PATTERN.match(name)
    if match is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    grammar_seed, severity = int(match.group(1)), int(match.group(2))

    def _build(scale: float = 1.0, seed: int | None = None) -> BenchmarkDomain:
        return generate_domain(
            grammar_seed if seed is None else seed, severity, scale
        )

    _build.__name__ = name
    return _build


def manifest_for(seed: int, severity: int) -> AdapterManifest:
    """A fresh adapter manifest for one grammar (seed, severity) point."""
    check_severity(severity)
    return AdapterManifest(
        name=domain_name(seed, severity),
        module=__name__,
        attr=f"build_s{seed}x{severity}",
        description=(
            f"synthesized mini-domain (grammar seed {seed}, "
            f"severity {severity})"
        ),
    )


class SynthMiniDomain:
    """The synthesized mini-domain family (see module docstring)."""

    name = "synth"

    def apply(self, base: BenchmarkDomain, severity: int, rng) -> PerturbedDomain:
        check_severity(severity)
        # The grammar seed derives from the cell's RNG stream, so each
        # (base domain, severity) cell synthesizes a distinct mini-domain.
        grammar_seed = rng.randrange(1_000_000)
        manifest = manifest_for(grammar_seed, severity)

        from repro import adapters

        # Registered through the adapter registry for the build, released
        # after: task bodies run in long-lived processes and must not leak
        # per-cell adapters into the session's registry.
        with adapters.temporary(manifest) as adapter:
            domain = adapter.build(scale=1.0)
        return validate_perturbed(
            PerturbedDomain(
                domain=domain,
                base_name=base.name,
                family=self.name,
                severity=severity,
                metadata={
                    "adapter": {"name": manifest.name, **manifest.spec()},
                    "grammar_seed": grammar_seed,
                    "n_tables": len(domain.database.schema.tables),
                    "n_rows": domain.database.row_count(),
                    "n_seed_pairs": len(domain.seed.pairs),
                    "n_dev_pairs": len(domain.dev.pairs),
                },
            )
        )
