"""The robustness matrix as a :mod:`repro.runtime` task graph.

Per (domain, family, severity) cell, three tasks::

    pdomain:<domain>:<family>:<sev>   build base domain, apply perturbation
        └─> ptrain:<system>:<domain>:<family>:<sev>   train on perturbed seed
                └─> pcell:<system>:<domain>:<family>:<sev>  eval on perturbed dev

plus one ``baseline``/severity-0 column per domain (the identity
perturbation) that every degradation delta is measured against.  Task
bodies are module-level ``fn(params, inputs)`` functions (pool-worker
transport by name), pure in their params and dependency artifacts; the
adapter import spec rides in params so no registry state crosses the
process boundary, and each stochastic body gets a
:func:`~repro.runtime.derive_seed`-derived seed.  Content-addressed caching
therefore makes re-running the matrix with one new family or severity pay
only for the new cells.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import adapters
from repro.datasets.records import BenchmarkDomain
from repro.metrics.execution import ExecutionAccuracy
from repro.obs import get_tracer
from repro.perturb.base import BASELINE_FAMILY, PerturbedDomain, check_severity
from repro.runtime import Task, TaskGraph, derive_seed

_FN = "repro.perturb.tasks:{}".format


@dataclass
class RobustnessCell:
    """One evaluated (system, domain, family, severity) matrix cell."""

    system: str
    domain: str
    family: str
    severity: int
    accuracy: float
    n_eval: int
    #: hardness class -> {"n": evaluated, "correct": matched}.
    by_hardness: dict = field(default_factory=dict)
    triage: dict = field(default_factory=dict)
    #: Gold-result invariance record for invariant families (distractor).
    invariance: dict | None = None
    #: The perturbation's own metadata (rename maps, drift counts, ...).
    perturbation: dict = field(default_factory=dict)


# -- task names ----------------------------------------------------------------


def pdomain_task(domain: str, family: str, severity: int) -> str:
    return f"pdomain:{domain}:{family}:{severity}"


def ptrain_task(system: str, domain: str, family: str, severity: int) -> str:
    return f"ptrain:{system}:{domain}:{family}:{severity}"


def pcell_task(system: str, domain: str, family: str, severity: int) -> str:
    return f"pcell:{system}:{domain}:{family}:{severity}"


def matrix_cells(
    families: tuple[str, ...], severities: tuple[int, ...]
) -> list[tuple[str, int]]:
    """(family, severity) points of one domain column, baseline first."""
    return [(BASELINE_FAMILY, 0)] + [
        (family, severity) for family in families for severity in severities
    ]


# -- task bodies ---------------------------------------------------------------


def build_perturbed_domain(params: dict, inputs: dict) -> PerturbedDomain:
    """Build the base domain bare (no synthesis pipeline) and perturb it."""
    from repro.perturb import get_family

    builder = adapters.builder_from_spec(params["adapter"])
    base: BenchmarkDomain = builder(scale=params["scale"])
    family = params["family"]
    if family == BASELINE_FAMILY:
        return PerturbedDomain(
            domain=base,
            base_name=base.name,
            family=BASELINE_FAMILY,
            severity=0,
        )
    severity = check_severity(params["severity"])
    with get_tracer().span(
        "perturb.apply", domain=base.name, family=family, severity=severity
    ):
        return get_family(family).apply(base, severity, random.Random(params["seed"]))


def train_perturbed_system(params: dict, inputs: dict):
    """Train one system on the perturbed domain's seed split."""
    from repro.experiments.tasks import SYSTEM_CLASSES

    perturbed: PerturbedDomain = inputs["pdomain"]
    domain = perturbed.domain
    system = SYSTEM_CLASSES[params["system"]]()
    system.register_database(domain.name, domain.database, domain.enhanced)
    with get_tracer().span(
        "perturb.train",
        system=params["system"],
        domain=perturbed.base_name,
        family=perturbed.family,
        severity=perturbed.severity,
    ):
        system.train(list(domain.seed.pairs))
    return system


def eval_perturbed_cell(params: dict, inputs: dict) -> RobustnessCell:
    """Execution accuracy of the trained system on the perturbed dev split.

    Uses the same ``predict_all`` batch path and
    :class:`~repro.metrics.execution.ExecutionAccuracy` scoring as the
    Table-5 harness, so robustness numbers are directly comparable to the
    headline accuracy — including gold answers re-derived by executing the
    gold SQL on the (possibly drifted) database.
    """
    system = inputs["system"]
    perturbed: PerturbedDomain = inputs["pdomain"]
    domain = perturbed.domain
    dev_limit = params["dev_limit"]
    pairs = domain.dev.pairs[:dev_limit] if dev_limit else list(domain.dev.pairs)
    tracer = get_tracer()
    cell_attrs = {
        "system": params["system"],
        "domain": perturbed.base_name,
        "family": perturbed.family,
        "severity": perturbed.severity,
    }
    with tracer.span("perturb.predict", n_pairs=len(pairs), **cell_attrs):
        predictions = list(system.predict_all(pairs))
    accuracy = ExecutionAccuracy()
    by_hardness: dict[str, dict] = {}
    with tracer.span("perturb.score", n_pairs=len(pairs), **cell_attrs):
        for pair, predicted in zip(pairs, predictions):
            matched = accuracy.add(
                domain.database, pair.sql, predicted, enhanced=domain.enhanced
            )
            bucket = by_hardness.setdefault(pair.hardness, {"n": 0, "correct": 0})
            bucket["n"] += 1
            bucket["correct"] += int(matched)
    return RobustnessCell(
        system=params["system"],
        domain=perturbed.base_name,
        family=perturbed.family,
        severity=perturbed.severity,
        accuracy=accuracy.accuracy,
        n_eval=accuracy.total,
        by_hardness=dict(sorted(by_hardness.items())),
        triage=dict(sorted(accuracy.triage.items())),
        invariance=perturbed.invariance,
        perturbation=perturbed.metadata,
    )


# -- graph assembly ------------------------------------------------------------


def build_matrix_graph(
    domains: tuple[str, ...],
    systems: tuple[str, ...],
    families: tuple[str, ...],
    severities: tuple[int, ...],
    base_seed: int,
    scale: float,
    dev_limit: int | None,
) -> TaskGraph:
    """The full robustness matrix as a task graph (baseline column included)."""
    graph = TaskGraph()
    for domain in domains:
        spec = adapters.get_adapter(domain).spec()
        for family, severity in matrix_cells(families, severities):
            pname = pdomain_task(domain, family, severity)
            graph.add(
                Task(
                    pname,
                    _FN("build_perturbed_domain"),
                    {
                        "domain": domain,
                        "adapter": spec,
                        "scale": scale,
                        "family": family,
                        "severity": severity,
                        "seed": derive_seed(base_seed, pname),
                    },
                )
            )
            for system in systems:
                tname = ptrain_task(system, domain, family, severity)
                graph.add(
                    Task(
                        tname,
                        _FN("train_perturbed_system"),
                        {"system": system},
                        deps=(("pdomain", pname),),
                    )
                )
                graph.add(
                    Task(
                        pcell_task(system, domain, family, severity),
                        _FN("eval_perturbed_cell"),
                        {"system": system, "dev_limit": dev_limit},
                        deps=(("system", tname), ("pdomain", pname)),
                    )
                )
    return graph


def matrix_targets(
    domains: tuple[str, ...],
    systems: tuple[str, ...],
    families: tuple[str, ...],
    severities: tuple[int, ...],
) -> list[str]:
    """Every eval cell of the matrix, in canonical order."""
    return [
        pcell_task(system, domain, family, severity)
        for domain in domains
        for family, severity in matrix_cells(families, severities)
        for system in systems
    ]
