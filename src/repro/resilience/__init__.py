"""Deterministic fault injection & recovery across every execution layer.

The subsystem has three independent pieces that compose:

* **fault plans** (:mod:`~repro.resilience.faults`) — seeded, stateless
  schedules deciding *(site, identity, attempt)* → fault kind by pure hash,
  so chaos runs reproduce bit-for-bit and never perturb artifact RNG;
* **recovery primitives** — :class:`RetryPolicy` (exponential backoff with
  deterministic jitter and budget caps) and :class:`CircuitBreaker`
  (closed/open/half-open per dependency), both driven through an injectable
  :mod:`~repro.resilience.clock`;
* **accounting** — :class:`DeadLetter` records for permanently-failed work
  and :class:`ResilienceStats` retry histograms, surfaced in pipeline and
  runtime reports and in ``benchmarks/BENCH_resilience.json``.

``chaos-bench`` (:mod:`~repro.resilience.chaosbench`) replays the pipeline
and a Table-5 slice under a named schedule and asserts that with
transient-only faults every output is byte-identical to the fault-free run.
"""

from repro.resilience.breaker import CircuitBreaker, CircuitOpenError
from repro.resilience.clock import SYSTEM_CLOCK, FakeClock, SystemClock
from repro.resilience.deadletter import DeadLetter, ResilienceStats
from repro.resilience.faults import (
    ALL_KINDS,
    CACHE_KINDS,
    PERMANENT_KINDS,
    SCHEDULES,
    TRANSIENT_ERRORS,
    TRANSIENT_KINDS,
    FaultError,
    FaultPlan,
    FaultRule,
    MalformedCompletionError,
    PermanentFault,
    RateLimitFault,
    TimeoutFault,
    WorkerCrashFault,
    raise_fault,
)
from repro.resilience.flaky import FlakyModel
from repro.resilience.retry import RetryOutcome, RetryPolicy, call_with_retry

__all__ = [
    "ALL_KINDS",
    "CACHE_KINDS",
    "PERMANENT_KINDS",
    "SCHEDULES",
    "TRANSIENT_ERRORS",
    "TRANSIENT_KINDS",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadLetter",
    "FakeClock",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "FlakyModel",
    "MalformedCompletionError",
    "PermanentFault",
    "RateLimitFault",
    "ResilienceStats",
    "RetryOutcome",
    "RetryPolicy",
    "SYSTEM_CLOCK",
    "SystemClock",
    "TimeoutFault",
    "WorkerCrashFault",
    "call_with_retry",
    "raise_fault",
]
