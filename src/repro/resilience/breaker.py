"""A per-dependency circuit breaker (closed → open → half-open).

Retries protect a *call*; the breaker protects the *system*: once a
dependency has failed ``failure_threshold`` times in a row, further calls
fast-fail (or degrade to a fallback) for ``reset_timeout_s`` instead of
queueing up behind a dependency that is down.  After the cooldown the
breaker admits ``half_open_max`` probe calls; one success closes it, one
failure re-opens it.

Time is injected (:mod:`repro.resilience.clock`), so state transitions are
tested against a :class:`~repro.resilience.clock.FakeClock` with no real
waiting.  All methods are thread-safe: the serving layer calls them from
decode threads.
"""

from __future__ import annotations

from repro.checks.lockorder import new_lock
from repro.errors import ReproError
from repro.resilience.clock import SYSTEM_CLOCK

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitOpenError(ReproError):
    """Raised (or used as a fast-fail signal) when the circuit is open."""

    def __init__(self, name: str, retry_in_s: float) -> None:
        super().__init__(
            f"circuit {name!r} is open; retry in {max(0.0, retry_in_s):.2f}s"
        )
        self.name = name
        self.retry_in_s = retry_in_s


class CircuitBreaker:
    """State machine guarding one dependency."""

    def __init__(
        self,
        name: str = "dependency",
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        half_open_max: int = 1,
        clock=SYSTEM_CLOCK,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_max = half_open_max
        self.clock = clock
        self._lock = new_lock("resilience.breaker")
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_inflight = 0
        #: Lifetime counters for observability/reports.
        self.stats = {"opened": 0, "fast_failed": 0, "probes": 0}

    # -- queries --------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._state == OPEN and (
            self.clock.now() - self._opened_at >= self.reset_timeout_s
        ):
            self._state = HALF_OPEN
            self._half_open_inflight = 0
            self._emit_transition("breaker.half-open")
        return self._state

    def allow(self) -> bool:
        """Whether a call may proceed right now (counts half-open probes)."""
        with self._lock:
            state = self._state_locked()
            if state == CLOSED:
                return True
            if state == HALF_OPEN:
                if self._half_open_inflight < self.half_open_max:
                    self._half_open_inflight += 1
                    self.stats["probes"] += 1
                    return True
                self.stats["fast_failed"] += 1
                return False
            self.stats["fast_failed"] += 1
            return False

    def check(self) -> None:
        """:meth:`allow`, raising :class:`CircuitOpenError` when denied."""
        if not self.allow():
            with self._lock:
                retry_in = self.reset_timeout_s - (self.clock.now() - self._opened_at)
            raise CircuitOpenError(self.name, retry_in)

    # -- outcomes -------------------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            state = self._state_locked()
            if state == HALF_OPEN:
                self._half_open_inflight = 0
            self._state = CLOSED
            if state != CLOSED:
                self._emit_transition("breaker.close")

    def record_failure(self) -> None:
        with self._lock:
            state = self._state_locked()
            if state == HALF_OPEN:
                self._trip_locked()
                return
            self._consecutive_failures += 1
            if state == CLOSED and self._consecutive_failures >= self.failure_threshold:
                self._trip_locked()

    def _trip_locked(self) -> None:
        self._state = OPEN
        self._opened_at = self.clock.now()
        self._consecutive_failures = 0
        self._half_open_inflight = 0
        self.stats["opened"] += 1
        self._emit_transition("breaker.open")

    def _emit_transition(self, name: str) -> None:
        """Record a state transition on the active trace (rare, so the lazy
        import — needed because ``repro.obs`` imports this package's clock —
        costs nothing measurable)."""
        from repro.obs import get_tracer

        tracer = get_tracer()
        if not tracer.enabled:
            return
        span = tracer.current()
        if span is not None:
            tracer.add_event(span, name, breaker=self.name)
        else:
            # No enclosing span (e.g. a decode thread): keep the transition
            # as a zero-length span so it still lands in the trace.
            tracer.end_span(tracer.start_span(name, breaker=self.name))

    def snapshot(self) -> dict:
        """State + counters for reports (JSON-serializable)."""
        with self._lock:
            state = self._state_locked()
            return {"state": state, **self.stats}
