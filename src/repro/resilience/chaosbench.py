"""``chaos-bench``: prove the stack recovers from faults *byte-identically*.

Two replays run under one named fault schedule (:data:`SCHEDULES`):

* **augment** — the Figure-1 pipeline on one domain, three arms: fault-free
  baseline, chaos (model wrapped in :class:`FlakyModel`, retries paced by a
  virtual clock), and a chaos repeat.  With a transient-only schedule the
  synthetic split must fingerprint identically across all three.
* **tables** — a Table-5 slice through the task-graph runtime, baseline vs
  chaos (worker crashes via real ``os._exit`` in pool workers, torn cache
  writes, LLM faults inside task bodies) plus a *repair* pass that re-runs
  the chaos cache fault-free and must detect and recompute every torn
  entry.  The eval cell must be identical in all three runs.

The report (``benchmarks/BENCH_resilience.json``) carries per-class
injection and recovery counts, retry histograms, dead letters and added
wall-clock, and the gates the CLI asserts (``--assert-identical``,
``--max-dead-letter``, breaker-ended-open).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict
from pathlib import Path

from repro import adapters, obs
from repro.datasets.records import Split
from repro.experiments.config import ExperimentConfig
from repro.experiments.tasks import (
    CORPUS_TASK,
    build_suite_graph,
    eval_task,
)
from repro.llm.models import GPT3_PROFILE, make_model
from repro.obs import get_tracer
from repro.obs.metrics import MetricsRegistry
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import SYSTEM_CLOCK, FakeClock
from repro.resilience.faults import SCHEDULES, FaultPlan
from repro.resilience.flaky import FlakyModel
from repro.resilience.retry import RetryPolicy
from repro.runtime import Runtime
from repro.synthesis import AugmentationPipeline, PipelineConfig, TranslationConfig

#: Queries the augment replay generates (big enough for ~20+ LLM faults at
#: the schedules' rates, small enough to run in CI).
AUGMENT_TARGET = 80
AUGMENT_SEED = 77

#: Millisecond-scale backoff so chaos runs add negligible wall-clock even
#: where the real clock is used (task bodies inside worker processes).
FAST_RETRY = RetryPolicy(
    max_attempts=4, base_delay_s=0.001, max_delay_s=0.004, budget_s=0.5
)


def chaos_config() -> ExperimentConfig:
    """A deliberately tiny experiment config for the tables replay."""
    return ExperimentConfig(
        name="chaos",
        domain_scale=0.15,
        spider_train_per_db=12,
        spider_dev_per_db=4,
        synth_targets={"cordis": 60, "sdss": 40, "oncomx": 40},
        synth_spider_per_db=6,
        dev_limit=6,
    )


def _fingerprint_split(split: Split) -> str:
    blob = json.dumps([pair.to_dict() for pair in split.pairs], sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _fingerprint_cell(cell) -> str:
    blob = json.dumps(asdict(cell), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _merge_counts(into: dict, counts: dict) -> None:
    for key, value in counts.items():
        into[key] = into.get(key, 0) + value


# -- the augment replay --------------------------------------------------------


def _augment_arm(domain_name: str, plan: FaultPlan | None, breaker=None, label="arm"):
    """One pipeline run; returns (report, wall_s, breaker)."""
    domain = adapters.get_adapter(domain_name).build(scale=0.15)
    model = make_model(GPT3_PROFILE, seed=AUGMENT_SEED)
    if plan is not None:
        model = FlakyModel(model, plan)
    pipeline = AugmentationPipeline(
        domain,
        model=model,
        config=PipelineConfig(
            target_queries=AUGMENT_TARGET,
            seed=AUGMENT_SEED,
            translation=TranslationConfig(retry=FAST_RETRY),
        ),
        breaker=breaker,
        clock=FakeClock(),  # backoff is virtual: recovery adds no wall-clock
    )
    with get_tracer().span(f"chaos.augment.{label}", domain=domain_name):
        started = SYSTEM_CLOCK.now()
        report = pipeline.run(rng=random.Random(AUGMENT_SEED))
        wall_s = SYSTEM_CLOCK.now() - started
    return report, wall_s, breaker


def _run_augment(domain_name: str, spec: dict, registry: MetricsRegistry) -> dict:
    baseline, baseline_wall, _ = _augment_arm(domain_name, plan=None, label="baseline")

    chaos_plan = FaultPlan.from_spec(spec)
    breaker = CircuitBreaker("llm", failure_threshold=8, reset_timeout_s=0.5)
    chaos, chaos_wall, breaker = _augment_arm(
        domain_name, chaos_plan, breaker, label="chaos"
    )

    # A second chaos run under a fresh plan instance: the chaos run itself
    # must be deterministic, not merely equal to the baseline.
    repeat, _, _ = _augment_arm(
        domain_name, FaultPlan.from_spec(spec), label="chaos-repeat"
    )

    # Mirror the chaos arm's recovery accounting into the unified registry.
    chaos.resilience.publish(registry, prefix="chaos.augment")
    registry.counter("chaos.augment.dead_letters").inc(chaos.n_dead_lettered)

    base_fp = _fingerprint_split(baseline.split)
    chaos_fp = _fingerprint_split(chaos.split)
    return {
        "domain": domain_name,
        "target_queries": AUGMENT_TARGET,
        "n_pairs": {"baseline": baseline.n_pairs, "chaos": chaos.n_pairs},
        "identical": base_fp == chaos_fp,
        "chaos_repeat_identical": chaos_fp == _fingerprint_split(repeat.split),
        "faults_injected": dict(sorted(chaos_plan.injected.items())),
        "resilience": chaos.resilience.to_dict(),
        "dead_letters": [letter.to_dict() for letter in chaos.dead_letters],
        "n_dead_lettered": chaos.n_dead_lettered,
        "breaker": breaker.snapshot(),
        "wall_s": {"baseline": baseline_wall, "chaos": chaos_wall},
    }


# -- the tables replay ---------------------------------------------------------


def _run_tables(
    spec: dict, cache_root: Path, workers: int, registry: MetricsRegistry
) -> dict:
    config = chaos_config()
    target = eval_task("valuenet", "cordis", "both")
    retry_spec = FAST_RETRY.to_spec()
    tracer = get_tracer()

    baseline_rt = Runtime(workers=1, cache_dir=str(cache_root / "baseline"))
    with tracer.span("chaos.tables.baseline"):
        started = SYSTEM_CLOCK.now()
        baseline_cell = baseline_rt.run(build_suite_graph(config), [target])[target]
        baseline_wall = SYSTEM_CLOCK.now() - started

    # Chaos arm: LLM faults ride into the task bodies via params; worker
    # crashes and torn cache writes are the runtime's own injections.  The
    # chaos runtime records into the bench's unified registry.
    chaos_plan = FaultPlan.from_spec(spec)
    chaos_graph = build_suite_graph(
        config, llm_fault_spec=spec, retry_spec=retry_spec
    )
    chaos_rt = Runtime(
        workers=workers,
        cache_dir=str(cache_root / "chaos"),
        retry=FAST_RETRY,
        fault_plan=chaos_plan,
        metrics=registry,
    )
    with tracer.span("chaos.tables.chaos"):
        started = SYSTEM_CLOCK.now()
        chaos_cell = chaos_rt.run(chaos_graph, [target])[target]
        chaos_wall = SYSTEM_CLOCK.now() - started

    # Repair pass: a fresh fault-free runtime over the chaos cache must
    # detect every torn entry, recompute it, and still agree byte-for-byte.
    # The corpus artifact (always torn by the schedules' match rule) is
    # demanded explicitly — a cached downstream artifact would otherwise
    # prune the upstream subgraph and never touch the torn entry.
    repair_rt = Runtime(workers=1, cache_dir=str(cache_root / "chaos"))
    repair_graph = build_suite_graph(
        config, llm_fault_spec=spec, retry_spec=retry_spec
    )
    repair_cell = repair_rt.run(repair_graph, [CORPUS_TASK, target])[target]

    fingerprints = {
        "baseline": _fingerprint_cell(baseline_cell),
        "chaos": _fingerprint_cell(chaos_cell),
        "repair": _fingerprint_cell(repair_cell),
    }
    recovered = dict(chaos_rt.report.recovered)
    if repair_rt.cache.corrupt:
        recovered["cache-tear"] = repair_rt.cache.corrupt
    return {
        "target": target,
        "workers": workers,
        "identical": len(set(fingerprints.values())) == 1,
        "fingerprints": fingerprints,
        "faults_injected": dict(sorted(chaos_plan.injected.items())),
        "recovered": dict(sorted(recovered.items())),
        "retries": chaos_rt.report.retries,
        "torn_writes": chaos_rt.cache.tears,
        "repaired_entries": repair_rt.cache.corrupt,
        "corruption_kinds": dict(repair_rt.cache.corruption_kinds),
        "accuracy": {
            "baseline": baseline_cell.accuracy,
            "chaos": chaos_cell.accuracy,
        },
        "wall_s": {"baseline": baseline_wall, "chaos": chaos_wall},
    }


# -- entry point ---------------------------------------------------------------


def run_chaos_bench(
    schedule: str = "transient-small",
    domain: str = "cordis",
    cache_dir: str | Path | None = None,
    skip_tables: bool = False,
    workers: int = 2,
) -> dict:
    """Run both replays under ``schedule`` and return the bench report."""
    if schedule not in SCHEDULES:
        raise ValueError(
            f"unknown schedule {schedule!r}; pick one of {sorted(SCHEDULES)}"
        )
    spec = SCHEDULES[schedule]
    registry = MetricsRegistry()
    report: dict = {
        "schema_version": 1,
        "benchmark": "resilience",
        "schedule": schedule,
        "spec": spec,
        # Trace artifact of the enclosing ``trace`` run (None otherwise).
        "trace_path": obs.current_trace_path(),
        "augment": _run_augment(domain, spec, registry),
    }
    if not skip_tables:
        import tempfile

        if cache_dir is not None:
            root = Path(cache_dir)
            root.mkdir(parents=True, exist_ok=True)
            report["tables"] = _run_tables(spec, root, workers, registry)
        else:
            with tempfile.TemporaryDirectory(prefix="chaos-bench-") as tmp:
                report["tables"] = _run_tables(spec, Path(tmp), workers, registry)

    # Roll-up across phases: total injections, and per-class recoveries.
    faults: dict[str, int] = {}
    recovered: dict[str, int] = {}
    _merge_counts(faults, report["augment"]["faults_injected"])
    _merge_counts(recovered, report["augment"]["resilience"]["recovered"])
    identical = [report["augment"]["identical"],
                 report["augment"]["chaos_repeat_identical"]]
    dead = report["augment"]["n_dead_lettered"]
    breaker_open = report["augment"]["breaker"]["state"] == "open"
    if "tables" in report:
        _merge_counts(faults, report["tables"]["faults_injected"])
        _merge_counts(recovered, report["tables"]["recovered"])
        identical.append(report["tables"]["identical"])
    report["totals"] = {
        "faults_injected": sum(faults.values()),
        "faults_by_kind": dict(sorted(faults.items())),
        "recovered_by_kind": dict(sorted(recovered.items())),
    }
    report["identical"] = all(identical)
    report["dead_lettered"] = dead
    report["breaker_ended_open"] = breaker_open
    # Unified-registry snapshot: chaos-arm runtime + resilience instruments.
    report["registry"] = registry.snapshot()
    return report


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def render_report(report: dict) -> str:
    """Human-readable summary of one chaos-bench report."""
    totals = report["totals"]
    lines = [
        f"chaos-bench: schedule {report['schedule']!r} — "
        f"{totals['faults_injected']} faults injected",
        "  recovered by kind: "
        + (
            ", ".join(
                f"{kind}={count}"
                for kind, count in totals["recovered_by_kind"].items()
            )
            or "none"
        ),
    ]
    augment = report["augment"]
    lines.append(
        f"  augment[{augment['domain']}]: "
        f"{augment['n_pairs']['chaos']}/{augment['n_pairs']['baseline']} pairs, "
        f"identical={augment['identical']}, "
        f"dead-lettered={augment['n_dead_lettered']}, "
        f"breaker={augment['breaker']['state']}, "
        f"chaos wall {augment['wall_s']['chaos']:.2f}s "
        f"(baseline {augment['wall_s']['baseline']:.2f}s)"
    )
    tables = report.get("tables")
    if tables:
        lines.append(
            f"  tables[{tables['target']}]: identical={tables['identical']}, "
            f"retries={tables['retries']}, torn_writes={tables['torn_writes']}, "
            f"repaired={tables['repaired_entries']}, "
            f"chaos wall {tables['wall_s']['chaos']:.2f}s "
            f"(baseline {tables['wall_s']['baseline']:.2f}s)"
        )
    lines.append(
        f"  verdict: identical={report['identical']} "
        f"dead_lettered={report['dead_lettered']} "
        f"breaker_ended_open={report['breaker_ended_open']}"
    )
    return "\n".join(lines)
