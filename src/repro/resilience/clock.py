"""Injectable clocks: the seam that makes time-dependent code testable.

Everything in the resilience layer that reads time or sleeps does so through
a clock object with two methods — ``now()`` (monotonic seconds) and
``sleep(seconds)`` — so tests and chaos runs can substitute a
:class:`FakeClock` and advance time explicitly instead of waiting for it.

Two fake modes exist because two kinds of callers exist:

* **auto-advancing** (the default): ``sleep`` moves virtual time forward and
  returns immediately.  Right for retry-backoff tests, which only care that
  the *amounts* slept are correct.
* **blocking**: ``sleep`` parks the calling thread until another thread
  ``advance()``-s virtual time past the wake deadline.  Right for the
  serving timeout tests, where a decode thread must verifiably *not finish*
  until the test releases it — with zero real waiting and zero races.
"""

from __future__ import annotations

import threading
import time


class SystemClock:
    """The real thing: ``time.monotonic`` + ``time.sleep``."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


#: Shared default instance — stateless, safe to reuse everywhere.
SYSTEM_CLOCK = SystemClock()


class FakeClock:
    """A virtual monotonic clock under explicit test control.

    Thread-safe: ``advance`` may be called from any thread and wakes every
    blocked sleeper whose deadline has passed.  ``sleeps`` records every
    requested sleep duration, in call order, for assertions on backoff
    schedules.
    """

    def __init__(self, start: float = 0.0, blocking: bool = False) -> None:
        self._now = start
        self._blocking = blocking
        self._cond = threading.Condition()
        self.sleeps: list[float] = []

    def now(self) -> float:
        with self._cond:
            return self._now

    def advance(self, seconds: float) -> None:
        """Move virtual time forward and wake any blocked sleepers."""
        if seconds < 0:
            raise ValueError("time is monotonic; cannot advance backwards")
        with self._cond:
            self._now += seconds
            self._cond.notify_all()

    def sleep(self, seconds: float) -> None:
        with self._cond:
            self.sleeps.append(seconds)
            deadline = self._now + max(0.0, seconds)
            if not self._blocking:
                self._now = deadline
                self._cond.notify_all()
                return
            while self._now < deadline:
                # The real-time timeout is a last-resort hang guard for a
                # test that forgets to advance(); it never fires in a
                # correctly written test.
                self._cond.wait(timeout=10.0)
