"""Dead-letter records: where permanently-failed work goes instead of
aborting the run.

A pipeline that crashes on the first permanently-untranslatable query loses
hours of work; a pipeline that silently drops it corrupts its accounting.
The middle road is a structured record per casualty — what failed, where,
why, after how many attempts — surfaced in the run's report and in
``BENCH_resilience.json``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class DeadLetter:
    """One permanently-failed unit of work."""

    site: str  # "llm" | "task" | ...
    identity: str  # SQL text, task name, ...
    kind: str  # fault taxonomy kind or exception class name
    reason: str  # human-readable failure description
    attempts: int  # how many tries were spent before giving up

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class ResilienceStats:
    """Recovery accounting for one run, aggregated across retried calls."""

    #: Calls that needed at least one retry.
    retried_calls: int = 0
    #: Total extra attempts spent on retries.
    retries: int = 0
    #: fault kind -> times a call recovered from it (retry then success).
    recovered: dict[str, int] = field(default_factory=dict)
    #: attempts-needed -> number of calls (1 = first-try success).
    retry_histogram: dict[int, int] = field(default_factory=dict)
    #: Seconds spent sleeping between attempts (virtual under a FakeClock).
    backoff_s: float = 0.0

    def observe(self, attempts: int, recovered: dict[str, int], slept_s: float) -> None:
        """Fold in one finished call's retry outcome."""
        self.retry_histogram[attempts] = self.retry_histogram.get(attempts, 0) + 1
        self.backoff_s += slept_s
        if attempts > 1:
            self.retried_calls += 1
            self.retries += attempts - 1
        for kind, count in recovered.items():
            self.recovered[kind] = self.recovered.get(kind, 0) + count

    def merge(self, other: "ResilienceStats") -> None:
        self.retried_calls += other.retried_calls
        self.retries += other.retries
        self.backoff_s += other.backoff_s
        for kind, count in other.recovered.items():
            self.recovered[kind] = self.recovered.get(kind, 0) + count
        for attempts, count in other.retry_histogram.items():
            self.retry_histogram[attempts] = (
                self.retry_histogram.get(attempts, 0) + count
            )

    def to_dict(self) -> dict:
        return {
            "retried_calls": self.retried_calls,
            "retries": self.retries,
            "recovered": dict(sorted(self.recovered.items())),
            "retry_histogram": {
                str(k): v for k, v in sorted(self.retry_histogram.items())
            },
            "backoff_s": self.backoff_s,
        }

    def publish(self, registry, prefix: str = "resilience") -> None:
        """Mirror this accounting into a unified metrics registry, so one
        snapshot correlates resilience with serving/runtime instruments."""
        registry.counter(f"{prefix}.retried_calls").inc(self.retried_calls)
        registry.counter(f"{prefix}.retries").inc(self.retries)
        registry.gauge(f"{prefix}.backoff_s").add(self.backoff_s)
        for kind, count in self.recovered.items():
            registry.counter(f"{prefix}.recovered.{kind}").inc(count)
