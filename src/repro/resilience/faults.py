"""Deterministic fault plans: reproducible chaos.

A :class:`FaultPlan` decides, for every *(site, identity, attempt)* triple,
whether to inject a synthetic fault and of which kind.  The decision is a
pure hash of the plan seed and the triple — no RNG state, no wall clock —
so a chaos run is reproducible bit-for-bit and, crucially, injection can
never perturb the artifact RNG streams (which are keyed by task seed and
SQL text, not by call order).

Sites
-----
``"llm"``    SQL-to-NL model calls; identity is the SQL text
``"task"``   runtime task executions; identity is the task name
``"cache"``  artifact-cache writes; identity is the content-hash key

Fault taxonomy
--------------
===============  =======  ==============================================
kind             site     models
===============  =======  ==============================================
``rate-limit``   llm      API 429: the call never ran
``timeout``      llm      API timeout: outcome unknown, call is retried
``truncated``    llm      completion cut off mid-stream (fewer candidates)
``malformed``    llm      completion arrived but is unusable (empty text)
``permanent``    llm      a query the model can never translate
``worker-crash`` task     a worker process dying mid-task
``cache-tear``   cache    a crash mid-write leaving a torn cache entry
===============  =======  ==============================================

Transient faults carry ``max_attempt``: a matched identity faults on every
attempt *below* it and succeeds from then on, which makes "transient"
precise — any retry policy with ``max_attempts > max_attempt`` is
guaranteed to recover, deterministically.  Permanent rules set
``max_attempt`` high enough that no sane retry budget outlasts them.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass

from repro.errors import ReproError

#: Fault kinds a retry can recover from (the fault stops at ``max_attempt``).
TRANSIENT_KINDS = ("rate-limit", "timeout", "truncated", "malformed", "worker-crash")
#: Kinds that persist across every attempt; they must dead-letter, not abort.
PERMANENT_KINDS = ("permanent",)
#: Kinds injected at cache-write time (no retry; repaired on next load).
CACHE_KINDS = ("cache-tear",)

ALL_KINDS = TRANSIENT_KINDS + PERMANENT_KINDS + CACHE_KINDS


class FaultError(ReproError):
    """Base class of every injected fault; carries its taxonomy ``kind``."""

    kind = "fault"

    def __init__(self, message: str, identity: str = "", kind: str | None = None) -> None:
        super().__init__(message)
        self.identity = identity
        if kind is not None:
            # Instance override: validation errors distinguish taxonomy
            # kinds ("truncated" vs "malformed") within one exception class.
            self.kind = kind


class RateLimitFault(FaultError):
    kind = "rate-limit"


class TimeoutFault(FaultError):
    kind = "timeout"


class MalformedCompletionError(FaultError):
    """A completion arrived but failed output validation (truncated or
    malformed) — raised by the *caller's* validation, like a real client
    discovering a half-streamed API response."""

    kind = "malformed"


class WorkerCrashFault(FaultError):
    kind = "worker-crash"


class PermanentFault(FaultError):
    kind = "permanent"


#: Exception classes a retry policy treats as recoverable by default.
TRANSIENT_ERRORS = (RateLimitFault, TimeoutFault, MalformedCompletionError, WorkerCrashFault)

_RAISERS = {
    "rate-limit": RateLimitFault,
    "timeout": TimeoutFault,
    "worker-crash": WorkerCrashFault,
    "permanent": PermanentFault,
}


def raise_fault(kind: str, identity: str) -> None:
    """Raise the exception class for an injected ``kind`` (raising kinds only)."""
    exc = _RAISERS[kind]
    raise exc(f"injected {kind} fault", identity=identity)


@dataclass(frozen=True)
class FaultRule:
    """One line of a fault schedule."""

    site: str  # "llm" | "task" | "cache"
    kind: str  # one of ALL_KINDS
    rate: float  # fraction of identities hit (deterministic per identity)
    max_attempt: int = 1  # inject while attempt < max_attempt
    match: str = ""  # substring filter on the identity ("" = all)

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")


class FaultPlan:
    """A seeded, stateless fault schedule plus injection accounting.

    ``draw`` is a pure function of (seed, rules, site, identity, attempt);
    the ``injected`` counters are bookkeeping on the side and never feed
    back into decisions.
    """

    def __init__(self, seed: int, rules: tuple[FaultRule, ...] | list[FaultRule]) -> None:
        self.seed = seed
        self.rules = tuple(rules)
        self.injected: dict[str, int] = {}

    def draw(self, site: str, identity: str, attempt: int) -> str | None:
        """The fault kind to inject for this call, or None."""
        for rule in self.rules:
            if rule.site != site or (rule.match and rule.match not in identity):
                continue
            if attempt >= rule.max_attempt:
                continue
            if self._uniform(rule, identity) < rule.rate:
                self.injected[rule.kind] = self.injected.get(rule.kind, 0) + 1
                return rule.kind
        return None

    def _uniform(self, rule: FaultRule, identity: str) -> float:
        blob = f"{self.seed}:{rule.site}:{rule.kind}:{rule.match}:{identity}"
        digest = hashlib.sha256(blob.encode("utf-8")).digest()
        return int.from_bytes(digest[:7], "big") / float(1 << 56)

    # -- (de)serialization: plans must cross params/process boundaries --------

    def to_spec(self) -> dict:
        """A JSON-serializable spec (safe inside task params: it feeds the
        content hash, so chaos and fault-free runs never share cache keys)."""
        return {"seed": self.seed, "rules": [asdict(rule) for rule in self.rules]}

    @classmethod
    def from_spec(cls, spec: dict) -> "FaultPlan":
        return cls(spec["seed"], tuple(FaultRule(**rule) for rule in spec["rules"]))


def _plan(seed: int, *rules: FaultRule) -> dict:
    return FaultPlan(seed, rules).to_spec()


#: Named schedules for ``chaos-bench`` (specs, so they are immutable data).
SCHEDULES: dict[str, dict] = {
    # Transient-only, modest rates: the CI smoke schedule.  Every fault
    # clears by its second attempt, so --assert-identical must hold.  The
    # corpus cache entry is always torn (match rule, rate 1.0) so the
    # tear-detect-repair path runs even in small replays with few tasks.
    "transient-small": _plan(
        101,
        FaultRule("llm", "rate-limit", rate=0.10),
        FaultRule("llm", "timeout", rate=0.06),
        FaultRule("llm", "truncated", rate=0.06),
        FaultRule("llm", "malformed", rate=0.05),
        FaultRule("task", "worker-crash", rate=0.35),
        FaultRule("cache", "cache-tear", rate=1.0, match="corpus"),
        FaultRule("cache", "cache-tear", rate=0.25),
    ),
    # Transient-only but vicious: higher rates and double-faulting
    # identities (fault on attempts 0 and 1, succeed on 2).
    "transient-heavy": _plan(
        202,
        FaultRule("llm", "rate-limit", rate=0.25, max_attempt=2),
        FaultRule("llm", "timeout", rate=0.15, max_attempt=2),
        FaultRule("llm", "truncated", rate=0.15),
        FaultRule("llm", "malformed", rate=0.10),
        FaultRule("task", "worker-crash", rate=0.50),
        FaultRule("cache", "cache-tear", rate=1.0, match="corpus"),
        FaultRule("cache", "cache-tear", rate=0.40),
    ),
    # Transient mix plus a slice of permanently untranslatable queries:
    # exercises the dead-letter path end to end.
    "permanent-mix": _plan(
        303,
        FaultRule("llm", "rate-limit", rate=0.10),
        FaultRule("llm", "timeout", rate=0.06),
        FaultRule("llm", "truncated", rate=0.06),
        FaultRule("llm", "permanent", rate=0.06, max_attempt=1_000_000),
        FaultRule("task", "worker-crash", rate=0.35),
        FaultRule("cache", "cache-tear", rate=1.0, match="corpus"),
        FaultRule("cache", "cache-tear", rate=0.25),
    ),
}
