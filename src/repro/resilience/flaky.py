"""FlakyModel: a fault-injecting wrapper around a SQL-to-NL model.

Faithful to how a live LLM API actually fails, as seen from the client:

* **rate-limit / timeout** — the call raises; nothing was consumed.
* **truncated** — the call "succeeds" but returns fewer candidates than
  requested, as when a streamed completion is cut off.  The wrapper slices
  the *real* output, so no RNG stream is disturbed and a retry (which the
  plan lets through) reproduces the full answer bit-for-bit.
* **malformed** — candidates arrive but some are empty strings.
* **permanent** — this SQL can never be translated (every attempt faults);
  the caller must dead-letter it.

Attempt numbers are tracked per SQL identity inside the wrapper, mirroring
a client-side retry counter; the underlying model stays byte-deterministic
because its RNG is keyed by (model seed, SQL text) — never by attempt.
"""

from __future__ import annotations

from repro.llm.base import SqlToNlModel
from repro.resilience.faults import FaultPlan, raise_fault


class FlakyModel:
    """Duck-typed :class:`~repro.llm.base.SqlToNlModel` with injected faults."""

    def __init__(self, model: SqlToNlModel, plan: FaultPlan) -> None:
        self.model = model
        self.plan = plan
        self._attempts: dict[str, int] = {}

    # The pipeline only touches these members; delegate the rest explicitly
    # so typos fail loudly instead of silently bypassing injection.

    @property
    def profile(self):
        return self.model.profile

    @property
    def seed(self) -> int:
        return self.model.seed

    def fine_tune(self, pairs, domain, lexicon=None, epochs=4) -> None:
        self.model.fine_tune(pairs, domain=domain, lexicon=lexicon, epochs=epochs)

    def is_tuned_for(self, domain: str) -> bool:
        return self.model.is_tuned_for(domain)

    def translate(self, sql, enhanced, n_candidates=8, domain=None) -> list[str]:
        attempt = self._attempts.get(sql, 0)
        self._attempts[sql] = attempt + 1
        kind = self.plan.draw("llm", sql, attempt)
        if kind in ("rate-limit", "timeout", "permanent"):
            raise_fault(kind, sql)
        candidates = self.model.translate(
            sql, enhanced, n_candidates=n_candidates, domain=domain
        )
        if kind == "truncated":
            return candidates[: max(1, n_candidates // 2)]
        if kind == "malformed":
            return [""] * len(candidates)
        return candidates

    def translate_best(self, sql, enhanced, domain=None) -> str:
        return self.translate(sql, enhanced, n_candidates=1, domain=domain)[0]
