"""Retry with exponential backoff, deterministic jitter, and budget caps.

Real clients jitter their backoff with ``random()``, which would make chaos
runs irreproducible and — worse — could interleave with artifact RNG
streams.  Here the jitter is a pure hash of *(jitter seed, identity,
attempt)*: two runs of the same schedule sleep the same amounts, and no
shared RNG is ever consumed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable

from repro.resilience.clock import SYSTEM_CLOCK
from repro.resilience.faults import TRANSIENT_ERRORS


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, and how long to wait between tries."""

    max_attempts: int = 4
    base_delay_s: float = 0.02
    multiplier: float = 2.0
    max_delay_s: float = 0.25
    #: Fraction of the delay replaced by deterministic jitter (0 disables).
    jitter: float = 0.5
    jitter_seed: int = 0
    #: Cap on the *total* seconds slept across one call's retries.
    budget_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def delay(self, attempt: int, identity: str = "") -> float:
        """Seconds to sleep after failed ``attempt`` (0-based)."""
        raw = min(self.max_delay_s, self.base_delay_s * self.multiplier**attempt)
        if not self.jitter:
            return raw
        blob = f"{self.jitter_seed}:{identity}:{attempt}"
        digest = hashlib.sha256(blob.encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:7], "big") / float(1 << 56)
        # Decorrelated within [raw*(1-jitter), raw]: bounded below so the
        # budget math stays predictable.
        return raw * (1.0 - self.jitter * fraction)

    def to_spec(self) -> dict:
        """JSON-serializable form, safe inside task params."""
        return {
            "max_attempts": self.max_attempts,
            "base_delay_s": self.base_delay_s,
            "multiplier": self.multiplier,
            "max_delay_s": self.max_delay_s,
            "jitter": self.jitter,
            "jitter_seed": self.jitter_seed,
            "budget_s": self.budget_s,
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "RetryPolicy":
        return cls(**spec)


@dataclass
class RetryOutcome:
    """Accounting for one retried call (attempts is >= 1 even on success)."""

    attempts: int = 1
    slept_s: float = 0.0
    #: Fault kinds (or exception class names) recovered from, with counts.
    recovered: dict[str, int] = field(default_factory=dict)


def call_with_retry(
    fn: Callable[[], object],
    policy: RetryPolicy,
    identity: str = "",
    clock=SYSTEM_CLOCK,
    retry_on: tuple[type[BaseException], ...] = TRANSIENT_ERRORS,
    outcome: RetryOutcome | None = None,
):
    """Run ``fn`` under ``policy``; returns its result.

    Only exceptions in ``retry_on`` are retried — anything else (including
    ``PermanentFault``, ``KeyboardInterrupt``, genuine bugs) propagates on
    the first raise.  On exhaustion the *last* transient error propagates.
    ``outcome``, if given, accumulates attempts/sleep/recovery accounting.
    """
    outcome = outcome if outcome is not None else RetryOutcome()
    slept = 0.0
    attempt = 0
    while True:
        try:
            result = fn()
        except retry_on as exc:
            outcome.attempts = attempt + 1
            if attempt + 1 >= policy.max_attempts:
                raise
            delay = policy.delay(attempt, identity)
            if slept + delay > policy.budget_s:
                raise
            clock.sleep(delay)
            slept += delay
            outcome.slept_s = slept
            kind = getattr(exc, "kind", type(exc).__name__)
            outcome.recovered[kind] = outcome.recovered.get(kind, 0) + 1
            attempt += 1
        else:
            outcome.attempts = attempt + 1
            return result
