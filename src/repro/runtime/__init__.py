"""Parallel task-graph runtime with a content-addressed artifact cache.

Generic substrate: :class:`TaskGraph` declares the work, :class:`Runtime`
executes it (inline or across worker processes) and :class:`ArtifactCache`
persists completed artifacts by content hash.  The concrete benchmark graph
lives in :mod:`repro.experiments.tasks`.
"""

from repro.runtime.cache import ArtifactCache
from repro.runtime.graph import GRAPH_FORMAT, Task, TaskGraph, derive_seed
from repro.runtime.scheduler import RunReport, Runtime, TaskRecord, execute_task

__all__ = [
    "ArtifactCache",
    "GRAPH_FORMAT",
    "Task",
    "TaskGraph",
    "derive_seed",
    "Runtime",
    "RunReport",
    "TaskRecord",
    "execute_task",
]
