"""Parallel task-graph runtime with a content-addressed artifact cache.

Generic substrate: :class:`TaskGraph` declares the work, :class:`Runtime`
executes it (inline or across worker processes) and :class:`ArtifactCache`
persists completed artifacts by content hash.  The concrete benchmark graph
lives in :mod:`repro.experiments.tasks`.
"""

from repro.runtime.cache import CORRUPTION_ERRORS, ArtifactCache
from repro.runtime.graph import GRAPH_FORMAT, Task, TaskGraph, derive_seed
from repro.runtime.scheduler import (
    RunReport,
    Runtime,
    TaskRecord,
    TaskTimeoutError,
    execute_task,
)

__all__ = [
    "ArtifactCache",
    "CORRUPTION_ERRORS",
    "GRAPH_FORMAT",
    "Task",
    "TaskGraph",
    "derive_seed",
    "Runtime",
    "RunReport",
    "TaskRecord",
    "TaskTimeoutError",
    "execute_task",
]
